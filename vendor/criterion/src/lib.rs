//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the criterion API surface the workspace's
//! benches use (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`). Measurement is deliberately simple: a short warm-up,
//! then a fixed number of timed samples whose median/min/max are printed
//! to stdout. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to `bench_function` closures; runs and times the routine.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (one sample = one routine call).
    pub times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::new(),
        }
    }

    /// Time `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

fn report(group: &str, name: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    times.sort();
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "{group}/{name}: median {median:?} (min {min:?}, max {max:?}, n={})",
        times.len()
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        report(&self.name, &name, &mut b.times);
        self
    }

    /// Finish the group (no-op; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report("bench", &name, &mut b.times);
        self
    }
}

/// Group several benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}

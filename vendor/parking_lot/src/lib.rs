//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the (small) parking_lot API surface the
//! workspace uses — `Mutex`, `RwLock`, and `Condvar` with
//! `wait_until` — implemented over `std::sync`. Poisoning is swallowed
//! (parking_lot has no poisoning), which matches how the workspace uses
//! these types.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion primitive (non-poisoning `lock()` like parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar`] can move it through
/// std's by-value wait APIs without unsafe code; the slot is only ever
/// empty while a wait is in progress.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning, parking_lot-style API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or until `deadline`, reporting which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let dur = deadline.saturating_duration_since(Instant::now());
        let (g, result) = self
            .inner
            .wait_timeout(g, dur)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut done = m2.lock();
            while !*done {
                let r = cv2.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}

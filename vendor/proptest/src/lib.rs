//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the subset of the proptest API the workspace
//! uses: the [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`,
//! `new_tree`), range / tuple / regex-string strategies, `any::<T>()`,
//! `proptest::collection::vec`, and the `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert!`-family macros.
//!
//! Differences from real proptest: cases are generated from a fixed-seed
//! xorshift RNG (runs are deterministic per build) and failing cases are
//! reported without shrinking.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    //! Test-case generation state (RNG + configuration).

    /// Deterministic xorshift64* RNG — no external `rand` dependency.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded RNG; `seed` 0 is remapped to a fixed constant.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[0, bound)` over 128 bits.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }

    /// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Drives test-case generation (holds the RNG).
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        /// RNG used by strategies.
        pub rng: TestRng,
        /// Active configuration.
        pub config: Config,
    }

    impl TestRunner {
        /// Runner with the given config and a fixed seed.
        pub fn new(config: Config) -> Self {
            TestRunner {
                rng: TestRng::new(0xdeadbeefcafef00d),
                config,
            }
        }

        /// Runner with a fixed seed (matching proptest's API).
        pub fn deterministic() -> Self {
            TestRunner::new(Config::default())
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(Config::default())
        }
    }
}

use test_runner::{TestRng, TestRunner};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert!` failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type threaded through `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A generated value (no shrinking — `current` returns the value).
    pub trait ValueTree {
        /// The value type.
        type Value;
        /// The generated value.
        fn current(&self) -> Self::Value;
    }

    /// Trivial value tree holding one generated value.
    #[derive(Debug, Clone)]
    pub struct JustTree<T: Clone>(pub T);

    impl<T: Clone> ValueTree for JustTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Something that can generate random values of `Self::Value`.
    pub trait Strategy: Clone {
        /// The generated value type.
        type Value: Clone;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Generate a value tree (proptest API compatibility).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<JustTree<Self::Value>, String> {
            Ok(JustTree(self.generate(&mut runner.rng)))
        }

        /// Map generated values through `f`.
        fn prop_map<U: Clone, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Filter generated values; regenerates (up to a bound) when the
        /// predicate rejects.
        fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter { inner: self, f }
        }

        /// Build recursive strategies: unrolls `depth` levels of `f` over
        /// the base strategy (no dynamic sizing).
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                let rec = f(cur).boxed();
                let base = self.clone().boxed();
                cur = BoxedStrategy::union(vec![base, rec]);
            }
            cur
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy {
                gen: Arc::new(move |rng| s.generate(rng)),
            }
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + Clone,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Type-erased, clonable strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        pub(crate) gen: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T: Clone + 'static> BoxedStrategy<T> {
        /// Uniform union of several strategies.
        pub fn union(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
            assert!(!arms.is_empty(), "union of zero strategies");
            BoxedStrategy {
                gen: Arc::new(move |rng| {
                    let i = rng.below(arms.len() as u64) as usize;
                    (arms[i].gen)(rng)
                }),
            }
        }
    }

    impl<T: Clone> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy that always yields a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy backed by a plain generation closure (used by
    /// `prop_compose!`).
    #[derive(Clone)]
    pub struct FnStrategy<T> {
        f: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> FnStrategy<T> {
        /// Wrap a generation closure.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            FnStrategy { f: Arc::new(f) }
        }
    }

    impl<T: Clone> Strategy for FnStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    // ----- range strategies -------------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = rng.below_u128(span);
                    ((self.start as i128).wrapping_add(off as i128)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let off = rng.below_u128(span);
                    ((lo as i128).wrapping_add(off as i128)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<i128> {
        type Value = i128;
        fn generate(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u128;
            self.start.wrapping_add(rng.below_u128(span) as i128)
        }
    }

    impl Strategy for RangeInclusive<i128> {
        type Value = i128;
        fn generate(&self, rng: &mut TestRng) -> i128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let span = hi.wrapping_sub(lo) as u128 + 1;
            lo.wrapping_add(rng.below_u128(span) as i128)
        }
    }

    // ----- tuple strategies -------------------------------------------

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    // ----- regex-lite string strategies -------------------------------

    /// `&str` strategies interpret the string as a simplified regex:
    /// a sequence of literal characters or `[...]` character classes,
    /// each optionally followed by `{m,n}` repetition. This covers the
    /// identifier/value patterns used in the workspace's tests.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let choices: Vec<char>;
            if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class in pattern")
                    + i;
                choices = expand_class(&chars[i + 1..close]);
                i = close + 1;
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                choices = vec![c];
                i += 1;
            }
            // Optional {m,n} / {n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed repetition in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse::<usize>().expect("bad repetition lower bound"),
                        b.parse::<usize>().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let k = rng.below(choices.len() as u64) as usize;
                out.push(choices[k]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            out.push('a');
        }
        out
    }

    // ----- any::<T>() -------------------------------------------------

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Clone {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated data readable.
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRunner;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, TestCaseError, TestCaseResult,
    };
}

/// Sample one value from a strategy (used by the macros).
pub fn sample<S: strategy::Strategy>(s: &S, runner: &mut TestRunner) -> S::Value {
    s.generate(&mut runner.rng)
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Reject the current case (counts as skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::BoxedStrategy::union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
                              ($($arg:ident in $strat:expr),+ $(,)?)
                              -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            #[allow(unused_variables)]
            $crate::strategy::FnStrategy::new(move |rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), rng);
                )+
                $body
            })
        }
    };
}

/// Declare property tests. Bodies run for `config.cases` random cases;
/// failures are reported without shrinking. The `#[test]` attribute at
/// each call site is captured as an ordinary meta and re-emitted on the
/// generated zero-argument function.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::test_runner::Config::default())
            $(#[$meta])*
            fn $($rest)*
        );
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config.clone());
                let mut rejected = 0u32;
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::sample(&($strat), &mut runner);
                    )+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases * 8 {
                                panic!("too many prop_assume! rejections");
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest property {} falsified: {}",
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..200 {
            let v = crate::sample(&(-5i64..7), &mut runner);
            assert!((-5..7).contains(&v));
            let w = crate::sample(&(-3i64..=3), &mut runner);
            assert!((-3..=3).contains(&w));
            let u = crate::sample(&(1i128..50), &mut runner);
            assert!((1..50).contains(&u));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let s = crate::sample(&"[A-Za-z][A-Za-z0-9_]{0,6}", &mut runner);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let v = crate::sample(&crate::collection::vec(0u8..10, 2..5), &mut runner);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![(0i64..3).prop_map(|x| x * 2), (10i64..13).prop_map(|x| x),];
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let v = crate::sample(&s, &mut runner);
            assert!([0, 2, 4, 10, 11, 12].contains(&v), "{v}");
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0i32..10, b in any::<bool>()) {
            prop_assume!(a != 9);
            prop_assert!(a < 9);
            if b {
                prop_assert_eq!(a + a, 2 * a);
            }
        }
    }
}

//! Umbrella crate for the WeSEER workspace.
//!
//! Re-exports the public API of every subsystem so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use weseer::prelude::*;
//! ```

pub use weseer_analyzer as analyzer;
pub use weseer_apps as apps;
pub use weseer_concolic as concolic;
pub use weseer_core as core;
pub use weseer_db as db;
pub use weseer_obs as obs;
pub use weseer_orm as orm;
pub use weseer_replay as replay;
pub use weseer_serve as serve;
pub use weseer_smt as smt;
pub use weseer_sqlir as sqlir;
pub use weseer_store as store;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use weseer_sqlir::{Catalog, ColType, Statement, Value};
}

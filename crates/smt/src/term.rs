//! Hash-consed term DAG and the formula-building API.
//!
//! A [`Ctx`] owns every term. Building is infallible for well-sorted inputs
//! and panics with a descriptive message on sort mismatches (like most SMT
//! term builders, sort errors are programming bugs, not runtime conditions).
//!
//! The supported fragment mirrors what WeSEER's analyzer emits (paper
//! Sec. IV–V): linear integer/real arithmetic, string equality, booleans,
//! and `Array<K, Bool>` with `read`/`write` (Z3's `select`/`store`) used by
//! the Alg. 1 container modeling.

use crate::rational::Rat;
use std::collections::HashMap;
use std::fmt;

/// Sorts (types) of terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Mathematical integers.
    Int,
    /// Reals (stand-in for the paper's float modeling of `BigDecimal`).
    Real,
    /// Strings with (dis)equality.
    Str,
    /// Booleans.
    Bool,
    /// `Array<K, Bool>`: existence maps for container modeling.
    Array(Box<Sort>),
}

impl Sort {
    /// Whether the sort is numeric (Int or Real).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Sort::Int | Sort::Real)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "Int"),
            Sort::Real => write!(f, "Real"),
            Sort::Str => write!(f, "String"),
            Sort::Bool => write!(f, "Bool"),
            Sort::Array(k) => write!(f, "Array<{k}, Bool>"),
        }
    }
}

/// Handle to an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

/// Comparison kinds on numeric terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// `<`
    Lt,
    /// `<=`
    Le,
}

/// Term structure. Users build terms through [`Ctx`] methods; the enum is
/// public for consumers that walk the DAG (the lowering pass).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// Free variable with a name unique per (name, sort).
    Var(String),
    /// `true`/`false`.
    BoolConst(bool),
    /// Numeric constant (sort distinguishes Int from Real).
    NumConst(Rat),
    /// String constant.
    StrConst(String),
    /// Numeric addition.
    Add(TermId, TermId),
    /// Numeric subtraction.
    Sub(TermId, TermId),
    /// Numeric negation.
    Neg(TermId),
    /// Multiplication by a constant (keeps the fragment linear).
    MulConst(Rat, TermId),
    /// Numeric comparison producing Bool.
    Cmp(CmpKind, TermId, TermId),
    /// Equality at any sort, producing Bool.
    Eq(TermId, TermId),
    /// Logical negation.
    Not(TermId),
    /// N-ary conjunction.
    And(Vec<TermId>),
    /// N-ary disjunction.
    Or(Vec<TermId>),
    /// Array store: `write(arr, idx, val)` with `val: Bool`.
    Store(TermId, TermId, TermId),
    /// Array select: `read(arr, idx)` producing Bool.
    Select(TermId, TermId),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TermData {
    kind: TermKind,
    sort: Sort,
}

/// The term context: allocator and interner. `Clone` snapshots the whole
/// interner — term ids remain valid in the copy, which lets a pre-pass
/// (e.g. the analyzer's prefix table) simplify and intern new terms
/// without mutating the trace's original context.
#[derive(Debug, Default, Clone)]
pub struct Ctx {
    terms: Vec<TermData>,
    intern: HashMap<TermData, TermId>,
    fresh_counter: u64,
}

impl Ctx {
    /// New empty context.
    pub fn new() -> Self {
        Ctx::default()
    }

    fn mk(&mut self, kind: TermKind, sort: Sort) -> TermId {
        let data = TermData { kind, sort };
        if let Some(&id) = self.intern.get(&data) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.intern.insert(data, id);
        id
    }

    /// The structure of a term.
    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.terms[t.0 as usize].kind
    }

    /// The sort of a term.
    pub fn sort(&self, t: TermId) -> &Sort {
        &self.terms[t.0 as usize].sort
    }

    /// Number of interned terms (diagnostics).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the context has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    // ---- leaves ------------------------------------------------------

    /// A named variable of the given sort.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        self.mk(TermKind::Var(name.into()), sort)
    }

    /// A fresh variable whose name embeds `hint` (used when modeling
    /// ignored library functions: the output variable carries no relation
    /// to the inputs — paper Sec. IV).
    pub fn fresh_var(&mut self, hint: &str, sort: Sort) -> TermId {
        self.fresh_counter += 1;
        let name = format!("{hint}!{}", self.fresh_counter);
        self.var(name, sort)
    }

    /// Integer constant.
    pub fn int(&mut self, v: i64) -> TermId {
        self.mk(TermKind::NumConst(Rat::int(v)), Sort::Int)
    }

    /// Real constant.
    pub fn real(&mut self, v: Rat) -> TermId {
        self.mk(TermKind::NumConst(v), Sort::Real)
    }

    /// String constant.
    pub fn str_const(&mut self, s: impl Into<String>) -> TermId {
        self.mk(TermKind::StrConst(s.into()), Sort::Str)
    }

    /// Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.mk(TermKind::BoolConst(b), Sort::Bool)
    }

    // ---- arithmetic --------------------------------------------------

    fn numeric_join(&self, a: TermId, b: TermId, what: &str) -> Sort {
        let (sa, sb) = (self.sort(a).clone(), self.sort(b).clone());
        assert!(
            sa.is_numeric() && sb.is_numeric(),
            "{what} needs numeric operands, got {sa} and {sb}"
        );
        if sa == Sort::Real || sb == Sort::Real {
            Sort::Real
        } else {
            Sort::Int
        }
    }

    /// `a + b`.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let s = self.numeric_join(a, b, "add");
        self.mk(TermKind::Add(a, b), s)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let s = self.numeric_join(a, b, "sub");
        self.mk(TermKind::Sub(a, b), s)
    }

    /// `-a`.
    pub fn neg(&mut self, a: TermId) -> TermId {
        let s = self.sort(a).clone();
        assert!(s.is_numeric(), "neg needs a numeric operand, got {s}");
        self.mk(TermKind::Neg(a), s)
    }

    /// `c * a` for constant `c`.
    pub fn mul_const(&mut self, c: Rat, a: TermId) -> TermId {
        let s = self.sort(a).clone();
        assert!(s.is_numeric(), "mul_const needs a numeric operand, got {s}");
        let s = if c.is_integer() && s == Sort::Int {
            Sort::Int
        } else {
            Sort::Real
        };
        self.mk(TermKind::MulConst(c, a), s)
    }

    // ---- comparisons -------------------------------------------------

    /// `a < b`.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.numeric_join(a, b, "lt");
        self.mk(TermKind::Cmp(CmpKind::Lt, a, b), Sort::Bool)
    }

    /// `a <= b`.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.numeric_join(a, b, "le");
        self.mk(TermKind::Cmp(CmpKind::Le, a, b), Sort::Bool)
    }

    /// `a > b`.
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    /// `a >= b`.
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// `a = b` at any matching sort.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        let (sa, sb) = (self.sort(a).clone(), self.sort(b).clone());
        assert!(
            sa == sb || (sa.is_numeric() && sb.is_numeric()),
            "eq needs same-sorted operands, got {sa} and {sb}"
        );
        // Canonical argument order improves sharing for symmetric ops.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Eq(a, b), Sort::Bool)
    }

    /// `a != b`.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    // ---- booleans ----------------------------------------------------

    /// `!a`.
    pub fn not(&mut self, a: TermId) -> TermId {
        assert_eq!(self.sort(a), &Sort::Bool, "not needs a Bool operand");
        // Double-negation collapse keeps lowering simple.
        if let TermKind::Not(inner) = self.kind(a) {
            return *inner;
        }
        if let TermKind::BoolConst(b) = self.kind(a) {
            let b = !*b;
            return self.bool_const(b);
        }
        self.mk(TermKind::Not(a), Sort::Bool)
    }

    /// N-ary conjunction (empty = true).
    pub fn and(&mut self, parts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat = Vec::new();
        for p in parts {
            assert_eq!(self.sort(p), &Sort::Bool, "and needs Bool operands");
            match self.kind(p) {
                TermKind::BoolConst(true) => {}
                TermKind::BoolConst(false) => return self.bool_const(false),
                TermKind::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.bool_const(true),
            1 => flat[0],
            _ => self.mk(TermKind::And(flat), Sort::Bool),
        }
    }

    /// N-ary disjunction (empty = false).
    pub fn or(&mut self, parts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat = Vec::new();
        for p in parts {
            assert_eq!(self.sort(p), &Sort::Bool, "or needs Bool operands");
            match self.kind(p) {
                TermKind::BoolConst(false) => {}
                TermKind::BoolConst(true) => return self.bool_const(true),
                TermKind::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.bool_const(false),
            1 => flat[0],
            _ => self.mk(TermKind::Or(flat), Sort::Bool),
        }
    }

    /// `a -> b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or([na, b])
    }

    /// Boolean `if c then t else e` (expanded eagerly).
    pub fn ite_bool(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        let then_arm = self.and([c, t]);
        let nc = self.not(c);
        let else_arm = self.and([nc, e]);
        self.or([then_arm, else_arm])
    }

    // ---- arrays ------------------------------------------------------

    /// An array variable `Array<key_sort, Bool>`.
    pub fn array_var(&mut self, name: impl Into<String>, key_sort: Sort) -> TermId {
        self.mk(TermKind::Var(name.into()), Sort::Array(Box::new(key_sort)))
    }

    /// `write(arr, idx, val)` — functional array update.
    pub fn store(&mut self, arr: TermId, idx: TermId, val: TermId) -> TermId {
        let key = match self.sort(arr) {
            Sort::Array(k) => (**k).clone(),
            s => panic!("store needs an array, got {s}"),
        };
        assert_eq!(self.sort(idx), &key, "store index sort mismatch");
        assert_eq!(self.sort(val), &Sort::Bool, "store value must be Bool");
        let arr_sort = self.sort(arr).clone();
        self.mk(TermKind::Store(arr, idx, val), arr_sort)
    }

    /// `read(arr, idx)`.
    ///
    /// Reads over stores are expanded eagerly to `ite(idx = j, v, read(base, idx))`
    /// so the solver only sees reads on array *variables* (read-over-write
    /// reduction).
    pub fn select(&mut self, arr: TermId, idx: TermId) -> TermId {
        let key = match self.sort(arr) {
            Sort::Array(k) => (**k).clone(),
            s => panic!("select needs an array, got {s}"),
        };
        assert_eq!(self.sort(idx), &key, "select index sort mismatch");
        if let TermKind::Store(base, j, v) = self.kind(arr).clone() {
            let same = self.eq(idx, j);
            let base_read = self.select(base, idx);
            return self.ite_bool(same, v, base_read);
        }
        self.mk(TermKind::Select(arr, idx), Sort::Bool)
    }

    /// Pretty-print a term (diagnostics and reports).
    pub fn display(&self, t: TermId) -> String {
        match self.kind(t) {
            TermKind::Var(n) => n.clone(),
            TermKind::BoolConst(b) => b.to_string(),
            TermKind::NumConst(r) => r.to_string(),
            TermKind::StrConst(s) => format!("{s:?}"),
            TermKind::Add(a, b) => format!("({} + {})", self.display(*a), self.display(*b)),
            TermKind::Sub(a, b) => format!("({} - {})", self.display(*a), self.display(*b)),
            TermKind::Neg(a) => format!("(- {})", self.display(*a)),
            TermKind::MulConst(c, a) => format!("({c} * {})", self.display(*a)),
            TermKind::Cmp(CmpKind::Lt, a, b) => {
                format!("({} < {})", self.display(*a), self.display(*b))
            }
            TermKind::Cmp(CmpKind::Le, a, b) => {
                format!("({} <= {})", self.display(*a), self.display(*b))
            }
            TermKind::Eq(a, b) => format!("({} = {})", self.display(*a), self.display(*b)),
            TermKind::Not(a) => format!("(not {})", self.display(*a)),
            TermKind::And(parts) => {
                let inner: Vec<_> = parts.iter().map(|p| self.display(*p)).collect();
                format!("(and {})", inner.join(" "))
            }
            TermKind::Or(parts) => {
                let inner: Vec<_> = parts.iter().map(|p| self.display(*p)).collect();
                format!("(or {})", inner.join(" "))
            }
            TermKind::Store(a, i, v) => format!(
                "(write {} {} {})",
                self.display(*a),
                self.display(*i),
                self.display(*v)
            ),
            TermKind::Select(a, i) => {
                format!("(read {} {})", self.display(*a), self.display(*i))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_structure() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("x", Sort::Int);
        assert_eq!(x, y);
        let one = ctx.int(1);
        let a = ctx.add(x, one);
        let b = ctx.add(x, one);
        assert_eq!(a, b);
    }

    #[test]
    fn sorts_propagate() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let r = ctx.var("r", Sort::Real);
        let s = ctx.add(x, r);
        assert_eq!(ctx.sort(s), &Sort::Real);
        let c = ctx.le(x, r);
        assert_eq!(ctx.sort(c), &Sort::Bool);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn add_on_strings_panics() {
        let mut ctx = Ctx::new();
        let a = ctx.str_const("a");
        let b = ctx.str_const("b");
        let _ = ctx.add(a, b);
    }

    #[test]
    #[should_panic(expected = "same-sorted")]
    fn eq_across_sorts_panics() {
        let mut ctx = Ctx::new();
        let a = ctx.str_const("a");
        let b = ctx.int(1);
        let _ = ctx.eq(a, b);
    }

    #[test]
    fn boolean_simplification() {
        let mut ctx = Ctx::new();
        let t = ctx.bool_const(true);
        let f = ctx.bool_const(false);
        let x = ctx.var("b", Sort::Bool);
        assert_eq!(ctx.and([t, x]), x);
        assert_eq!(ctx.and([f, x]), f);
        assert_eq!(ctx.or([f, x]), x);
        assert_eq!(ctx.or([t, x]), t);
        let nx = ctx.not(x);
        assert_eq!(ctx.not(nx), x);
        assert_eq!(ctx.not(t), f);
    }

    #[test]
    fn and_flattens() {
        let mut ctx = Ctx::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let c = ctx.var("c", Sort::Bool);
        let ab = ctx.and([a, b]);
        let abc = ctx.and([ab, c]);
        match ctx.kind(abc) {
            TermKind::And(v) => assert_eq!(v.len(), 3),
            k => panic!("expected flat And, got {k:?}"),
        }
    }

    #[test]
    fn read_over_write_expands() {
        let mut ctx = Ctx::new();
        let arr = ctx.array_var("m", Sort::Int);
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let t = ctx.bool_const(true);
        let stored = ctx.store(arr, j, t);
        let r = ctx.select(stored, i);
        // Must not contain a Select over a Store.
        fn no_select_over_store(ctx: &Ctx, t: TermId) -> bool {
            match ctx.kind(t) {
                TermKind::Select(a, _) => matches!(ctx.kind(*a), TermKind::Var(_)),
                TermKind::And(v) | TermKind::Or(v) => {
                    v.iter().all(|p| no_select_over_store(ctx, *p))
                }
                TermKind::Not(a) => no_select_over_store(ctx, *a),
                _ => true,
            }
        }
        assert!(no_select_over_store(&ctx, r));
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_var("ret", Sort::Int);
        let b = ctx.fresh_var("ret", Sort::Int);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let one = ctx.int(1);
        let s = ctx.add(x, one);
        let eight = ctx.int(8);
        let c = ctx.eq(s, eight);
        let nc = ctx.not(c);
        assert_eq!(ctx.display(nc), "(not ((x + 1) = 8))");
    }
}

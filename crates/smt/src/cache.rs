//! Cross-query verdict cache keyed by canonical formulas.
//!
//! Traces collected from the same API template re-discharge near-identical
//! solver queries (same SQL templates, same path structure, different
//! variable namespaces). [`VerdictCache`] canonicalizes each query with
//! [`crate::canon::Canonical`] and memoizes the verdict under the canonical
//! key, so the second and later occurrences skip the lazy-SMT loop.
//!
//! Determinism: the cache solves the **rebuilt canonical formula**, not the
//! query that happened to arrive first. The cached verdict — including the
//! model, stored over canonical `v{i}` names — is therefore a pure function
//! of the key, and every query translating that model back through its own
//! renaming gets the same answer no matter which worker filled the entry.
//! Hit/miss *counts* do depend on scheduling (two workers can race on the
//! same key and both miss), so they are surfaced only through
//! [`SolverStats`] and the observability counters, never through anything
//! that must be bit-identical across thread counts.
//!
//! The cache is bypassed when the solver runs incrementally
//! (`TierConfig::incremental`): a persistent
//! [`crate::IncrementalSolver`]'s answers depend on its query sequence,
//! so skipping a query on a cache hit would leave the solver in a
//! different state than a cold run — and cross-pair cache traffic would
//! make that state schedule-dependent. The persistent solver subsumes
//! the cache's win inside each query group anyway: near-identical
//! formulas share lowered clauses and learned lemmas instead of whole
//! canonicalized keys.

use crate::canon::Canonical;
use crate::model::Model;
use crate::solver::{self, check_with_stats, Fastpath, SolveResult, SolverConfig, SolverStats};
use crate::term::{Ctx, TermId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A memoized verdict; SAT models are stored over canonical names.
#[derive(Debug, Clone)]
enum CachedVerdict {
    Sat(Model),
    Unsat,
    /// Resource-limit exhaustion is deterministic (fixed budgets), so
    /// Unknown is cacheable too.
    Unknown,
}

/// Thread-safe SAT/UNSAT memo table over canonicalized formulas.
#[derive(Debug, Default)]
pub struct VerdictCache {
    map: Mutex<HashMap<String, CachedVerdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerdictCache {
    /// New empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache::default()
    }

    /// Decide `assertion` through the cache. Drop-in for
    /// [`crate::solver::check_with_stats`] except the context needs no
    /// mutable borrow (solving happens in a fresh canonical context).
    ///
    /// Observability: hits record `smt.solve_us` / `smt.solve_calls` like a
    /// real solve (so funnel invariants such as `solve_calls ≥
    /// fine_candidates` keep holding) plus `smt.cache_hit`; misses solve via
    /// [`check_with_stats`] (which records those) plus `smt.cache_miss`.
    pub fn check(
        &self,
        ctx: &Ctx,
        assertion: TermId,
        config: &SolverConfig,
    ) -> (SolveResult, SolverStats) {
        let start = std::time::Instant::now();
        let canon = Canonical::of(ctx, assertion);

        let cached = self.map.lock().unwrap().get(&canon.key).cloned();
        if let Some(verdict) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let result = match verdict {
                CachedVerdict::Sat(m) => SolveResult::Sat(canon.translate_model(&m)),
                CachedVerdict::Unsat => SolveResult::Unsat,
                CachedVerdict::Unknown => SolveResult::Unknown,
            };
            let elapsed = start.elapsed();
            if weseer_obs::timeline::enabled() {
                weseer_obs::timeline::complete_since(
                    "smt.solve",
                    "smt",
                    start,
                    &[
                        ("tier", "cache".to_string()),
                        ("verdict", result.verdict_str().to_string()),
                    ],
                );
            }
            weseer_obs::observe_duration("smt.solve_us", elapsed);
            weseer_obs::add("smt.solve_calls", 1);
            weseer_obs::add("smt.cache_hit", 1);
            let stats = SolverStats {
                cache_hits: 1,
                wall_us: elapsed.as_micros() as u64,
                ..SolverStats::default()
            };
            return (result, stats);
        }

        // Miss: solve the canonical formula so the stored entry does not
        // depend on which query got here first.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (mut cctx, cterm) = canon.rebuild(ctx, assertion);
        let (result, mut stats) = check_with_stats(&mut cctx, cterm, config);
        weseer_obs::add("smt.cache_miss", 1);
        stats.cache_misses = 1;

        let (verdict, translated) = match result {
            SolveResult::Sat(m) => {
                let translated = canon.translate_model(&m);
                (CachedVerdict::Sat(m), SolveResult::Sat(translated))
            }
            SolveResult::Unsat => (CachedVerdict::Unsat, SolveResult::Unsat),
            SolveResult::Unknown => (CachedVerdict::Unknown, SolveResult::Unknown),
        };
        // entry().or_insert: under a double-miss race the first entry wins,
        // which is safe because every entry for a key is identical.
        self.map.lock().unwrap().entry(canon.key).or_insert(verdict);
        (translated, stats)
    }

    /// [`VerdictCache::check`] behind the tiered fast path: tier 0
    /// simplifies the formula (needs `&mut Ctx` to intern rewritten
    /// terms), tier 1 tries to discharge it abstractly, and only
    /// fall-through formulas consult the cache — keyed on the
    /// **simplified** form, so alpha-variants that differ only in folded
    /// subterms now share an entry.
    pub fn check_tiered(
        &self,
        ctx: &mut Ctx,
        assertion: TermId,
        config: &SolverConfig,
    ) -> (SolveResult, SolverStats) {
        let start = std::time::Instant::now();
        let mut stats = SolverStats::default();
        match solver::fastpath(ctx, assertion, config, &mut stats) {
            Fastpath::Decided(result) => {
                let elapsed = start.elapsed();
                stats.wall_us = elapsed.as_micros() as u64;
                if weseer_obs::timeline::enabled() {
                    let tier = if stats.t0_discharged > 0 { "t0" } else { "t1" };
                    weseer_obs::timeline::complete_since(
                        "smt.solve",
                        "smt",
                        start,
                        &[
                            ("tier", tier.to_string()),
                            ("verdict", result.verdict_str().to_string()),
                        ],
                    );
                }
                weseer_obs::observe_duration("smt.solve_us", elapsed);
                weseer_obs::add("smt.solve_calls", 1);
                (result, stats)
            }
            Fastpath::Continue(term) => {
                let (result, cache_stats) = self.check(ctx, term, config);
                stats.absorb(cache_stats);
                (result, stats)
            }
        }
    }

    /// Pre-load an entry under its canonical `key` with a verdict whose
    /// model (if SAT) is over canonical `v{i}` names — the shape
    /// [`VerdictCache::export`] hands out. Existing entries win, matching
    /// the double-miss policy of [`VerdictCache::check`]. Seeding does not
    /// touch hit/miss statistics.
    pub fn seed(&self, key: String, verdict: SolveResult) {
        let v = match verdict {
            SolveResult::Sat(m) => CachedVerdict::Sat(m),
            SolveResult::Unsat => CachedVerdict::Unsat,
            SolveResult::Unknown => CachedVerdict::Unknown,
        };
        self.map.lock().unwrap().entry(key).or_insert(v);
    }

    /// Snapshot every entry as `(canonical key, verdict)` in key order.
    /// SAT models come back over canonical names, ready to re-[`seed`].
    ///
    /// [`seed`]: VerdictCache::seed
    pub fn export(&self) -> Vec<(String, SolveResult)> {
        let map = self.map.lock().unwrap();
        let mut out: Vec<(String, SolveResult)> = map
            .iter()
            .map(|(k, v)| {
                let r = match v {
                    CachedVerdict::Sat(m) => SolveResult::Sat(m.clone()),
                    CachedVerdict::Unsat => SolveResult::Unsat,
                    CachedVerdict::Unknown => SolveResult::Unknown,
                };
                (k.clone(), r)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct canonical formulas stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn second_alpha_variant_hits() {
        let cache = VerdictCache::new();
        let mut ctx = Ctx::new();

        let build = |ctx: &mut Ctx, prefix: &str| {
            let x = ctx.var(format!("{prefix}.id"), Sort::Int);
            let three = ctx.int(3);
            ctx.gt(x, three)
        };
        let f1 = build(&mut ctx, "A1");
        let f2 = build(&mut ctx, "B7");

        let (r1, s1) = cache.check(&ctx, f1, &cfg());
        assert!(r1.is_sat());
        assert_eq!((s1.cache_hits, s1.cache_misses), (0, 1));

        let (r2, s2) = cache.check(&ctx, f2, &cfg());
        assert_eq!((s2.cache_hits, s2.cache_misses), (1, 0));
        let m = r2.model().expect("hit still returns a model");
        // The model must come back in *this* query's namespace.
        assert!(m.get_int("B7.id").unwrap() > 3);
        assert!(m.satisfies(&ctx, f2));

        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn verdicts_are_schedule_independent() {
        // Fill the cache from two different alpha-variants of the same
        // formula; both orders must yield identical translated models.
        let mk = |seed_first: bool| {
            let cache = VerdictCache::new();
            let mut ctx = Ctx::new();
            let q = |ctx: &mut Ctx, p: &str| {
                let x = ctx.var(format!("{p}.qty"), Sort::Int);
                let lo = ctx.int(10);
                let hi = ctx.int(20);
                let a = ctx.ge(x, lo);
                let b = ctx.lt(x, hi);
                ctx.and([a, b])
            };
            let fa = q(&mut ctx, "A1");
            let fb = q(&mut ctx, "A2");
            let (first, second) = if seed_first { (fa, fb) } else { (fb, fa) };
            let _ = cache.check(&ctx, first, &cfg());
            let (r, _) = cache.check(&ctx, second, &cfg());
            let m = r.model().unwrap();
            let name = if seed_first { "A2.qty" } else { "A1.qty" };
            m.get_int(name).unwrap()
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn export_seed_round_trip_hits_without_solving() {
        let warm = VerdictCache::new();
        let mut ctx = Ctx::new();
        let x = ctx.var("A1.id", Sort::Int);
        let three = ctx.int(3);
        let f = ctx.gt(x, three);
        let (r0, _) = warm.check(&ctx, f, &cfg());
        assert!(r0.is_sat());

        // A fresh cache seeded from the export must answer the same query
        // as a pure hit, with an identical translated model.
        let cold = VerdictCache::new();
        for (k, v) in warm.export() {
            cold.seed(k, v);
        }
        assert_eq!(cold.len(), 1);
        let (r1, s1) = cold.check(&ctx, f, &cfg());
        assert_eq!((s1.cache_hits, s1.cache_misses), (1, 0));
        let (m0, m1) = (r0.model().unwrap(), r1.model().unwrap());
        assert_eq!(m0.get_int("A1.id"), m1.get_int("A1.id"));
    }

    #[test]
    fn unsat_and_distinct_formulas() {
        let cache = VerdictCache::new();
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let c1 = ctx.lt(zero, x);
        let c2 = ctx.lt(x, one);
        let gap = ctx.and([c1, c2]);
        let (r, _) = cache.check(&ctx, gap, &cfg());
        assert!(matches!(r, SolveResult::Unsat));
        let (r2, s2) = cache.check(&ctx, gap, &cfg());
        assert!(matches!(r2, SolveResult::Unsat));
        assert_eq!(s2.cache_hits, 1);

        // A structurally different formula must not collide.
        let ok = ctx.le(zero, x);
        let (r3, s3) = cache.check(&ctx, ok, &cfg());
        assert!(r3.is_sat());
        assert_eq!(s3.cache_misses, 1);
        assert_eq!(cache.len(), 2);
    }
}

//! Incremental assumption-based SMT solving across related queries.
//!
//! The analyzer's fine-grained phase checks many conflict-condition
//! formulas per transaction pair — one per lock-wait cycle — and those
//! formulas share almost all of their structure: the transactions' path
//! conditions, the unique-id disequalities, and the container
//! read-congruence axioms differ only in the per-cycle edge conditions.
//! A fresh [`crate::check_tiered`] call re-lowers, re-instantiates, and
//! re-searches all of that shared structure for every cycle.
//!
//! [`IncrementalSolver`] keeps one [`Lowering`] and one persistent CDCL
//! [`sat::Solver`] alive across queries. Each query's formula is lowered
//! once (the Tseitin memo shares every already-seen subterm), its root
//! literal is passed to the SAT core as a single *assumption*, and the
//! lazy theory loop runs on top. Everything durable carries over:
//!
//! * **Definitional clauses** (Tseitin): satisfiable on their own (set
//!   the defined variable to its definition's value), so they never
//!   exclude models of later queries.
//! * **Select-congruence axioms**: universally valid, asserted as
//!   permanent units, and instantiated incrementally — each newly seen
//!   `read(array, index)` is paired against the indices already seen on
//!   that array.
//! * **Theory blocking clauses**: lemmas valid in every model of the
//!   theories, so a conflict discovered (and deletion-minimized) for one
//!   cycle never has to be rediscovered for the next.
//! * **Learned clauses**: resolution consequences of the clause database
//!   alone — assumptions enter the search as ordinary decisions and are
//!   never resolved away — so they stay sound for every later query.
//!
//! Determinism: a solver's answers depend on its query sequence, so the
//! analyzer creates one `IncrementalSolver` per transaction pair and
//! feeds it the pair's cycles in canonical order. No state is shared
//! across pairs; verdicts stay byte-identical at any thread count.

use crate::lower::Lowering;
use crate::sat::{self, SatResult};
use crate::solver::{self, Fastpath, SolveResult, SolverConfig, SolverStats, TheoryOutcome};
use crate::term::{Ctx, TermId, TermKind};
use std::collections::{BTreeMap, HashSet};

/// A persistent solver for a sequence of related queries (see the module
/// docs). Create one per query group (the analyzer: per transaction
/// pair), then call [`IncrementalSolver::check_tiered`] per formula.
#[derive(Debug, Default)]
pub struct IncrementalSolver {
    config: SolverConfig,
    low: Lowering,
    sat: sat::Solver,
    /// Clauses of `low.cnf` already mirrored into `sat`.
    synced_clauses: usize,
    /// Per array variable, the select indices seen so far (axiom
    /// instantiation pairs each new index against these).
    selects: BTreeMap<TermId, Vec<TermId>>,
    /// Terms already walked for select discovery.
    visited: HashSet<TermId>,
    /// Every select-congruence axiom asserted so far, keyed by the two
    /// read terms it links — replayed into the query cone of any later
    /// query that contains *both* reads (a query containing only one
    /// never needs the link to justify its own model, and replaying
    /// every axiom of an array would grow each query's theory problem
    /// quadratically in the pair's read history).
    axioms: Vec<(TermId, TermId, TermId)>,
    /// Queries answered (assumption variables spent).
    queries: u64,
}

impl IncrementalSolver {
    /// New incremental solver with the given configuration.
    pub fn new(config: SolverConfig) -> IncrementalSolver {
        IncrementalSolver {
            config,
            sat: sat::Solver::new(),
            ..IncrementalSolver::default()
        }
    }

    /// Number of queries answered so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Decide `assertion` behind the tier-0/tier-1 fast path, with the
    /// same verdicts and observability as [`crate::check_tiered`] but
    /// reusing this solver's accumulated state for the full solves.
    pub fn check_tiered(&mut self, ctx: &mut Ctx, assertion: TermId) -> (SolveResult, SolverStats) {
        let start = std::time::Instant::now();
        let mut stats = SolverStats::default();
        let config = self.config.clone();
        match solver::fastpath(ctx, assertion, &config, &mut stats) {
            Fastpath::Decided(result) => {
                solver::record_fastpath_decided(start, &result, &mut stats);
                self.queries += 1;
                (result, stats)
            }
            Fastpath::Continue(term) => {
                let (result, full_stats) = self.check_assuming(ctx, term);
                stats.absorb(full_stats);
                (result, stats)
            }
        }
    }

    /// Decide `assertion` with the full solver (no fast path), keeping
    /// every clause this solver has accumulated. Records the same
    /// per-call observability as [`crate::check_with_stats`].
    pub fn check_assuming(
        &mut self,
        ctx: &mut Ctx,
        assertion: TermId,
    ) -> (SolveResult, SolverStats) {
        let start = std::time::Instant::now();
        let mut stats = SolverStats::default();
        let result = self.check_assuming_inner(ctx, assertion, &mut stats);
        solver::record_full_solve(start, &result, &mut stats);
        self.queries += 1;
        (result, stats)
    }

    fn check_assuming_inner(
        &mut self,
        ctx: &mut Ctx,
        assertion: TermId,
        stats: &mut SolverStats,
    ) -> SolveResult {
        // 1. Instantiate read-congruence axioms for reads this solver has
        //    not seen yet, pairing them against every read already seen on
        //    the same array. The axioms are universally valid, so they are
        //    asserted as permanent units rather than tied to this query's
        //    assumption.
        self.add_select_congruence_incremental(ctx, assertion);

        // 2. Lower the query to a single literal. The Tseitin memo means
        //    subterms shared with earlier queries (path-condition
        //    prefixes, in the analyzer) lower to the literals and clauses
        //    already in the solver — only this query's delta is new.
        let root = self.low.lower(ctx, assertion);

        // 3. Mirror the new clauses into the persistent SAT core.
        self.sync_sat();
        if !self.sat.is_ok() {
            // A permanent fact (axiom unit or definitional clause) closed
            // the database — cannot happen for satisfiable definitions,
            // but keep the verdict sound if it ever does.
            return SolveResult::Unsat;
        }

        // 4. The current query's *cone*: its own subterms' variables
        //    (plus congruence axioms among its reads) and the clauses
        //    built purely from them. Earlier queries' clauses stay in
        //    the SAT database but their atoms need no theory model here
        //    — Tseitin definitions are satisfiable standalone and
        //    blocking clauses/axioms are valid lemmas. Without the
        //    restriction every theory round re-justifies the whole
        //    accumulated history, which costs more than the
        //    incrementality saves. Both sets are fixed for the whole
        //    theory loop: conflicts only append blocking clauses, whose
        //    literals come from the needed set and are therefore
        //    in-cone.
        let relevant = self.cone_vars(ctx, assertion);
        let mut cone_clauses: Vec<usize> = (0..self.low.cnf.clauses.len())
            .filter(|&i| self.low.cnf.clauses[i].iter().all(|l| relevant[l.var]))
            .collect();

        // 5. Lazy theory loop under the assumption `root`.
        for _ in 0..self.config.max_theory_iters {
            stats.theory_iters += 1;
            stats.sat_calls += 1;
            let (sat_result, sat_stats) = self
                .sat
                .solve_under_assumptions(&[root], self.config.sat_decision_budget);
            stats.sat.absorb(sat_stats);
            let bool_model = match sat_result {
                None => {
                    stats.sat_budget_exhausted += 1;
                    return SolveResult::Unknown;
                }
                Some(SatResult::Unsat) => return SolveResult::Unsat,
                Some(SatResult::Sat(m)) => m,
            };

            // Prime implicant over the cone clauses only. The
            // assumption itself is always needed on top: a query whose
            // formula is a bare atom appears in no clause, so the
            // clause scan alone would never mark it — but its polarity
            // is exactly what the query asserts, so the theories must
            // see it.
            let mut needed =
                solver::prime_implicant_over(&self.low.cnf, &bool_model, &cone_clauses);
            needed[root.var] = true;

            match solver::theory_round(ctx, &self.low, &bool_model, &needed, &self.config, stats) {
                TheoryOutcome::Conflict(core) => {
                    let clause = solver::block(&mut self.low, &core);
                    self.sat.add_clause(&clause);
                    self.synced_clauses = self.low.cnf.clauses.len();
                    cone_clauses.push(self.low.cnf.clauses.len() - 1);
                }
                TheoryOutcome::Unknown => return SolveResult::Unknown,
                TheoryOutcome::Sat(model) => return SolveResult::Sat(*model),
            }
        }
        stats.theory_iters_exhausted += 1;
        SolveResult::Unknown
    }

    /// SAT variables in the cone of the current query: the variables of
    /// every lowered subterm of `root`, plus those of every
    /// select-congruence axiom linking two reads the query contains
    /// (their index-equality atoms must stay theory-visible, or a query
    /// that forces two of its indices equal arithmetically could get a
    /// bogus model). This is exactly the atom set a fresh solve of the
    /// same formula would instantiate. Variables outside the cone belong
    /// to earlier queries; the theories never need to justify them
    /// because everything permanent in the database is satisfiable
    /// standalone or universally valid.
    fn cone_vars(&self, ctx: &Ctx, root: TermId) -> Vec<bool> {
        let mut relevant = vec![false; self.low.cnf.num_vars];
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut stack = vec![root];
        let mut walking_axioms = false;
        loop {
            while let Some(t) = stack.pop() {
                if !seen.insert(t) {
                    continue;
                }
                if let Some(lit) = self.low.lowered_lit(t) {
                    relevant[lit.var] = true;
                }
                // Numeric equalities split into two `≤` atoms that no
                // TermId reaches; pull them in through the side table.
                if let Some([l1, l2]) = self.low.eq_aux_lits(t) {
                    relevant[l1.var] = true;
                    relevant[l2.var] = true;
                }
                match ctx.kind(t).clone() {
                    TermKind::Select(_, idx) => stack.push(idx),
                    TermKind::Add(a, b)
                    | TermKind::Sub(a, b)
                    | TermKind::Cmp(_, a, b)
                    | TermKind::Eq(a, b) => {
                        stack.push(a);
                        stack.push(b);
                    }
                    TermKind::Neg(a) | TermKind::MulConst(_, a) | TermKind::Not(a) => stack.push(a),
                    TermKind::And(parts) | TermKind::Or(parts) => stack.extend(parts),
                    TermKind::Store(a, i, v) => {
                        stack.push(a);
                        stack.push(i);
                        stack.push(v);
                    }
                    TermKind::Var(_)
                    | TermKind::BoolConst(_)
                    | TermKind::NumConst(_)
                    | TermKind::StrConst(_) => {}
                }
            }
            if walking_axioms {
                break;
            }
            // Second pass: the axioms linking two reads the query
            // contains. They reference no reads beyond those, so one
            // extra pass reaches a fixpoint.
            walking_axioms = true;
            stack.extend(
                self.axioms
                    .iter()
                    .filter(|(si, sj, _)| seen.contains(si) && seen.contains(sj))
                    .map(|(_, _, axiom)| *axiom),
            );
        }
        relevant
    }

    /// Push clauses added to the lowering since the last sync into the
    /// persistent SAT core.
    fn sync_sat(&mut self) {
        self.sat.ensure_vars(self.low.cnf.num_vars);
        for i in self.synced_clauses..self.low.cnf.clauses.len() {
            let clause = self.low.cnf.clauses[i].clone();
            self.sat.add_clause(&clause);
        }
        self.synced_clauses = self.low.cnf.clauses.len();
    }

    /// Incremental version of the solver's select-congruence
    /// instantiation: walk only the parts of the DAG this solver has not
    /// visited, and for each newly discovered `read(array, index)` assert
    /// `index = index' → read(array, index) = read(array, index')` against
    /// every previously seen index of that array. Discovery order is the
    /// deterministic DFS order of the query sequence, so identical query
    /// sequences produce identical clause databases.
    fn add_select_congruence_incremental(&mut self, ctx: &mut Ctx, root: TermId) {
        let mut fresh: Vec<(TermId, TermId)> = Vec::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if !self.visited.insert(t) {
                continue;
            }
            match ctx.kind(t).clone() {
                TermKind::Select(arr, idx) => {
                    debug_assert!(matches!(ctx.kind(arr), TermKind::Var(_)));
                    let indexes = self.selects.entry(arr).or_default();
                    if !indexes.contains(&idx) && !fresh.contains(&(arr, idx)) {
                        fresh.push((arr, idx));
                    }
                    stack.push(idx);
                }
                TermKind::Add(a, b)
                | TermKind::Sub(a, b)
                | TermKind::Cmp(_, a, b)
                | TermKind::Eq(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                TermKind::Neg(a) | TermKind::MulConst(_, a) | TermKind::Not(a) => stack.push(a),
                TermKind::And(parts) | TermKind::Or(parts) => stack.extend(parts),
                TermKind::Store(a, i, v) => {
                    stack.push(a);
                    stack.push(i);
                    stack.push(v);
                }
                TermKind::Var(_)
                | TermKind::BoolConst(_)
                | TermKind::NumConst(_)
                | TermKind::StrConst(_) => {}
            }
        }
        for (arr, idx) in fresh {
            let prior = self.selects.get(&arr).cloned().unwrap_or_default();
            for old in prior {
                let idx_eq = ctx.eq(idx, old);
                let si = ctx.select(arr, idx);
                let sj = ctx.select(arr, old);
                let sel_eq = ctx.eq(si, sj);
                let axiom = ctx.implies(idx_eq, sel_eq);
                self.low.assert(ctx, axiom);
                self.axioms.push((si, sj, axiom));
            }
            self.selects.entry(arr).or_default().push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{check_tiered, TierConfig};
    use crate::term::Sort;

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    /// A pair-like query sequence: shared prefix, per-cycle deltas.
    fn prefix_and_deltas(ctx: &mut Ctx) -> (TermId, Vec<TermId>) {
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let zero = ctx.int(0);
        let ten = ctx.int(10);
        let p1 = ctx.ge(x, zero);
        let p2 = ctx.le(x, ten);
        let p3 = ctx.ge(y, zero);
        let prefix = ctx.and([p1, p2, p3]);
        let five = ctx.int(5);
        let twenty = ctx.int(20);
        let d_sat = ctx.eq(x, five); // prefix ∧ x=5 → SAT
        let d_unsat = ctx.gt(x, twenty); // prefix ∧ x>20 → UNSAT
        let xy = ctx.add(x, y);
        let d_mixed = ctx.eq(xy, twenty); // SAT (x=10, y=10)
        (prefix, vec![d_sat, d_unsat, d_mixed])
    }

    #[test]
    fn matches_fresh_solves_on_shared_prefix_queries() {
        let mut ctx = Ctx::new();
        let (prefix, deltas) = prefix_and_deltas(&mut ctx);
        let mut inc = IncrementalSolver::new(cfg());
        for delta in deltas {
            let q = ctx.and([prefix, delta]);
            let (inc_res, _) = inc.check_tiered(&mut ctx, q);
            let (fresh_res, _) = check_tiered(&mut ctx, q, &cfg());
            assert_eq!(
                inc_res.verdict_str(),
                fresh_res.verdict_str(),
                "incremental and fresh solves diverged on {q:?}"
            );
            if let SolveResult::Sat(m) = &inc_res {
                assert!(m.satisfies(&ctx, q), "incremental model must satisfy query");
            }
        }
        assert_eq!(inc.queries(), 3);
    }

    #[test]
    fn bare_atom_query_reaches_the_theories() {
        // A query that lowers to a single atom literal appears in no
        // clause; the assumption itself must force the theory check.
        // x ≤ 0 ∧ x ≥ 1 as two sequential queries: the second query's
        // conjunction is UNSAT.
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let le = ctx.le(x, zero);
        let ge = ctx.ge(x, one);
        let both = ctx.and([le, ge]);
        let mut inc = IncrementalSolver::new(cfg());
        let (r1, _) = inc.check_assuming(&mut ctx, le);
        assert!(matches!(r1, SolveResult::Sat(_)));
        if let SolveResult::Sat(m) = &r1 {
            assert!(m.satisfies(&ctx, le));
        }
        let (r2, _) = inc.check_assuming(&mut ctx, both);
        assert!(matches!(r2, SolveResult::Unsat));
        // The earlier query must still be answerable.
        let (r3, _) = inc.check_assuming(&mut ctx, ge);
        assert!(matches!(r3, SolveResult::Sat(_)));
    }

    #[test]
    fn select_congruence_instantiates_across_queries() {
        // Query 1 reads m[i]; query 2 reads m[j] and asserts i = j with
        // opposite read polarities — UNSAT only if the cross-query
        // congruence axiom was instantiated.
        let mut ctx = Ctx::new();
        let m = ctx.array_var("m", Sort::Int);
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let ri = ctx.select(m, i);
        let rj = ctx.select(m, j);
        let mut inc = IncrementalSolver::new(cfg());
        let (r1, _) = inc.check_assuming(&mut ctx, ri);
        assert!(matches!(r1, SolveResult::Sat(_)));
        let eq = ctx.eq(i, j);
        let nrj = ctx.not(rj);
        let q2 = ctx.and([eq, ri, nrj]);
        let (r2, _) = inc.check_assuming(&mut ctx, q2);
        assert!(matches!(r2, SolveResult::Unsat), "congruence must fire");
    }

    #[test]
    fn blocking_clauses_carry_over() {
        // The same theory conflict posed twice: the second query must not
        // rediscover the conflict from scratch (fewer theory iterations).
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let c1 = ctx.lt(zero, x);
        let c2 = ctx.lt(x, one);
        let f = ctx.and([c1, c2]); // int gap: UNSAT via arith conflicts
        let mut inc = IncrementalSolver::new(cfg());
        let (r1, s1) = inc.check_assuming(&mut ctx, f);
        assert!(matches!(r1, SolveResult::Unsat));
        let (r2, s2) = inc.check_assuming(&mut ctx, f);
        assert!(matches!(r2, SolveResult::Unsat));
        assert!(
            s2.arith_conflicts <= s1.arith_conflicts,
            "second solve must reuse blocking clauses ({} vs {})",
            s2.arith_conflicts,
            s1.arith_conflicts
        );
    }

    #[test]
    fn tier_knobs_still_apply() {
        // With every tier off but solving through the incremental path,
        // verdicts still match (the knob grid is about cost, not truth).
        let mut ctx = Ctx::new();
        let (prefix, deltas) = prefix_and_deltas(&mut ctx);
        let mut off = cfg();
        off.tiers = TierConfig::OFF;
        let mut inc = IncrementalSolver::new(off.clone());
        for delta in deltas {
            let q = ctx.and([prefix, delta]);
            let (inc_res, _) = inc.check_tiered(&mut ctx, q);
            let (fresh_res, _) = check_tiered(&mut ctx, q, &off);
            assert_eq!(inc_res.verdict_str(), fresh_res.verdict_str());
        }
    }
}

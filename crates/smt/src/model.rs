//! Satisfying assignments and model evaluation.
//!
//! When the solver reports SAT, the [`Model`] carries concrete values for
//! every named variable plus the boolean value of each array read. WeSEER
//! surfaces these in deadlock reports so developers can reproduce the
//! deadlock with concrete API inputs and database state (paper Sec. III-B).

use crate::term::{CmpKind, Ctx, Sort, TermId, TermKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A concrete model value.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelValue {
    /// Integer.
    Int(i64),
    /// Real, reported as f64.
    Real(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl fmt::Display for ModelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelValue::Int(i) => write!(f, "{i}"),
            ModelValue::Real(x) => write!(f, "{x}"),
            ModelValue::Str(s) => write!(f, "{s:?}"),
            ModelValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Hashable key for array-read lookups (index values evaluated under the
/// model).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ModelKey {
    /// Integer key.
    Int(i64),
    /// Real key (bit pattern).
    Real(u64),
    /// String key.
    Str(String),
}

impl ModelKey {
    /// Convert an evaluated value to a key.
    pub fn from_value(v: &ModelValue) -> Option<ModelKey> {
        match v {
            ModelValue::Int(i) => Some(ModelKey::Int(*i)),
            ModelValue::Real(x) => Some(ModelKey::Real(x.to_bits())),
            ModelValue::Str(s) => Some(ModelKey::Str(s.clone())),
            ModelValue::Bool(_) => None,
        }
    }
}

/// A satisfying assignment.
#[derive(Debug, Clone, Default)]
pub struct Model {
    values: BTreeMap<String, ModelValue>,
    /// Array-read values: (array variable name, evaluated key) → Bool.
    selects: HashMap<(String, ModelKey), bool>,
}

impl Model {
    /// Internal constructor used by the solver.
    pub(crate) fn new(
        values: BTreeMap<String, ModelValue>,
        selects: HashMap<(String, ModelKey), bool>,
    ) -> Model {
        Model { values, selects }
    }

    /// Reassemble a model from its parts — the inverse of
    /// [`Model::iter`] + [`Model::selects`]. Lets external persistence
    /// layers round-trip models exactly.
    pub fn from_parts(
        values: impl IntoIterator<Item = (String, ModelValue)>,
        selects: impl IntoIterator<Item = ((String, ModelKey), bool)>,
    ) -> Model {
        Model {
            values: values.into_iter().collect(),
            selects: selects.into_iter().collect(),
        }
    }

    /// Iterate the recorded array-read values, in arbitrary order.
    pub fn selects(&self) -> impl Iterator<Item = (&(String, ModelKey), &bool)> {
        self.selects.iter()
    }

    /// The value of a named variable, if it was constrained.
    pub fn get(&self, name: &str) -> Option<&ModelValue> {
        self.values.get(name)
    }

    /// Integer value of a variable (also accepts integral reals).
    pub fn get_int(&self, name: &str) -> Option<i64> {
        match self.values.get(name)? {
            ModelValue::Int(i) => Some(*i),
            ModelValue::Real(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// String value of a variable.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        match self.values.get(name)? {
            ModelValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ModelValue)> {
        self.values.iter()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluate a term under this model.
    ///
    /// Unassigned variables default to `0`, `""`, or `false`; array reads
    /// not recorded default to `false`. Used by tests to verify that
    /// returned models really satisfy the asserted formula.
    pub fn eval(&self, ctx: &Ctx, t: TermId) -> ModelValue {
        match ctx.kind(t).clone() {
            TermKind::Var(name) => match ctx.sort(t) {
                Sort::Int => ModelValue::Int(self.get_int(&name).unwrap_or(0)),
                Sort::Real => match self.values.get(&name) {
                    Some(ModelValue::Real(x)) => ModelValue::Real(*x),
                    Some(ModelValue::Int(i)) => ModelValue::Real(*i as f64),
                    _ => ModelValue::Real(0.0),
                },
                Sort::Str => ModelValue::Str(self.get_str(&name).unwrap_or_default().to_string()),
                Sort::Bool => match self.values.get(&name) {
                    Some(ModelValue::Bool(b)) => ModelValue::Bool(*b),
                    _ => ModelValue::Bool(false),
                },
                Sort::Array(_) => panic!("cannot evaluate an array variable to a value"),
            },
            TermKind::BoolConst(b) => ModelValue::Bool(b),
            TermKind::NumConst(r) => {
                if ctx.sort(t) == &Sort::Int {
                    ModelValue::Int(r.floor() as i64)
                } else {
                    ModelValue::Real(r.to_f64())
                }
            }
            TermKind::StrConst(s) => ModelValue::Str(s),
            TermKind::Add(a, b) => self.num_op(ctx, a, b, |x, y| x + y),
            TermKind::Sub(a, b) => self.num_op(ctx, a, b, |x, y| x - y),
            TermKind::Neg(a) => match self.eval(ctx, a) {
                ModelValue::Int(i) => ModelValue::Int(-i),
                ModelValue::Real(x) => ModelValue::Real(-x),
                v => panic!("neg of non-numeric {v}"),
            },
            TermKind::MulConst(c, a) => {
                let f = c.to_f64();
                match self.eval(ctx, a) {
                    ModelValue::Int(i) => {
                        if c.is_integer() {
                            ModelValue::Int(i * c.num() as i64)
                        } else {
                            ModelValue::Real(i as f64 * f)
                        }
                    }
                    ModelValue::Real(x) => ModelValue::Real(x * f),
                    v => panic!("mul_const of non-numeric {v}"),
                }
            }
            TermKind::Cmp(kind, a, b) => {
                let (x, y) = (self.as_f64(ctx, a), self.as_f64(ctx, b));
                ModelValue::Bool(match kind {
                    CmpKind::Lt => x < y,
                    CmpKind::Le => x <= y,
                })
            }
            TermKind::Eq(a, b) => {
                let (va, vb) = (self.eval(ctx, a), self.eval(ctx, b));
                ModelValue::Bool(match (va, vb) {
                    (ModelValue::Int(x), ModelValue::Int(y)) => x == y,
                    (ModelValue::Str(x), ModelValue::Str(y)) => x == y,
                    (ModelValue::Bool(x), ModelValue::Bool(y)) => x == y,
                    (x, y) => {
                        let fx = match x {
                            ModelValue::Int(i) => i as f64,
                            ModelValue::Real(r) => r,
                            v => panic!("eq across sorts: {v}"),
                        };
                        let fy = match y {
                            ModelValue::Int(i) => i as f64,
                            ModelValue::Real(r) => r,
                            v => panic!("eq across sorts: {v}"),
                        };
                        fx == fy
                    }
                })
            }
            TermKind::Not(a) => match self.eval(ctx, a) {
                ModelValue::Bool(b) => ModelValue::Bool(!b),
                v => panic!("not of non-bool {v}"),
            },
            TermKind::And(parts) => ModelValue::Bool(
                parts
                    .iter()
                    .all(|&p| matches!(self.eval(ctx, p), ModelValue::Bool(true))),
            ),
            TermKind::Or(parts) => ModelValue::Bool(
                parts
                    .iter()
                    .any(|&p| matches!(self.eval(ctx, p), ModelValue::Bool(true))),
            ),
            TermKind::Select(arr, idx) => {
                let name = match ctx.kind(arr) {
                    TermKind::Var(n) => n.clone(),
                    _ => panic!("select base must be an array variable after expansion"),
                };
                let key = ModelKey::from_value(&self.eval(ctx, idx))
                    .expect("array keys are Int/Real/Str");
                ModelValue::Bool(*self.selects.get(&(name, key)).unwrap_or(&false))
            }
            TermKind::Store(..) => panic!("cannot evaluate a store to a scalar"),
        }
    }

    fn as_f64(&self, ctx: &Ctx, t: TermId) -> f64 {
        match self.eval(ctx, t) {
            ModelValue::Int(i) => i as f64,
            ModelValue::Real(x) => x,
            v => panic!("expected numeric, got {v}"),
        }
    }

    fn num_op(&self, ctx: &Ctx, a: TermId, b: TermId, f: impl Fn(f64, f64) -> f64) -> ModelValue {
        match (self.eval(ctx, a), self.eval(ctx, b)) {
            (ModelValue::Int(x), ModelValue::Int(y)) => {
                ModelValue::Int(f(x as f64, y as f64) as i64)
            }
            (x, y) => {
                let fx = match x {
                    ModelValue::Int(i) => i as f64,
                    ModelValue::Real(r) => r,
                    v => panic!("non-numeric operand {v}"),
                };
                let fy = match y {
                    ModelValue::Int(i) => i as f64,
                    ModelValue::Real(r) => r,
                    v => panic!("non-numeric operand {v}"),
                };
                ModelValue::Real(f(fx, fy))
            }
        }
    }

    /// Whether the model makes `t` true.
    pub fn satisfies(&self, ctx: &Ctx, t: TermId) -> bool {
        matches!(self.eval(ctx, t), ModelValue::Bool(true))
    }

    /// The sub-model of one analyzer instance: keeps only variables (and
    /// array reads) whose name starts with `prefix`, with the prefix
    /// stripped.
    ///
    /// The analyzer imports both instances' terms under `"A1."` / `"A2."`
    /// prefixes before solving, so a SAT model assigns `A1.order_id`
    /// etc.; the replay engine evaluates each *trace's own* terms (whose
    /// variables are unprefixed) and needs the assignment back in that
    /// namespace.
    pub fn strip_prefix(&self, prefix: &str) -> Model {
        Model {
            values: self
                .values
                .iter()
                .filter_map(|(n, v)| Some((n.strip_prefix(prefix)?.to_string(), v.clone())))
                .collect(),
            selects: self
                .selects
                .iter()
                .filter_map(|((n, k), v)| {
                    Some(((n.strip_prefix(prefix)?.to_string(), k.clone()), *v))
                })
                .collect(),
        }
    }

    /// A copy with variable (and array) names mapped through `map`; names
    /// absent from the map are kept. Used by the verdict cache to translate
    /// a model over canonical `v{i}` names back to the query's names.
    pub(crate) fn rename(&self, map: &HashMap<String, String>) -> Model {
        let rn = |name: &String| map.get(name).unwrap_or(name).clone();
        Model {
            values: self
                .values
                .iter()
                .map(|(n, v)| (rn(n), v.clone()))
                .collect(),
            selects: self
                .selects
                .iter()
                .map(|((n, k), v)| ((rn(n), k.clone()), *v))
                .collect(),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, v)) in self.values.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_prefix_projects_one_instance() {
        let mut values = BTreeMap::new();
        values.insert("A1.order_id".to_string(), ModelValue::Int(7));
        values.insert("A2.order_id".to_string(), ModelValue::Int(9));
        values.insert("A1.name".to_string(), ModelValue::Str("x".into()));
        let mut selects = HashMap::new();
        selects.insert(("A1.rows".to_string(), ModelKey::Int(7)), true);
        selects.insert(("A2.rows".to_string(), ModelKey::Int(9)), false);
        let m = Model::new(values, selects);

        let a1 = m.strip_prefix("A1.");
        assert_eq!(a1.get_int("order_id"), Some(7));
        assert_eq!(a1.get_str("name"), Some("x"));
        assert_eq!(a1.get("A2.order_id"), None);
        assert_eq!(a1.len(), 2);

        let a2 = m.strip_prefix("A2.");
        assert_eq!(a2.get_int("order_id"), Some(9));
        assert_eq!(a2.len(), 1);
    }
}

//! # weseer-smt
//!
//! A from-scratch SMT solver for the fragment WeSEER's deadlock analyzer
//! emits (the paper uses Z3 4.8.14; this crate is its offline stand-in):
//!
//! * quantifier-free boolean combinations,
//! * linear integer/real arithmetic (Fourier–Motzkin + branch-and-bound),
//! * string (dis)equality (union–find),
//! * `Array<K, Bool>` with `read`/`write` (read-over-write reduction plus
//!   lazily instantiated congruence axioms), used by the paper's Alg. 1
//!   container modeling,
//! * model generation — SAT answers carry concrete assignments that the
//!   deadlock reports surface to developers.
//!
//! ## Example
//!
//! ```
//! use weseer_smt::{Ctx, Sort, SolverConfig, SolveResult, check};
//!
//! let mut ctx = Ctx::new();
//! let a = ctx.var("syma", Sort::Int);
//! let one = ctx.int(1);
//! let sum = ctx.add(a, one);
//! let eight = ctx.int(8);
//! let ne = ctx.ne(sum, eight);
//! let three = ctx.int(3);
//! let gt = ctx.gt(a, three);
//! let f = ctx.and([ne, gt]);
//! match check(&mut ctx, f, &SolverConfig::default()) {
//!     SolveResult::Sat(model) => {
//!         let v = model.get_int("syma").unwrap();
//!         assert!(v > 3 && v + 1 != 8);
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

pub mod arith;
pub mod cache;
pub mod canon;
pub mod incremental;
pub mod lower;
pub mod model;
pub mod presolve;
pub mod rational;
pub mod sat;
pub mod simplify;
pub mod solver;
pub mod strings;
pub mod term;

pub use cache::VerdictCache;
pub use canon::Canonical;
pub use incremental::IncrementalSolver;
pub use model::{Model, ModelKey, ModelValue};
pub use presolve::{presolve, PresolveResult};
pub use rational::Rat;
pub use simplify::{simplify, Simplifier};
pub use solver::{
    check, check_all, check_tiered, check_with_stats, SolveResult, SolverConfig, SolverStats,
    TierConfig,
};
pub use term::{Ctx, Sort, TermId, TermKind};

//! Equality theory over strings.
//!
//! WeSEER models Java `String` comparisons as (dis)equalities (paper
//! Sec. IV-B and Fig. 7's `StrOp ::= != | =`). A union–find over string
//! terms decides conjunctions of equalities and disequalities and produces
//! a satisfying assignment where every unconstrained class receives a fresh
//! distinct string.

use std::collections::{HashMap, HashSet};

/// A string term: a free variable or a literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StrTerm {
    /// Named variable.
    Var(String),
    /// String literal.
    Const(String),
}

/// Result of the string theory check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrResult {
    /// Satisfiable; maps every variable mentioned to a concrete string.
    Sat(HashMap<String, String>),
    /// Unsatisfiable.
    Unsat,
}

struct UnionFind {
    parent: Vec<usize>,
    /// The literal pinned to each class root, if any.
    pinned: Vec<Option<String>>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: Vec::new(),
            pinned: Vec::new(),
        }
    }

    fn make(&mut self, pinned: Option<String>) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        self.pinned.push(pinned);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Union two classes; `false` when their pinned literals disagree.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return true;
        }
        match (&self.pinned[ra], &self.pinned[rb]) {
            (Some(x), Some(y)) if x != y => return false,
            _ => {}
        }
        let pin = self.pinned[ra].clone().or_else(|| self.pinned[rb].clone());
        self.parent[ra] = rb;
        self.pinned[rb] = pin;
        true
    }
}

/// Decide `⋀ eqs ∧ ⋀ neqs` and build a model on success.
pub fn solve(eqs: &[(StrTerm, StrTerm)], neqs: &[(StrTerm, StrTerm)]) -> StrResult {
    let mut uf = UnionFind::new();
    let mut ids: HashMap<StrTerm, usize> = HashMap::new();
    let mut consts: HashSet<String> = HashSet::new();

    let mut id_of = |t: &StrTerm, uf: &mut UnionFind, consts: &mut HashSet<String>| -> usize {
        if let Some(&i) = ids.get(t) {
            return i;
        }
        let pin = match t {
            StrTerm::Const(s) => {
                consts.insert(s.clone());
                Some(s.clone())
            }
            StrTerm::Var(_) => None,
        };
        let i = uf.make(pin);
        ids.insert(t.clone(), i);
        i
    };

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (a, b) in eqs {
        let (ia, ib) = (
            id_of(a, &mut uf, &mut consts),
            id_of(b, &mut uf, &mut consts),
        );
        pairs.push((ia, ib));
    }
    let mut neq_pairs: Vec<(usize, usize)> = Vec::new();
    for (a, b) in neqs {
        let (ia, ib) = (
            id_of(a, &mut uf, &mut consts),
            id_of(b, &mut uf, &mut consts),
        );
        neq_pairs.push((ia, ib));
    }
    // Sort by assigned id (ids are handed out in deterministic input order)
    // so the fresh-string assignment below never depends on HashMap
    // iteration order — the verdict cache needs bit-identical models for
    // identical queries.
    let mut term_ids: Vec<(StrTerm, usize)> = ids.iter().map(|(t, &i)| (t.clone(), i)).collect();
    term_ids.sort_by_key(|&(_, i)| i);

    for (ia, ib) in pairs {
        if !uf.union(ia, ib) {
            return StrResult::Unsat;
        }
    }
    for (ia, ib) in neq_pairs {
        if uf.find(ia) == uf.find(ib) {
            return StrResult::Unsat;
        }
        // Two distinct literals are trivially unequal; two distinct classes
        // pinned to the same literal are equal — conflict.
        let (ra, rb) = (uf.find(ia), uf.find(ib));
        if let (Some(x), Some(y)) = (&uf.pinned[ra], &uf.pinned[rb]) {
            if x == y {
                return StrResult::Unsat;
            }
        }
    }

    // Model: pinned classes keep their literal; others get fresh strings
    // distinct from every literal and from each other.
    let mut class_value: HashMap<usize, String> = HashMap::new();
    let mut fresh = 0usize;
    let mut model = HashMap::new();
    for (term, id) in term_ids {
        let root = uf.find(id);
        let value = class_value
            .entry(root)
            .or_insert_with(|| {
                if let Some(pin) = &uf.pinned[root] {
                    pin.clone()
                } else {
                    loop {
                        let cand = format!("str!{fresh}");
                        fresh += 1;
                        if !consts.contains(&cand) {
                            break cand;
                        }
                    }
                }
            })
            .clone();
        if let StrTerm::Var(name) = term {
            model.insert(name, value);
        }
    }
    StrResult::Sat(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> StrTerm {
        StrTerm::Var(s.to_string())
    }
    fn c(s: &str) -> StrTerm {
        StrTerm::Const(s.to_string())
    }

    #[test]
    fn transitive_equality() {
        let eqs = [(v("a"), v("b")), (v("b"), v("c")), (v("c"), c("hello"))];
        match solve(&eqs, &[]) {
            StrResult::Sat(m) => {
                assert_eq!(m["a"], "hello");
                assert_eq!(m["b"], "hello");
                assert_eq!(m["c"], "hello");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn const_clash_unsat() {
        let eqs = [(v("a"), c("x")), (v("a"), c("y"))];
        assert_eq!(solve(&eqs, &[]), StrResult::Unsat);
    }

    #[test]
    fn diseq_within_class_unsat() {
        let eqs = [(v("a"), v("b"))];
        let neqs = [(v("a"), v("b"))];
        assert_eq!(solve(&eqs, &neqs), StrResult::Unsat);
    }

    #[test]
    fn diseq_between_same_literal_unsat() {
        let eqs = [(v("a"), c("x")), (v("b"), c("x"))];
        let neqs = [(v("a"), v("b"))];
        assert_eq!(solve(&eqs, &neqs), StrResult::Unsat);
    }

    #[test]
    fn diseq_satisfiable_with_fresh_values() {
        let neqs = [(v("a"), v("b")), (v("a"), c("taken"))];
        match solve(&[], &neqs) {
            StrResult::Sat(m) => {
                assert_ne!(m["a"], m["b"]);
                assert_ne!(m["a"], "taken");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn fresh_values_avoid_literals() {
        // A literal that looks like a generated fresh value must be dodged.
        let neqs = [(v("a"), c("str!0"))];
        match solve(&[], &neqs) {
            StrResult::Sat(m) => assert_ne!(m["a"], "str!0"),
            _ => panic!(),
        }
    }

    #[test]
    fn literal_to_literal() {
        assert!(matches!(solve(&[(c("x"), c("x"))], &[]), StrResult::Sat(_)));
        assert_eq!(solve(&[(c("x"), c("y"))], &[]), StrResult::Unsat);
        assert!(matches!(solve(&[], &[(c("x"), c("y"))]), StrResult::Sat(_)));
        assert_eq!(solve(&[], &[(c("x"), c("x"))]), StrResult::Unsat);
    }

    #[test]
    fn empty_is_sat() {
        assert!(matches!(solve(&[], &[]), StrResult::Sat(_)));
    }
}

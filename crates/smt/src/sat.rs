//! A small DPLL SAT core.
//!
//! The lazy-SMT loop in [`crate::solver`] re-solves the boolean skeleton
//! after each theory conflict adds a blocking clause. Formulas produced by
//! the deadlock analyzer are small (hundreds of variables), so a classic
//! iterative DPLL with unit propagation is more than sufficient and keeps
//! the solver auditable.

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A CNF formula with a growable clause set.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Add a clause. An empty clause makes the formula trivially UNSAT.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        self.clauses.push(lits.into());
    }

    /// Add a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.clauses.push(vec![lit]);
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with one assignment per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

/// Search-effort counters for one SAT call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions made (flips after conflicts included).
    pub decisions: u64,
    /// Assignments implied by unit propagation.
    pub propagations: u64,
}

impl SatStats {
    /// Accumulate another call's counters into this one.
    pub fn absorb(&mut self, other: SatStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
    }
}

/// Solve a CNF formula with DPLL: two-watched-literal unit propagation and
/// chronological backtracking (flip the last untried decision). No clause
/// learning — the lazy-SMT loop's blocking clauses arrive from outside.
pub fn solve(cnf: &Cnf) -> SatResult {
    solve_budgeted(cnf, u64::MAX).expect("unbounded solve cannot exhaust its budget")
}

/// Like [`solve`] but giving up (`None`) after `max_decisions` branching
/// decisions — the lazy-SMT loop maps exhaustion to a solver timeout
/// (the paper reports no deadlock on timeout).
pub fn solve_budgeted(cnf: &Cnf, max_decisions: u64) -> Option<SatResult> {
    solve_instrumented(cnf, max_decisions).0
}

/// Like [`solve_budgeted`] but also reporting how much search the call
/// performed, budget-exhausted or not. The lazy-SMT loop aggregates these
/// per [`crate::solver::check_with_stats`] call.
pub fn solve_instrumented(cnf: &Cnf, max_decisions: u64) -> (Option<SatResult>, SatStats) {
    let mut stats = SatStats::default();
    let n = cnf.num_vars;
    let code = |l: Lit| -> usize { l.var * 2 + usize::from(l.positive) };

    // Clause database (clauses with ≥2 literals get watches).
    let mut assign: Vec<Option<bool>> = vec![None; n];
    #[derive(Debug)]
    struct TrailEntry {
        var: usize,
        decision: bool,
        flipped: bool,
    }
    let mut trail: Vec<TrailEntry> = Vec::new();
    let mut prop_head = 0usize;

    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(cnf.clauses.len());
    let mut watches: Vec<Vec<usize>> = vec![Vec::new(); n * 2];
    let mut initial_units: Vec<Lit> = Vec::new();
    for c in &cnf.clauses {
        match c.len() {
            0 => return (Some(SatResult::Unsat), stats),
            1 => initial_units.push(c[0]),
            _ => {
                let idx = clauses.len();
                watches[code(c[0])].push(idx);
                watches[code(c[1])].push(idx);
                clauses.push(c.clone());
            }
        }
    }

    // Enqueue an implied/decided assignment; false on immediate conflict.
    let enqueue = |lit: Lit,
                   decision: bool,
                   assign: &mut Vec<Option<bool>>,
                   trail: &mut Vec<TrailEntry>|
     -> bool {
        match assign[lit.var] {
            Some(v) => v == lit.positive,
            None => {
                assign[lit.var] = Some(lit.positive);
                trail.push(TrailEntry {
                    var: lit.var,
                    decision,
                    flipped: false,
                });
                true
            }
        }
    };

    for lit in initial_units {
        if !enqueue(lit, false, &mut assign, &mut trail) {
            return (Some(SatResult::Unsat), stats);
        }
        stats.propagations += 1;
    }

    // Watched-literal propagation from trail[prop_head..]; false on
    // conflict.
    let propagate = |prop_head: &mut usize,
                     assign: &mut Vec<Option<bool>>,
                     trail: &mut Vec<TrailEntry>,
                     clauses: &mut [Vec<Lit>],
                     watches: &mut [Vec<usize>],
                     propagations: &mut u64|
     -> bool {
        while *prop_head < trail.len() {
            let var = trail[*prop_head].var;
            *prop_head += 1;
            let value = assign[var].expect("trail var assigned");
            // The literal that became FALSE.
            let false_lit = Lit {
                var,
                positive: !value,
            };
            let fcode = false_lit.var * 2 + usize::from(false_lit.positive);
            let mut i = 0;
            while i < watches[fcode].len() {
                let ci = watches[fcode][i];
                let clause = &mut clauses[ci];
                // Ensure the false literal sits at position 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                // Already satisfied through the other watch?
                let w0 = clause[0];
                if assign[w0.var] == Some(w0.positive) {
                    i += 1;
                    continue;
                }
                // Find a new watchable literal.
                let mut moved = false;
                for k in 2..clause.len() {
                    let cand = clause[k];
                    if assign[cand.var] != Some(!cand.positive) {
                        clause.swap(1, k);
                        let ncode = cand.var * 2 + usize::from(cand.positive);
                        watches[ncode].push(ci);
                        watches[fcode].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict on w0.
                match assign[w0.var] {
                    None => {
                        assign[w0.var] = Some(w0.positive);
                        trail.push(TrailEntry {
                            var: w0.var,
                            decision: false,
                            flipped: false,
                        });
                        *propagations += 1;
                        i += 1;
                    }
                    Some(v) if v == w0.positive => {
                        i += 1;
                    }
                    Some(_) => return false, // conflict
                }
            }
        }
        true
    };

    // Backtrack to the last unflipped decision and flip it.
    let backtrack = |prop_head: &mut usize,
                     assign: &mut Vec<Option<bool>>,
                     trail: &mut Vec<TrailEntry>|
     -> bool {
        while let Some(entry) = trail.pop() {
            let val = assign[entry.var].expect("trail var assigned");
            assign[entry.var] = None;
            if entry.decision && !entry.flipped {
                assign[entry.var] = Some(!val);
                trail.push(TrailEntry {
                    var: entry.var,
                    decision: true,
                    flipped: true,
                });
                *prop_head = trail.len() - 1;
                return true;
            }
        }
        false
    };

    let mut next_search = 0usize; // decision variable cursor
    loop {
        if !propagate(
            &mut prop_head,
            &mut assign,
            &mut trail,
            &mut clauses,
            &mut watches,
            &mut stats.propagations,
        ) {
            if !backtrack(&mut prop_head, &mut assign, &mut trail) {
                return (Some(SatResult::Unsat), stats);
            }
            stats.decisions += 1; // a flip is a decision too
            if stats.decisions > max_decisions {
                return (None, stats);
            }
            next_search = 0;
            continue;
        }
        // Decide the next unassigned variable (true-first polarity: theory
        // atoms prefer the weaker, usually-satisfiable direction).
        let mut decided = false;
        while next_search < n {
            if assign[next_search].is_none() {
                assign[next_search] = Some(true);
                trail.push(TrailEntry {
                    var: next_search,
                    decision: true,
                    flipped: false,
                });
                decided = true;
                stats.decisions += 1;
                if stats.decisions > max_decisions {
                    return (None, stats);
                }
                break;
            }
            next_search += 1;
        }
        if !decided {
            if assign.iter().any(|a| a.is_none()) {
                // A backtrack may have exposed unassigned vars before the
                // cursor; rescan.
                next_search = 0;
                continue;
            }
            let model = assign.iter().map(|a| a.expect("complete")).collect();
            return (Some(SatResult::Sat(model)), stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_model(cnf: &Cnf, model: &[bool]) -> bool {
        cnf.clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var] == l.positive))
    }

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        cnf.add_unit(Lit::pos(a));
        match solve(&cnf) {
            SatResult::Sat(m) => assert!(m[a]),
            _ => panic!(),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        cnf.add_unit(Lit::pos(a));
        cnf.add_unit(Lit::neg(a));
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut cnf = Cnf::default();
        let _ = cnf.new_var();
        cnf.add_clause(Vec::<Lit>::new());
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn requires_backtracking() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b) is UNSAT;
        // dropping the last clause makes it SAT with a=b=true... verify both.
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause(vec![Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause(vec![Lit::neg(a), Lit::pos(b)]);
        match solve(&cnf) {
            SatResult::Sat(m) => assert!(check_model(&cnf, &m)),
            _ => panic!("should be SAT"),
        }
        cnf.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut cnf = Cnf::default();
        let mut p = [[0usize; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = cnf.new_var();
            }
        }
        for row in &p {
            cnf.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for (i1, r1) in p.iter().enumerate() {
            for r2 in p.iter().skip(i1 + 1) {
                for (c1, c2) in r1.iter().zip(r2) {
                    cnf.add_clause(vec![Lit::neg(*c1), Lit::neg(*c2)]);
                }
            }
        }
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn instrumented_counts_search_effort() {
        // The pigeonhole instance forces both decisions and propagations.
        let mut cnf = Cnf::default();
        let mut p = [[0usize; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = cnf.new_var();
            }
        }
        for row in &p {
            cnf.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for (i1, r1) in p.iter().enumerate() {
            for r2 in p.iter().skip(i1 + 1) {
                for (c1, c2) in r1.iter().zip(r2) {
                    cnf.add_clause(vec![Lit::neg(*c1), Lit::neg(*c2)]);
                }
            }
        }
        let (res, stats) = solve_instrumented(&cnf, u64::MAX);
        assert_eq!(res, Some(SatResult::Unsat));
        assert!(stats.decisions > 0);
        assert!(stats.propagations > 0);

        // A budget of 1 decision must exhaust, and the counters must
        // respect the budget.
        let (res, stats) = solve_instrumented(&cnf, 1);
        assert_eq!(res, None);
        assert!(stats.decisions >= 1);

        let mut total = SatStats::default();
        total.absorb(stats);
        total.absorb(stats);
        assert_eq!(total.decisions, 2 * stats.decisions);
    }

    proptest! {
        /// Random 3-SAT near/below the threshold: whenever the solver says
        /// SAT, the model must actually satisfy the clauses; whenever it
        /// says UNSAT on small instances, brute force must agree.
        #[test]
        fn random_3sat_sound(
            n_vars in 1usize..8,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4),
                0..20,
            )
        ) {
            let mut cnf = Cnf::default();
            for _ in 0..n_vars {
                cnf.new_var();
            }
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit { var: v % n_vars, positive: pos })
                    .collect();
                cnf.add_clause(lits);
            }
            let brute_sat = (0u32..(1 << n_vars)).any(|bits| {
                let model: Vec<bool> = (0..n_vars).map(|i| bits & (1 << i) != 0).collect();
                check_model(&cnf, &model)
            });
            match solve(&cnf) {
                SatResult::Sat(m) => {
                    prop_assert!(check_model(&cnf, &m));
                    prop_assert!(brute_sat);
                }
                SatResult::Unsat => prop_assert!(!brute_sat),
            }
        }
    }
}

//! A CDCL SAT core with incremental assumption-based solving.
//!
//! The lazy-SMT loop in [`crate::solver`] re-solves the boolean skeleton
//! after each theory conflict adds a blocking clause. The [`Solver`] here
//! is persistent: the clause database, two-watched-literal lists, learned
//! clauses, and variable activities survive across
//! [`Solver::solve_under_assumptions`] calls, so each re-solve (and, in
//! the analyzer's incremental mode, each cycle of a transaction pair)
//! starts from everything the previous calls proved.
//!
//! The search is classic CDCL: first-UIP conflict analysis with learned
//! clause recording and non-chronological backjumping, VSIDS variable
//! activities with phase saving, Luby restarts, and LBD-based learned
//! clause database reduction. Every heuristic breaks ties
//! deterministically (lowest variable index wins; clause traversal is in
//! insertion order), so a solve is a pure function of the clause/call
//! sequence — the verdict cache and the deterministic parallel scheduler
//! both rely on that.
//!
//! The pre-CDCL chronological-backtracking DPLL survives as
//! [`solve_dpll_instrumented`]; the `no_cdcl` ablation config and the
//! differential proptests run it against the CDCL core.

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Watch-list index of this literal.
    fn code(self) -> usize {
        self.var * 2 + usize::from(self.positive)
    }
}

/// A CNF formula with a growable clause set.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Add a clause. An empty clause makes the formula trivially UNSAT.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        self.clauses.push(lits.into());
    }

    /// Add a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.clauses.push(vec![lit]);
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with one assignment per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

/// Search-effort counters for one SAT call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions made (assumption placements included).
    pub decisions: u64,
    /// Assignments implied by unit propagation.
    pub propagations: u64,
    /// Conflicts hit (each one triggers first-UIP analysis under CDCL).
    pub conflicts: u64,
    /// Learned clauses recorded (units included).
    pub learned: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Learned-clause database reductions performed.
    pub db_reductions: u64,
}

impl SatStats {
    /// Accumulate another call's counters into this one.
    pub fn absorb(&mut self, other: SatStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.learned += other.learned;
        self.restarts += other.restarts;
        self.db_reductions += other.db_reductions;
    }
}

/// Conflicts between Luby restarts, scaled by `luby()`.
const RESTART_BASE: u64 = 100;
/// Geometric VSIDS decay: activities effectively shrink by this factor
/// per conflict (implemented by growing the increment).
const VAR_DECAY: f64 = 0.95;
/// Rescale threshold for activities (pure magnitude management; the
/// rescale divides everything uniformly, so comparisons are unchanged).
const ACTIVITY_RESCALE: f64 = 1e100;

/// The i-th term (0-based) of the Luby restart sequence 1,1,2,1,1,2,4,…
fn luby(mut x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    /// Literal block distance at learn time (0 for original clauses).
    lbd: u32,
    /// Lazily detached from watch lists after DB reduction.
    deleted: bool,
}

/// A persistent CDCL solver.
///
/// Clauses accumulate via [`Solver::add_clause`] (only legal at decision
/// level 0, which is where every `solve_under_assumptions` call leaves
/// the solver). Learned clauses, watch lists, activities, and saved
/// phases persist across calls: a learned clause is a resolution
/// consequence of the clause database alone — assumptions enter the
/// search as ordinary decisions and are never resolved away — so it
/// remains valid for every later call no matter which assumptions that
/// call passes.
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Clause indices watching each literal code.
    watches: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    level: Vec<usize>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    /// VSIDS activity per variable; ties break toward the lowest index.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phase per variable; initialized `true` to mirror the legacy
    /// DPLL's true-first polarity (theory atoms prefer the weaker,
    /// usually-satisfiable direction).
    phase: Vec<bool>,
    /// Scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// False once the clause database is UNSAT outright (level-0
    /// conflict); unsatisfiability *under assumptions* does not clear it.
    ok: bool,
    n_learnts: usize,
    max_learnts: usize,
    restarts_done: u64,
    stats: SatStats,
}

impl Solver {
    /// New empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// A solver loaded with `cnf`'s variables and clauses.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new();
        s.ensure_vars(cnf.num_vars);
        for c in &cnf.clauses {
            s.add_clause(c);
        }
        s
    }

    /// Grow the variable space to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        self.num_vars = n;
        self.watches.resize(n * 2, Vec::new());
        self.assign.resize(n, None);
        self.level.resize(n, 0);
        self.reason.resize(n, None);
        self.activity.resize(n, 0.0);
        self.phase.resize(n, true);
        self.seen.resize(n, false);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Whether the clause database itself is still satisfiable as far as
    /// the solver knows (false after a level-0 conflict).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var].map(|v| v == l.positive)
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Add a clause to the database. Must be called at decision level 0
    /// (between solves); literals already false at level 0 are dropped
    /// and clauses already true at level 0 are skipped.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0, "add_clause between solves only");
        if !self.ok {
            return;
        }
        let mut lits = lits.to_vec();
        lits.sort_by_key(|l| (l.var, l.positive));
        lits.dedup();
        // Tautology (v ∨ ¬v) — sorted order puts the pair adjacent.
        if lits.windows(2).any(|w| w[0].var == w[1].var) {
            return;
        }
        for l in &lits {
            debug_assert!(l.var < self.num_vars, "literal var out of range");
        }
        if lits.iter().any(|&l| self.value(l) == Some(true)) {
            return;
        }
        lits.retain(|&l| self.value(l).is_none());
        match lits.len() {
            0 => self.ok = false,
            1 => {
                if !self.enqueue(lits[0], None) {
                    self.ok = false;
                }
            }
            _ => {
                let ci = self.clauses.len();
                self.watches[lits[0].code()].push(ci);
                self.watches[lits[1].code()].push(ci);
                self.clauses.push(Clause {
                    lits,
                    learned: false,
                    lbd: 0,
                    deleted: false,
                });
            }
        }
    }

    /// Record an assignment; `false` means it contradicts the current one.
    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.value(lit) {
            Some(v) => v,
            None => {
                self.assign[lit.var] = Some(lit.positive);
                self.level[lit.var] = self.decision_level();
                self.reason[lit.var] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Watched-literal propagation; returns the conflicting clause index.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            let false_lit = lit.negated();
            let fcode = false_lit.code();
            let mut i = 0;
            while i < self.watches[fcode].len() {
                let ci = self.watches[fcode][i];
                if self.clauses[ci].deleted {
                    self.watches[fcode].swap_remove(i);
                    continue;
                }
                // Keep the false literal at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let w0 = self.clauses[ci].lits[0];
                if self.value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                // Find a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.code()].push(ci);
                        self.watches[fcode].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict on w0.
                match self.value(w0) {
                    None => {
                        self.stats.propagations += 1;
                        let accepted = self.enqueue(w0, Some(ci));
                        debug_assert!(accepted);
                        i += 1;
                    }
                    Some(true) => i += 1,
                    Some(false) => {
                        // Drain the queue so the next propagate starts clean.
                        self.prop_head = self.trail.len();
                        return Some(ci);
                    }
                }
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    /// First-UIP conflict analysis: resolve the conflict clause backwards
    /// along the trail until exactly one literal of the current decision
    /// level remains. Returns the learned clause (asserting literal at
    /// position 0, backjump-level literal at position 1), the backjump
    /// level, and the clause's LBD.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, usize, u32) {
        let cur_level = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot for the asserting lit
        let mut counter = 0usize;
        let mut resolved_any = false;
        let mut idx = self.trail.len();
        let mut to_clear: Vec<usize> = Vec::new();
        loop {
            // A reason clause implies its position-0 literal; skip it so we
            // resolve on the remaining antecedents only. The initial
            // conflict clause contributes every literal.
            let start = usize::from(resolved_any);
            for k in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                if !self.seen[q.var] && self.level[q.var] > 0 {
                    self.seen[q.var] = true;
                    to_clear.push(q.var);
                    self.bump_var(q.var);
                    if self.level[q.var] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var] {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen[p.var] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.negated();
                break;
            }
            confl = self.reason[p.var].expect("non-UIP trail literal has a reason");
            resolved_any = true;
        }
        for v in to_clear {
            self.seen[v] = false;
        }
        // Backjump level: the highest level among the non-asserting
        // literals (0 for a learned unit); keep that literal at position 1
        // so it is one of the watches.
        let mut bt = 0usize;
        if learnt.len() > 1 {
            let mut max_k = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var] > self.level[learnt[max_k].var] {
                    max_k = k;
                }
            }
            learnt.swap(1, max_k);
            bt = self.level[learnt[1].var];
        }
        // LBD: distinct decision levels among the learned literals.
        let mut levels: Vec<usize> = learnt.iter().map(|l| self.level[l.var]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        (learnt, bt, lbd)
    }

    /// Undo the trail down to `target_level`, saving phases.
    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level];
        for j in (bound..self.trail.len()).rev() {
            let lit = self.trail[j];
            self.phase[lit.var] = lit.positive;
            self.assign[lit.var] = None;
            self.reason[lit.var] = None;
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target_level);
        self.prop_head = bound;
    }

    /// Attach a learned clause and enqueue its asserting literal.
    fn attach_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.stats.learned += 1;
        if learnt.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            let accepted = self.enqueue(learnt[0], None);
            debug_assert!(accepted, "asserting unit contradicted after backjump");
            return;
        }
        let ci = self.clauses.len();
        self.watches[learnt[0].code()].push(ci);
        self.watches[learnt[1].code()].push(ci);
        let l0 = learnt[0];
        self.clauses.push(Clause {
            lits: learnt,
            learned: true,
            lbd,
            deleted: false,
        });
        self.n_learnts += 1;
        let accepted = self.enqueue(l0, Some(ci));
        debug_assert!(accepted, "asserting literal contradicted after backjump");
    }

    /// A clause currently serving as the reason for its implied literal
    /// must not be deleted.
    fn locked(&self, ci: usize) -> bool {
        let l0 = self.clauses[ci].lits[0];
        self.value(l0) == Some(true) && self.reason[l0.var] == Some(ci)
    }

    /// Drop the worst half of the deletable learned clauses: highest LBD
    /// first, oldest first within an LBD tier. Clauses with LBD ≤ 2
    /// ("glue" clauses) and clauses locked as reasons are kept. Deleted
    /// clauses detach from watch lists lazily during propagation.
    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        if weseer_obs::timeline::enabled() {
            weseer_obs::timeline::instant(
                "smt.cdcl.db_reduction",
                "smt",
                &[("learned", self.n_learnts.to_string())],
            );
        }
        let mut cands: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| {
                let c = &self.clauses[ci];
                c.learned && !c.deleted && c.lbd > 2 && !self.locked(ci)
            })
            .collect();
        cands.sort_by(|&a, &b| {
            self.clauses[b]
                .lbd
                .cmp(&self.clauses[a].lbd)
                .then(a.cmp(&b))
        });
        let n_del = cands.len() / 2;
        for &ci in &cands[..n_del] {
            self.clauses[ci].deleted = true;
            self.clauses[ci].lits = Vec::new();
            self.n_learnts -= 1;
        }
        self.max_learnts += self.max_learnts / 2;
    }

    /// Solve the clause database under `assumptions`, giving up (`None`)
    /// after `max_decisions` branching decisions.
    ///
    /// Assumptions are placed as the first decisions (MiniSat style): an
    /// assumption already true gets an empty decision level, one already
    /// false makes the call UNSAT *under these assumptions* without
    /// poisoning the database, and the rest are decided in order. The
    /// solver is always left at decision level 0, so the caller may
    /// `add_clause` and re-solve with different assumptions.
    pub fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        max_decisions: u64,
    ) -> (Option<SatResult>, SatStats) {
        self.stats = SatStats::default();
        if !self.ok {
            return (Some(SatResult::Unsat), self.stats);
        }
        debug_assert!(assumptions.iter().all(|a| a.var < self.num_vars));
        self.cancel_until(0);
        self.max_learnts = self
            .max_learnts
            .max(100)
            .max((self.clauses.len() - self.n_learnts) / 3);
        let mut conflicts_since_restart: u64 = 0;
        let mut restart_limit = RESTART_BASE * luby(self.restarts_done);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return (Some(SatResult::Unsat), self.stats);
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.cancel_until(bt);
                self.attach_learnt(learnt, lbd);
                self.var_inc /= VAR_DECAY;
                if self.n_learnts >= self.max_learnts {
                    self.reduce_db();
                }
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    self.restarts_done += 1;
                    conflicts_since_restart = 0;
                    restart_limit = RESTART_BASE * luby(self.restarts_done);
                    if weseer_obs::timeline::enabled() {
                        weseer_obs::timeline::instant(
                            "smt.cdcl.restart",
                            "smt",
                            &[("conflicts", self.stats.conflicts.to_string())],
                        );
                    }
                    self.cancel_until(0);
                }
                continue;
            }
            // Propagation is at a fixpoint: place pending assumptions,
            // then take a VSIDS decision.
            let mut next = None;
            while self.decision_level() < assumptions.len() {
                let a = assumptions[self.decision_level()];
                match self.value(a) {
                    Some(true) => self.trail_lim.push(self.trail.len()),
                    Some(false) => {
                        self.cancel_until(0);
                        return (Some(SatResult::Unsat), self.stats);
                    }
                    None => {
                        next = Some(a);
                        break;
                    }
                }
            }
            let decision = next.or_else(|| {
                let mut best: Option<usize> = None;
                for v in 0..self.num_vars {
                    if self.assign[v].is_none()
                        && best.is_none_or(|b| self.activity[v] > self.activity[b])
                    {
                        best = Some(v);
                    }
                }
                best.map(|v| Lit {
                    var: v,
                    positive: self.phase[v],
                })
            });
            match decision {
                Some(lit) => {
                    self.stats.decisions += 1;
                    if self.stats.decisions > max_decisions {
                        self.cancel_until(0);
                        return (None, self.stats);
                    }
                    self.trail_lim.push(self.trail.len());
                    let accepted = self.enqueue(lit, None);
                    debug_assert!(accepted);
                }
                None => {
                    let model = self.assign.iter().map(|a| a.expect("complete")).collect();
                    self.cancel_until(0);
                    return (Some(SatResult::Sat(model)), self.stats);
                }
            }
        }
    }
}

/// Solve a CNF formula with the CDCL core (fresh solver per call).
pub fn solve(cnf: &Cnf) -> SatResult {
    solve_budgeted(cnf, u64::MAX).expect("unbounded solve cannot exhaust its budget")
}

/// Like [`solve`] but giving up (`None`) after `max_decisions` branching
/// decisions — the lazy-SMT loop maps exhaustion to a solver timeout
/// (the paper reports no deadlock on timeout).
pub fn solve_budgeted(cnf: &Cnf, max_decisions: u64) -> Option<SatResult> {
    solve_instrumented(cnf, max_decisions).0
}

/// Like [`solve_budgeted`] but also reporting how much search the call
/// performed, budget-exhausted or not. The lazy-SMT loop aggregates these
/// per [`crate::solver::check_with_stats`] call.
pub fn solve_instrumented(cnf: &Cnf, max_decisions: u64) -> (Option<SatResult>, SatStats) {
    let mut solver = Solver::from_cnf(cnf);
    solver.solve_under_assumptions(&[], max_decisions)
}

/// The pre-CDCL core: DPLL with two-watched-literal unit propagation and
/// chronological backtracking (flip the last untried decision), no clause
/// learning. Kept verbatim as the `no_cdcl` ablation baseline and as the
/// differential-testing oracle for the CDCL core.
pub fn solve_dpll_instrumented(cnf: &Cnf, max_decisions: u64) -> (Option<SatResult>, SatStats) {
    let mut stats = SatStats::default();
    let n = cnf.num_vars;
    let code = |l: Lit| -> usize { l.var * 2 + usize::from(l.positive) };

    // Clause database (clauses with ≥2 literals get watches).
    let mut assign: Vec<Option<bool>> = vec![None; n];
    #[derive(Debug)]
    struct TrailEntry {
        var: usize,
        decision: bool,
        flipped: bool,
    }
    let mut trail: Vec<TrailEntry> = Vec::new();
    let mut prop_head = 0usize;

    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(cnf.clauses.len());
    let mut watches: Vec<Vec<usize>> = vec![Vec::new(); n * 2];
    let mut initial_units: Vec<Lit> = Vec::new();
    for c in &cnf.clauses {
        match c.len() {
            0 => return (Some(SatResult::Unsat), stats),
            1 => initial_units.push(c[0]),
            _ => {
                let idx = clauses.len();
                watches[code(c[0])].push(idx);
                watches[code(c[1])].push(idx);
                clauses.push(c.clone());
            }
        }
    }

    // Enqueue an implied/decided assignment; false on immediate conflict.
    let enqueue = |lit: Lit,
                   decision: bool,
                   assign: &mut Vec<Option<bool>>,
                   trail: &mut Vec<TrailEntry>|
     -> bool {
        match assign[lit.var] {
            Some(v) => v == lit.positive,
            None => {
                assign[lit.var] = Some(lit.positive);
                trail.push(TrailEntry {
                    var: lit.var,
                    decision,
                    flipped: false,
                });
                true
            }
        }
    };

    for lit in initial_units {
        if !enqueue(lit, false, &mut assign, &mut trail) {
            return (Some(SatResult::Unsat), stats);
        }
        stats.propagations += 1;
    }

    // Watched-literal propagation from trail[prop_head..]; false on
    // conflict.
    let propagate = |prop_head: &mut usize,
                     assign: &mut Vec<Option<bool>>,
                     trail: &mut Vec<TrailEntry>,
                     clauses: &mut [Vec<Lit>],
                     watches: &mut [Vec<usize>],
                     propagations: &mut u64|
     -> bool {
        while *prop_head < trail.len() {
            let var = trail[*prop_head].var;
            *prop_head += 1;
            let value = assign[var].expect("trail var assigned");
            // The literal that became FALSE.
            let false_lit = Lit {
                var,
                positive: !value,
            };
            let fcode = false_lit.var * 2 + usize::from(false_lit.positive);
            let mut i = 0;
            while i < watches[fcode].len() {
                let ci = watches[fcode][i];
                let clause = &mut clauses[ci];
                // Ensure the false literal sits at position 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                // Already satisfied through the other watch?
                let w0 = clause[0];
                if assign[w0.var] == Some(w0.positive) {
                    i += 1;
                    continue;
                }
                // Find a new watchable literal.
                let mut moved = false;
                for k in 2..clause.len() {
                    let cand = clause[k];
                    if assign[cand.var] != Some(!cand.positive) {
                        clause.swap(1, k);
                        let ncode = cand.var * 2 + usize::from(cand.positive);
                        watches[ncode].push(ci);
                        watches[fcode].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict on w0.
                match assign[w0.var] {
                    None => {
                        assign[w0.var] = Some(w0.positive);
                        trail.push(TrailEntry {
                            var: w0.var,
                            decision: false,
                            flipped: false,
                        });
                        *propagations += 1;
                        i += 1;
                    }
                    Some(v) if v == w0.positive => {
                        i += 1;
                    }
                    Some(_) => return false, // conflict
                }
            }
        }
        true
    };

    // Backtrack to the last unflipped decision and flip it.
    let backtrack = |prop_head: &mut usize,
                     assign: &mut Vec<Option<bool>>,
                     trail: &mut Vec<TrailEntry>|
     -> bool {
        while let Some(entry) = trail.pop() {
            let val = assign[entry.var].expect("trail var assigned");
            assign[entry.var] = None;
            if entry.decision && !entry.flipped {
                assign[entry.var] = Some(!val);
                trail.push(TrailEntry {
                    var: entry.var,
                    decision: true,
                    flipped: true,
                });
                *prop_head = trail.len() - 1;
                return true;
            }
        }
        false
    };

    let mut next_search = 0usize; // decision variable cursor
    loop {
        if !propagate(
            &mut prop_head,
            &mut assign,
            &mut trail,
            &mut clauses,
            &mut watches,
            &mut stats.propagations,
        ) {
            if !backtrack(&mut prop_head, &mut assign, &mut trail) {
                return (Some(SatResult::Unsat), stats);
            }
            stats.decisions += 1; // a flip is a decision too
            if stats.decisions > max_decisions {
                return (None, stats);
            }
            next_search = 0;
            continue;
        }
        // Decide the next unassigned variable (true-first polarity: theory
        // atoms prefer the weaker, usually-satisfiable direction).
        let mut decided = false;
        while next_search < n {
            if assign[next_search].is_none() {
                assign[next_search] = Some(true);
                trail.push(TrailEntry {
                    var: next_search,
                    decision: true,
                    flipped: false,
                });
                decided = true;
                stats.decisions += 1;
                if stats.decisions > max_decisions {
                    return (None, stats);
                }
                break;
            }
            next_search += 1;
        }
        if !decided {
            if assign.iter().any(|a| a.is_none()) {
                // A backtrack may have exposed unassigned vars before the
                // cursor; rescan.
                next_search = 0;
                continue;
            }
            let model = assign.iter().map(|a| a.expect("complete")).collect();
            return (Some(SatResult::Sat(model)), stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_model(cnf: &Cnf, model: &[bool]) -> bool {
        cnf.clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var] == l.positive))
    }

    fn pigeonhole_3_into_2() -> Cnf {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut cnf = Cnf::default();
        let mut p = [[0usize; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = cnf.new_var();
            }
        }
        for row in &p {
            cnf.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for (i1, r1) in p.iter().enumerate() {
            for r2 in p.iter().skip(i1 + 1) {
                for (c1, c2) in r1.iter().zip(r2) {
                    cnf.add_clause(vec![Lit::neg(*c1), Lit::neg(*c2)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        cnf.add_unit(Lit::pos(a));
        match solve(&cnf) {
            SatResult::Sat(m) => assert!(m[a]),
            _ => panic!(),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        cnf.add_unit(Lit::pos(a));
        cnf.add_unit(Lit::neg(a));
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut cnf = Cnf::default();
        let _ = cnf.new_var();
        cnf.add_clause(Vec::<Lit>::new());
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn requires_backtracking() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b) is UNSAT;
        // dropping the last clause makes it SAT with a=b=true... verify both.
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause(vec![Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause(vec![Lit::neg(a), Lit::pos(b)]);
        match solve(&cnf) {
            SatResult::Sat(m) => assert!(check_model(&cnf, &m)),
            _ => panic!("should be SAT"),
        }
        cnf.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        assert_eq!(solve(&pigeonhole_3_into_2()), SatResult::Unsat);
    }

    #[test]
    fn instrumented_counts_search_effort() {
        // The pigeonhole instance forces decisions, propagations, and
        // (under CDCL) conflicts with learned clauses.
        let cnf = pigeonhole_3_into_2();
        let (res, stats) = solve_instrumented(&cnf, u64::MAX);
        assert_eq!(res, Some(SatResult::Unsat));
        assert!(stats.decisions > 0);
        assert!(stats.propagations > 0);
        assert!(stats.conflicts > 0);
        assert!(stats.learned > 0);

        // A budget of 0 decisions must exhaust (CDCL may refute this
        // instance with a single decision, so 1 is not tight enough).
        let (res, stats) = solve_instrumented(&cnf, 0);
        assert_eq!(res, None);
        assert!(stats.decisions >= 1);

        let mut total = SatStats::default();
        total.absorb(stats);
        total.absorb(stats);
        assert_eq!(total.decisions, 2 * stats.decisions);
        assert_eq!(total.conflicts, 2 * stats.conflicts);
    }

    #[test]
    fn legacy_dpll_budget_exhausts() {
        // The chronological-backtracking core needs many flips; a budget
        // of 1 decision must exhaust.
        let cnf = pigeonhole_3_into_2();
        let (res, stats) = solve_dpll_instrumented(&cnf, u64::MAX);
        assert_eq!(res, Some(SatResult::Unsat));
        assert!(stats.decisions > 0);
        let (res, stats) = solve_dpll_instrumented(&cnf, 1);
        assert_eq!(res, None);
        assert!(stats.decisions >= 1);
    }

    #[test]
    fn incremental_clause_addition() {
        // Solve, strengthen with new clauses, solve again on the same
        // solver: the learned state must carry over and verdicts must
        // match from-scratch solving.
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_under_assumptions(&[], u64::MAX).0 {
            Some(SatResult::Sat(m)) => assert!(check_model(&cnf, &m)),
            other => panic!("{other:?}"),
        }
        solver.add_clause(&[Lit::neg(a)]);
        solver.add_clause(&[Lit::neg(b)]);
        assert_eq!(
            solver.solve_under_assumptions(&[], u64::MAX).0,
            Some(SatResult::Unsat)
        );
        assert!(!solver.is_ok());
    }

    #[test]
    fn assumptions_do_not_poison_the_database() {
        // UNSAT under assumptions must leave the solver reusable: the
        // same database must stay SAT without (or with compatible)
        // assumptions.
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::neg(a), Lit::pos(b)]); // a → b
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(
            solver
                .solve_under_assumptions(&[Lit::pos(a), Lit::neg(b)], u64::MAX)
                .0,
            Some(SatResult::Unsat)
        );
        assert!(solver.is_ok());
        match solver
            .solve_under_assumptions(&[Lit::pos(a), Lit::pos(b)], u64::MAX)
            .0
        {
            Some(SatResult::Sat(m)) => {
                assert!(m[a] && m[b]);
                assert!(check_model(&cnf, &m));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    fn arbitrary_cnf() -> impl Strategy<Value = Cnf> {
        (
            1usize..8,
            proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4),
                0..24,
            ),
        )
            .prop_map(|(n_vars, clauses)| {
                let mut cnf = Cnf::default();
                for _ in 0..n_vars {
                    cnf.new_var();
                }
                for c in &clauses {
                    let lits: Vec<Lit> = c
                        .iter()
                        .map(|&(v, pos)| Lit {
                            var: v % n_vars,
                            positive: pos,
                        })
                        .collect();
                    cnf.add_clause(lits);
                }
                cnf
            })
    }

    proptest! {
        /// Random 3-SAT near/below the threshold: whenever the solver says
        /// SAT, the model must actually satisfy the clauses; whenever it
        /// says UNSAT on small instances, brute force must agree.
        #[test]
        fn random_3sat_sound(cnf in arbitrary_cnf()) {
            let n_vars = cnf.num_vars;
            let brute_sat = (0u32..(1 << n_vars)).any(|bits| {
                let model: Vec<bool> = (0..n_vars).map(|i| bits & (1 << i) != 0).collect();
                check_model(&cnf, &model)
            });
            match solve(&cnf) {
                SatResult::Sat(m) => {
                    prop_assert!(check_model(&cnf, &m));
                    prop_assert!(brute_sat);
                }
                SatResult::Unsat => prop_assert!(!brute_sat),
            }
        }

        /// The CDCL core and the legacy DPLL core agree on SAT/UNSAT, and
        /// each one's SAT model satisfies the clauses.
        #[test]
        fn cdcl_agrees_with_legacy_dpll(cnf in arbitrary_cnf()) {
            let (cdcl, _) = solve_instrumented(&cnf, u64::MAX);
            let (dpll, _) = solve_dpll_instrumented(&cnf, u64::MAX);
            match (cdcl.expect("unbudgeted"), dpll.expect("unbudgeted")) {
                (SatResult::Sat(mc), SatResult::Sat(md)) => {
                    prop_assert!(check_model(&cnf, &mc));
                    prop_assert!(check_model(&cnf, &md));
                }
                (SatResult::Unsat, SatResult::Unsat) => {}
                (c, d) => prop_assert!(false, "CDCL {c:?} vs DPLL {d:?}"),
            }
        }

        /// Determinism: the same input yields bit-identical models and
        /// identical search statistics on every run.
        #[test]
        fn cdcl_is_deterministic(cnf in arbitrary_cnf()) {
            let (r1, s1) = solve_instrumented(&cnf, u64::MAX);
            let (r2, s2) = solve_instrumented(&cnf, u64::MAX);
            prop_assert_eq!(r1, r2);
            prop_assert_eq!(s1, s2);
        }

        /// Solving under assumptions agrees with solving the CNF plus the
        /// assumptions as unit clauses, and the model (if any) honors the
        /// assumptions.
        #[test]
        fn assumptions_agree_with_units(
            cnf in arbitrary_cnf(),
            raw_assumps in proptest::collection::vec((0usize..8, any::<bool>()), 0..4),
        ) {
            let assumps: Vec<Lit> = raw_assumps
                .iter()
                .map(|&(v, pos)| Lit { var: v % cnf.num_vars, positive: pos })
                .collect();
            let mut solver = Solver::from_cnf(&cnf);
            let (inc, _) = solver.solve_under_assumptions(&assumps, u64::MAX);
            let mut with_units = cnf.clone();
            for &a in &assumps {
                with_units.add_unit(a);
            }
            match (inc.expect("unbudgeted"), solve(&with_units)) {
                (SatResult::Sat(m), SatResult::Sat(_)) => {
                    prop_assert!(check_model(&cnf, &m));
                    prop_assert!(assumps.iter().all(|a| m[a.var] == a.positive));
                }
                (SatResult::Unsat, SatResult::Unsat) => {}
                (i, u) => prop_assert!(false, "assumed {i:?} vs units {u:?}"),
            }
        }
    }
}

//! Formula canonicalization for the verdict cache.
//!
//! Traces collected from the same API template make the analyzer
//! re-discharge near-identical solver queries: the formulas differ only in
//! variable *names* (`A1.userId` in one pair, `A2.userId` in another) and
//! in the order symmetric connectives happened to be built. This module
//! maps a formula to a **canonical form** that erases both differences:
//!
//! * children of `And`/`Or` (and the operands of the symmetric `Eq`) are
//!   sorted by their serialized subterm;
//! * variables are alpha-renamed to `v0, v1, …` in first-occurrence order
//!   over the sorted structure.
//!
//! Two alpha-equivalent (modulo AC-reordering) formulas therefore share
//! one canonical **key**. The cache solves the *rebuilt canonical formula*
//! — not the original — so the cached verdict and model are a pure
//! function of the key, independent of which query filled the entry first
//! and of worker scheduling. The satisfying model comes back in canonical
//! names and is translated to the query's names through the recorded
//! renaming.

use crate::model::Model;
use crate::term::{CmpKind, Ctx, Sort, TermId, TermKind};
use std::collections::HashMap;

/// A formula reduced to canonical form: the cache key, the variable
/// renaming, and enough structure to rebuild the canonical term.
#[derive(Debug)]
pub struct Canonical {
    /// The canonical serialization — the verdict-cache key.
    pub key: String,
    /// Alpha-renaming: canonical index `i` (variable `v{i}`) maps back to
    /// the original variable name (and its sort).
    vars: Vec<(String, Sort)>,
}

impl Canonical {
    /// Canonicalize `root` (Bool-sorted) from `src`.
    pub fn of(src: &Ctx, root: TermId) -> Canonical {
        let mut c = Canonicalizer {
            src,
            erase: false,
            pre: HashMap::new(),
            vars: Vec::new(),
            var_ids: HashMap::new(),
        };
        // Pass 1 orders symmetric children; pass 2 assigns alpha indexes
        // over that order and emits the key.
        c.pre_string(root);
        let mut key = String::with_capacity(c.pre[&root].len());
        c.keyed(root, &mut key);
        Canonical { key, vars: c.vars }
    }

    /// Number of distinct variables in the formula.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Rebuild the canonical formula (alpha-renamed, children sorted) in a
    /// fresh context. Solving this term — rather than the original — makes
    /// the solver's answer a pure function of [`Canonical::key`].
    pub fn rebuild(&self, src: &Ctx, root: TermId) -> (Ctx, TermId) {
        let mut c = Canonicalizer {
            src,
            erase: false,
            pre: HashMap::new(),
            vars: Vec::new(),
            var_ids: HashMap::new(),
        };
        c.pre_string(root);
        let mut dst = Ctx::new();
        let mut memo = HashMap::new();
        let term = c.build(root, &mut dst, &mut memo);
        debug_assert_eq!(c.vars, self.vars, "rebuild must replay the key pass");
        (dst, term)
    }

    /// Translate a model over canonical names (`v0`, `v1`, …) back to the
    /// original variable names of the query this `Canonical` came from.
    pub fn translate_model(&self, canonical: &Model) -> Model {
        let map: HashMap<String, String> = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, (orig, _))| (format!("v{i}"), orig.clone()))
            .collect();
        canonical.rename(&map)
    }

    /// Canonical **content keys** for a set of roots sharing one variable
    /// namespace and one alpha assignment (assigned in first-visit order
    /// across the whole slice, so cross-root variable sharing is visible
    /// in the keys).
    ///
    /// Unlike [`Canonical::of`], the sort order of symmetric children is
    /// computed over *name-erased* pre-strings, so the keys are fully
    /// invariant under alpha-renaming — two formula sets that differ only
    /// in variable names produce identical key vectors. That makes this
    /// the right primitive for content fingerprints (where spurious
    /// differences must not change the hash), while the cache keeps using
    /// [`Canonical::of`] (where a name-dependent sort only costs an
    /// occasional extra miss but preserves the historical keys).
    pub fn content_keys(src: &Ctx, roots: &[TermId]) -> Vec<String> {
        let mut c = Canonicalizer {
            src,
            erase: true,
            pre: HashMap::new(),
            vars: Vec::new(),
            var_ids: HashMap::new(),
        };
        for &r in roots {
            c.pre_string(r);
        }
        roots
            .iter()
            .map(|&r| {
                let mut key = String::with_capacity(c.pre[&r].len());
                c.keyed(r, &mut key);
                key
            })
            .collect()
    }
}

struct Canonicalizer<'a> {
    src: &'a Ctx,
    /// Erase variable names from the pre-strings (content-key mode). The
    /// sorted order of symmetric children then cannot depend on names, so
    /// the emitted keys are fully alpha-invariant.
    erase: bool,
    /// Memoized serialization that defines the sorted order of symmetric
    /// children — original names for the cache, erased for content keys.
    pre: HashMap<TermId, String>,
    /// Alpha assignment in first-occurrence order over the sorted walk.
    vars: Vec<(String, Sort)>,
    var_ids: HashMap<String, usize>,
}

impl Canonicalizer<'_> {
    fn pre_string(&mut self, t: TermId) -> &str {
        if !self.pre.contains_key(&t) {
            let s = match self.src.kind(t).clone() {
                TermKind::Var(name) => {
                    if self.erase {
                        format!("V:{}", self.src.sort(t))
                    } else {
                        format!("V{name}:{}", self.src.sort(t))
                    }
                }
                TermKind::BoolConst(b) => format!("B{b}"),
                TermKind::NumConst(r) => format!("N{r}:{}", self.src.sort(t)),
                TermKind::StrConst(s) => format!("S{s:?}"),
                TermKind::Add(a, b) => self.pre_nary("+", &[a, b], false),
                TermKind::Sub(a, b) => self.pre_nary("-", &[a, b], false),
                TermKind::Neg(a) => self.pre_nary("~", &[a], false),
                TermKind::MulConst(c, a) => {
                    self.pre_string(a);
                    format!("(*{c} {})", self.pre[&a])
                }
                TermKind::Cmp(CmpKind::Lt, a, b) => self.pre_nary("<", &[a, b], false),
                TermKind::Cmp(CmpKind::Le, a, b) => self.pre_nary("<=", &[a, b], false),
                TermKind::Eq(a, b) => self.pre_nary("=", &[a, b], true),
                TermKind::Not(a) => self.pre_nary("!", &[a], false),
                TermKind::And(parts) => self.pre_nary("&", &parts, true),
                TermKind::Or(parts) => self.pre_nary("|", &parts, true),
                TermKind::Store(a, i, v) => self.pre_nary("w", &[a, i, v], false),
                TermKind::Select(a, i) => self.pre_nary("r", &[a, i], false),
            };
            self.pre.insert(t, s);
        }
        &self.pre[&t]
    }

    fn pre_nary(&mut self, op: &str, children: &[TermId], sorted: bool) -> String {
        for &c in children {
            self.pre_string(c);
        }
        let mut parts: Vec<&str> = children.iter().map(|c| self.pre[c].as_str()).collect();
        if sorted {
            // Stable: in erased mode distinct subterms can share a
            // pre-string, and ties must resolve to the original child
            // order so keys stay deterministic.
            parts.sort();
        }
        format!("({op} {})", parts.join(" "))
    }

    /// The order symmetric children are visited in passes 2 and 3 — by
    /// pre-string, matching [`Canonicalizer::pre_nary`].
    fn ordered(&self, children: &[TermId], sorted: bool) -> Vec<TermId> {
        let mut out = children.to_vec();
        if sorted {
            out.sort_by(|a, b| self.pre[a].cmp(&self.pre[b]));
        }
        out
    }

    fn alpha(&mut self, name: &str, sort: &Sort) -> usize {
        if let Some(&i) = self.var_ids.get(name) {
            return i;
        }
        let i = self.vars.len();
        self.vars.push((name.to_string(), sort.clone()));
        self.var_ids.insert(name.to_string(), i);
        i
    }

    /// Pass 2: emit the canonical key, assigning alpha indexes in
    /// first-visit order over the sorted structure.
    fn keyed(&mut self, t: TermId, out: &mut String) {
        use std::fmt::Write as _;
        match self.src.kind(t).clone() {
            TermKind::Var(name) => {
                let sort = self.src.sort(t).clone();
                let i = self.alpha(&name, &sort);
                let _ = write!(out, "v{i}:{sort}");
            }
            TermKind::BoolConst(b) => {
                let _ = write!(out, "B{b}");
            }
            TermKind::NumConst(r) => {
                let _ = write!(out, "N{r}:{}", self.src.sort(t));
            }
            TermKind::StrConst(s) => {
                let _ = write!(out, "S{s:?}");
            }
            TermKind::Add(a, b) => self.keyed_nary("+", &[a, b], false, out),
            TermKind::Sub(a, b) => self.keyed_nary("-", &[a, b], false, out),
            TermKind::Neg(a) => self.keyed_nary("~", &[a], false, out),
            TermKind::MulConst(c, a) => {
                let _ = write!(out, "(*{c} ");
                self.keyed(a, out);
                out.push(')');
            }
            TermKind::Cmp(CmpKind::Lt, a, b) => self.keyed_nary("<", &[a, b], false, out),
            TermKind::Cmp(CmpKind::Le, a, b) => self.keyed_nary("<=", &[a, b], false, out),
            TermKind::Eq(a, b) => self.keyed_nary("=", &[a, b], true, out),
            TermKind::Not(a) => self.keyed_nary("!", &[a], false, out),
            TermKind::And(parts) => self.keyed_nary("&", &parts, true, out),
            TermKind::Or(parts) => self.keyed_nary("|", &parts, true, out),
            TermKind::Store(a, i, v) => self.keyed_nary("w", &[a, i, v], false, out),
            TermKind::Select(a, i) => self.keyed_nary("r", &[a, i], false, out),
        }
    }

    fn keyed_nary(&mut self, op: &str, children: &[TermId], sorted: bool, out: &mut String) {
        out.push('(');
        out.push_str(op);
        for c in self.ordered(children, sorted) {
            out.push(' ');
            self.keyed(c, out);
        }
        out.push(')');
    }

    /// Pass 3: rebuild the canonical term in `dst`, replaying the exact
    /// walk of [`Canonicalizer::keyed`] so variable `v{i}` lines up with
    /// the key's alpha assignment.
    fn build(&mut self, t: TermId, dst: &mut Ctx, memo: &mut HashMap<TermId, TermId>) -> TermId {
        if let Some(&d) = memo.get(&t) {
            return d;
        }
        let out = match self.src.kind(t).clone() {
            TermKind::Var(name) => {
                let sort = self.src.sort(t).clone();
                let i = self.alpha(&name, &sort);
                dst.var(format!("v{i}"), sort)
            }
            TermKind::BoolConst(b) => dst.bool_const(b),
            TermKind::NumConst(r) => {
                if self.src.sort(t) == &Sort::Int {
                    dst.int(r.floor() as i64)
                } else {
                    dst.real(r)
                }
            }
            TermKind::StrConst(s) => dst.str_const(s),
            TermKind::Add(a, b) => {
                let (ia, ib) = (self.build(a, dst, memo), self.build(b, dst, memo));
                dst.add(ia, ib)
            }
            TermKind::Sub(a, b) => {
                let (ia, ib) = (self.build(a, dst, memo), self.build(b, dst, memo));
                dst.sub(ia, ib)
            }
            TermKind::Neg(a) => {
                let ia = self.build(a, dst, memo);
                dst.neg(ia)
            }
            TermKind::MulConst(c, a) => {
                let ia = self.build(a, dst, memo);
                dst.mul_const(c, ia)
            }
            TermKind::Cmp(k, a, b) => {
                let (ia, ib) = (self.build(a, dst, memo), self.build(b, dst, memo));
                match k {
                    CmpKind::Lt => dst.lt(ia, ib),
                    CmpKind::Le => dst.le(ia, ib),
                }
            }
            TermKind::Eq(a, b) => {
                let imported: Vec<TermId> = self
                    .ordered(&[a, b], true)
                    .into_iter()
                    .map(|c| self.build(c, dst, memo))
                    .collect();
                dst.eq(imported[0], imported[1])
            }
            TermKind::Not(a) => {
                let ia = self.build(a, dst, memo);
                dst.not(ia)
            }
            TermKind::And(parts) => {
                let imported: Vec<TermId> = self
                    .ordered(&parts, true)
                    .into_iter()
                    .map(|c| self.build(c, dst, memo))
                    .collect();
                dst.and(imported)
            }
            TermKind::Or(parts) => {
                let imported: Vec<TermId> = self
                    .ordered(&parts, true)
                    .into_iter()
                    .map(|c| self.build(c, dst, memo))
                    .collect();
                dst.or(imported)
            }
            TermKind::Store(a, i, v) => {
                let (ia, ii, iv) = (
                    self.build(a, dst, memo),
                    self.build(i, dst, memo),
                    self.build(v, dst, memo),
                );
                dst.store(ia, ii, iv)
            }
            TermKind::Select(a, i) => {
                let (ia, ii) = (self.build(a, dst, memo), self.build(i, dst, memo));
                dst.select(ia, ii)
            }
        };
        memo.insert(t, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{check, SolveResult, SolverConfig};

    #[test]
    fn alpha_renaming_unifies_instance_prefixes() {
        // (A1.x > 3) ∧ (A2.y < A1.x)  vs  (B9.u > 3) ∧ (C.w < B9.u):
        // identical structure, different names → one key.
        let build = |n1: &str, n2: &str| {
            let mut ctx = Ctx::new();
            let x = ctx.var(n1, Sort::Int);
            let y = ctx.var(n2, Sort::Int);
            let three = ctx.int(3);
            let gt = ctx.gt(x, three);
            let lt = ctx.lt(y, x);
            let f = ctx.and([gt, lt]);
            Canonical::of(&ctx, f).key
        };
        assert_eq!(build("A1.x", "A2.y"), build("B9.u", "C.w"));
    }

    #[test]
    fn constants_stay_distinguishing() {
        let build = |v: i64| {
            let mut ctx = Ctx::new();
            let x = ctx.var("x", Sort::Int);
            let c = ctx.int(v);
            let f = ctx.eq(x, c);
            Canonical::of(&ctx, f).key
        };
        assert_ne!(build(1), build(2));
    }

    #[test]
    fn sorts_stay_distinguishing() {
        let mut ctx = Ctx::new();
        let xi = ctx.var("x", Sort::Int);
        let xr = ctx.var("y", Sort::Real);
        let zero_i = ctx.int(0);
        let zero_r = ctx.real(crate::rational::Rat::int(0));
        let fi = ctx.lt(zero_i, xi);
        let fr = ctx.lt(zero_r, xr);
        assert_ne!(Canonical::of(&ctx, fi).key, Canonical::of(&ctx, fr).key);
    }

    #[test]
    fn ac_reordering_shares_a_key() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let zero = ctx.int(0);
        let a = ctx.lt(zero, x);
        let b = ctx.lt(zero, y);
        let f1 = ctx.and([a, b]);
        let f2 = ctx.and([b, a]);
        // Same children either way once sorted — but alpha indexes follow
        // the *sorted* order, so both ANDs serialize identically.
        assert_eq!(Canonical::of(&ctx, f1).key, Canonical::of(&ctx, f2).key);
    }

    #[test]
    fn rebuild_is_equisatisfiable_and_model_translates() {
        let mut ctx = Ctx::new();
        let x = ctx.var("A1.order_id", Sort::Int);
        let seven = ctx.int(7);
        let ten = ctx.int(10);
        let ge = ctx.ge(x, seven);
        let lt = ctx.lt(x, ten);
        let f = ctx.and([ge, lt]);
        let canon = Canonical::of(&ctx, f);
        let (mut cctx, cterm) = canon.rebuild(&ctx, f);
        match check(&mut cctx, cterm, &SolverConfig::default()) {
            SolveResult::Sat(m) => {
                let translated = canon.translate_model(&m);
                let v = translated.get_int("A1.order_id").expect("renamed back");
                assert!((7..10).contains(&v));
                assert!(translated.satisfies(&ctx, f));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn content_keys_are_alpha_invariant() {
        // `Canonical::of` sorts AND-children by *named* pre-strings, so a
        // pure renaming can flip the child order and change the key.
        // Content keys erase names before sorting: renaming every
        // variable leaves the key vector untouched.
        let build = |n1: &str, n2: &str| {
            let mut ctx = Ctx::new();
            let x = ctx.var(n1, Sort::Int);
            let y = ctx.var(n2, Sort::Int);
            let zero = ctx.int(0);
            let a = ctx.lt(zero, x);
            let b = ctx.lt(zero, y);
            let both = ctx.and([a, b]);
            let link = ctx.lt(x, y);
            Canonical::content_keys(&ctx, &[both, link])
        };
        // "zz"/"aa" reverses the lexicographic order of the named
        // pre-strings, which is exactly the case that breaks `of`.
        assert_eq!(build("aa", "zz"), build("zz", "aa"));
    }

    #[test]
    fn content_keys_share_one_alpha_assignment() {
        // The same variable appearing under two roots gets one index, so
        // cross-root sharing is part of the content.
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let zero = ctx.int(0);
        let f1 = ctx.lt(zero, x);
        let f2_shared = ctx.lt(x, zero);
        let f2_fresh = ctx.lt(y, zero);
        let shared = Canonical::content_keys(&ctx, &[f1, f2_shared]);
        let fresh = Canonical::content_keys(&ctx, &[f1, f2_fresh]);
        assert_eq!(shared[0], fresh[0]);
        assert_ne!(shared[1], fresh[1], "sharing must be visible in the key");
    }

    #[test]
    fn content_keys_distinguish_structure() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let three = ctx.int(3);
        let lt = ctx.lt(x, three);
        let le = ctx.le(x, three);
        let keys = Canonical::content_keys(&ctx, &[lt, le]);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn rebuild_handles_arrays() {
        let mut ctx = Ctx::new();
        let m = ctx.array_var("A1.exists", Sort::Int);
        let k = ctx.var("A1.k", Sort::Int);
        let rd = ctx.select(m, k);
        let canon = Canonical::of(&ctx, rd);
        let (cctx, cterm) = canon.rebuild(&ctx, rd);
        assert_eq!(cctx.sort(cterm), &Sort::Bool);
        assert_eq!(canon.var_count(), 2);
    }
}

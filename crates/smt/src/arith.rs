//! Linear arithmetic over rationals and integers.
//!
//! Decides conjunctions of constraints `e ≤ 0` / `e < 0` for linear `e` by
//! **Fourier–Motzkin elimination** (sound and complete over the rationals)
//! and handles integer variables with **branch-and-bound** on fractional
//! model values. Equalities are split into two inequalities by the lowering
//! pass before reaching this module.
//!
//! This is the theory backend for the conflict/path conditions WeSEER's
//! deadlock analyzer emits (paper Sec. V-C4): comparisons between SQL
//! parameters, row columns, and constants.

use crate::rational::{Rat, ZERO};
use std::collections::BTreeMap;

/// A theory variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Display name (diagnostics, model output).
    pub name: String,
    /// Whether the variable ranges over integers.
    pub is_int: bool,
}

/// A linear expression `Σ cᵢ·xᵢ + k`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Coefficients by variable index; zero coefficients are never stored.
    pub coeffs: BTreeMap<usize, Rat>,
    /// Constant offset.
    pub constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: ZERO,
        }
    }

    /// A single variable.
    pub fn var(i: usize) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(i, Rat::int(1));
        LinExpr {
            coeffs,
            constant: ZERO,
        }
    }

    /// A constant.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (&v, &c) in &other.coeffs {
            let e = out.coeffs.entry(v).or_insert(ZERO);
            *e = *e + c;
            if e.is_zero() {
                out.coeffs.remove(&v);
            }
        }
        out.constant = out.constant + other.constant;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(Rat::int(-1)))
    }

    /// `k * self`.
    pub fn scale(&self, k: Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(&v, &c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Whether the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluate under a (total) assignment.
    pub fn eval(&self, model: &[Rat]) -> Rat {
        self.coeffs
            .iter()
            .fold(self.constant, |acc, (&v, &c)| acc + c * model[v])
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.coeffs.keys().next_back().copied()
    }
}

/// A constraint `expr ≤ 0` (or `expr < 0` when `strict`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Strict (`<`) vs non-strict (`≤`).
    pub strict: bool,
}

impl Constraint {
    /// `expr ≤ 0`.
    pub fn le0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            strict: false,
        }
    }

    /// `expr < 0`.
    pub fn lt0(expr: LinExpr) -> Constraint {
        Constraint { expr, strict: true }
    }

    /// Whether a model satisfies the constraint.
    pub fn satisfied(&self, model: &[Rat]) -> bool {
        let v = self.expr.eval(model);
        if self.strict {
            v < ZERO
        } else {
            v <= ZERO
        }
    }
}

/// Outcome of an arithmetic decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithResult {
    /// Satisfiable with the given assignment (indexed like `vars`).
    Sat(Vec<Rat>),
    /// Unsatisfiable.
    Unsat,
    /// Resource limit hit (treated as a solver timeout; the paper reports
    /// no deadlock on timeout).
    Unknown,
}

/// Resource limits for the decision procedure.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of constraints FM may generate.
    pub max_constraints: usize,
    /// Maximum branch-and-bound depth for integer tightening.
    pub max_branches: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_constraints: 50_000,
            max_branches: 64,
        }
    }
}

/// Decide a conjunction of constraints over `vars`.
pub fn solve(vars: &[VarInfo], cons: &[Constraint], limits: Limits) -> ArithResult {
    // Integer tightening: over integer variables with integer coefficients,
    // `e < 0` is equivalent to `e + 1 ≤ 0`. This keeps Fourier–Motzkin's
    // bounds integral (strict chains like x₀ < x₁ < … otherwise produce
    // fractional midpoints and branch-and-bound blow-ups).
    let tightened: Vec<Constraint> = cons
        .iter()
        .map(|c| {
            let all_int = c.strict
                && c.expr.constant.is_integer()
                && c.expr
                    .coeffs
                    .iter()
                    .all(|(&v, k)| vars[v].is_int && k.is_integer());
            if all_int {
                Constraint {
                    expr: c.expr.add(&LinExpr::constant(Rat::int(1))),
                    strict: false,
                }
            } else {
                c.clone()
            }
        })
        .collect();
    solve_rec(vars, tightened, limits, 0)
}

fn solve_rec(vars: &[VarInfo], cons: Vec<Constraint>, limits: Limits, depth: usize) -> ArithResult {
    let model = match fm_solve(vars.len(), cons.clone(), limits) {
        FmResult::Unsat => return ArithResult::Unsat,
        FmResult::Unknown => return ArithResult::Unknown,
        FmResult::Sat(m) => m,
    };
    // Branch-and-bound: fix the first integer variable with a fractional
    // value.
    let frac = vars
        .iter()
        .enumerate()
        .find(|(i, v)| v.is_int && !model[*i].is_integer());
    let (i, _) = match frac {
        None => return ArithResult::Sat(model),
        Some(f) => f,
    };
    if depth >= limits.max_branches {
        return ArithResult::Unknown;
    }
    let floor = model[i].floor() as i64;
    // Branch 1: xᵢ ≤ floor.
    let mut lo = cons.clone();
    lo.push(Constraint::le0(
        LinExpr::var(i).sub(&LinExpr::constant(Rat::int(floor))),
    ));
    match solve_rec(vars, lo, limits, depth + 1) {
        ArithResult::Sat(m) => return ArithResult::Sat(m),
        ArithResult::Unknown => return ArithResult::Unknown,
        ArithResult::Unsat => {}
    }
    // Branch 2: xᵢ ≥ floor + 1, i.e. (floor + 1) - xᵢ ≤ 0.
    let mut hi = cons;
    hi.push(Constraint::le0(
        LinExpr::constant(Rat::int(floor + 1)).sub(&LinExpr::var(i)),
    ));
    solve_rec(vars, hi, limits, depth + 1)
}

enum FmResult {
    Sat(Vec<Rat>),
    Unsat,
    Unknown,
}

/// Normalize, deduplicate, and subsume a constraint set. Fourier–Motzkin
/// on equality cliques (x₁ = x₂ = … = xₙ, common in conflict conditions)
/// otherwise re-derives the same parallel constraints combinatorially and
/// blows past the resource limit.
///
/// Constraints are scaled so their leading coefficient is ±1; for equal
/// coefficient vectors only the tightest bound survives (largest constant;
/// strict beats non-strict at equal constants). Trivially true ground
/// constraints are dropped; a trivially false one short-circuits.
fn compact(cons: Vec<Constraint>) -> Result<Vec<Constraint>, ()> {
    use std::collections::HashMap;
    let mut best: HashMap<Vec<(usize, Rat)>, (Rat, bool)> = HashMap::new();
    let mut ground_false = false;
    for c in cons {
        if c.expr.is_constant() {
            let k = c.expr.constant;
            let ok = if c.strict { k < ZERO } else { k <= ZERO };
            if !ok {
                ground_false = true;
                break;
            }
            continue; // trivially true
        }
        let lead = *c
            .expr
            .coeffs
            .values()
            .next()
            .expect("non-constant constraint has a coefficient");
        // Positive scale only (preserves the inequality direction).
        let scale = lead.recip();
        let scale = if scale.signum() < 0 { -scale } else { scale };
        let key: Vec<(usize, Rat)> = c
            .expr
            .coeffs
            .iter()
            .map(|(&v, &k)| (v, k * scale))
            .collect();
        let constant = c.expr.constant * scale;
        match best.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((constant, c.strict));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (k0, s0) = *e.get();
                // Tighter: larger constant, or equal constant but strict.
                if constant > k0 || (constant == k0 && c.strict && !s0) {
                    e.insert((constant, c.strict));
                }
            }
        }
    }
    if ground_false {
        return Err(());
    }
    Ok(best
        .into_iter()
        .map(|(key, (constant, strict))| {
            let mut coeffs = BTreeMap::new();
            for (v, k) in key {
                coeffs.insert(v, k);
            }
            Constraint {
                expr: LinExpr { coeffs, constant },
                strict,
            }
        })
        .collect())
}

/// One variable's bound set saved for back-substitution.
struct Eliminated {
    var: usize,
    /// Lower bounds: expressions `e` with `e ≤ x` (or `<` when strict).
    lowers: Vec<(LinExpr, bool)>,
    /// Upper bounds: expressions `e` with `x ≤ e` (or `<`).
    uppers: Vec<(LinExpr, bool)>,
}

fn fm_solve(n_vars: usize, mut cons: Vec<Constraint>, limits: Limits) -> FmResult {
    let mut eliminated: Vec<Eliminated> = Vec::new();

    // Eliminate variables in a greedy order that minimizes the number of
    // generated constraints (lowers × uppers), the classic FM heuristic.
    let mut remaining: Vec<usize> = (0..n_vars).collect();
    while !remaining.is_empty() {
        cons = match compact(cons) {
            Ok(c) => c,
            Err(()) => return FmResult::Unsat,
        };
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &v)| {
                let mut lo = 0usize;
                let mut hi = 0usize;
                for c in &cons {
                    match c.expr.coeffs.get(&v) {
                        Some(k) if k.signum() > 0 => hi += 1,
                        Some(_) => lo += 1,
                        None => {}
                    }
                }
                (pos, lo * hi)
            })
            .min_by_key(|&(_, cost)| cost)
            .expect("remaining non-empty");
        let var = remaining.swap_remove(pos);
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for c in cons {
            match c.expr.coeffs.get(&var).copied() {
                None => rest.push(c),
                Some(coef) => {
                    // c.expr = coef*x + r ⋈ 0
                    let mut r = c.expr.clone();
                    r.coeffs.remove(&var);
                    if coef.signum() > 0 {
                        // x ⋈ -r/coef : upper bound
                        uppers.push((r.scale(-coef.recip()), c.strict));
                    } else {
                        // x ⋈ -r/coef with flipped side: lower bound
                        lowers.push((r.scale(-coef.recip()), c.strict));
                    }
                }
            }
        }
        // Pairwise combinations: lower ≤ x ≤ upper ⇒ lower - upper ≤ 0.
        for (lo, s_lo) in &lowers {
            for (hi, s_hi) in &uppers {
                rest.push(Constraint {
                    expr: lo.sub(hi),
                    strict: *s_lo || *s_hi,
                });
                if rest.len() > limits.max_constraints {
                    return FmResult::Unknown;
                }
            }
        }
        eliminated.push(Eliminated {
            var,
            lowers,
            uppers,
        });
        cons = rest;
    }

    // All variables gone: remaining constraints are ground.
    for c in &cons {
        debug_assert!(c.expr.is_constant());
        let k = c.expr.constant;
        let ok = if c.strict { k < ZERO } else { k <= ZERO };
        if !ok {
            return FmResult::Unsat;
        }
    }

    // Back-substitute in reverse elimination order.
    let mut model = vec![ZERO; n_vars];
    for e in eliminated.iter().rev() {
        let lo = e
            .lowers
            .iter()
            .map(|(expr, s)| (expr.eval(&model), *s))
            .max_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let hi = e
            .uppers
            .iter()
            .map(|(expr, s)| (expr.eval(&model), *s))
            .min_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        model[e.var] = match (lo, hi) {
            (None, None) => ZERO,
            (Some((l, strict)), None) => {
                if strict {
                    l + Rat::int(1)
                } else {
                    l
                }
            }
            (None, Some((h, strict))) => {
                if strict {
                    h - Rat::int(1)
                } else {
                    h
                }
            }
            (Some((l, sl)), Some((h, sh))) => {
                if l == h {
                    // FM guarantees the interval is non-empty; equal bounds
                    // can only both be non-strict.
                    l
                } else if !sl {
                    // Prefer integral-friendly endpoints.
                    l
                } else if !sh {
                    h
                } else {
                    Rat::midpoint(l, h)
                }
            }
        };
        // Prefer an integer inside the interval when one exists — this cuts
        // most branch-and-bound work.
        if !model[e.var].is_integer() {
            let cand = Rat::int(model[e.var].ceil() as i64);
            let fits_lo = lo.is_none_or(|(l, s)| if s { l < cand } else { l <= cand });
            let fits_hi = hi.is_none_or(|(h, s)| if s { cand < h } else { cand <= h });
            if fits_lo && fits_hi {
                model[e.var] = cand;
            }
        }
    }
    FmResult::Sat(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn int_vars(n: usize) -> Vec<VarInfo> {
        (0..n)
            .map(|i| VarInfo {
                name: format!("x{i}"),
                is_int: true,
            })
            .collect()
    }

    fn real_vars(n: usize) -> Vec<VarInfo> {
        (0..n)
            .map(|i| VarInfo {
                name: format!("r{i}"),
                is_int: false,
            })
            .collect()
    }

    /// Build `a·x + b·y + k ≤ 0` (or `<`).
    fn con(terms: &[(usize, i64)], k: i64, strict: bool) -> Constraint {
        let mut e = LinExpr::constant(Rat::int(k));
        for &(v, c) in terms {
            e = e.add(&LinExpr::var(v).scale(Rat::int(c)));
        }
        Constraint { expr: e, strict }
    }

    #[test]
    fn simple_feasible() {
        // x ≥ 3 ∧ x ≤ 5  ⇔  3 - x ≤ 0 ∧ x - 5 ≤ 0
        let cons = vec![con(&[(0, -1)], 3, false), con(&[(0, 1)], -5, false)];
        match solve(&int_vars(1), &cons, Limits::default()) {
            ArithResult::Sat(m) => {
                assert!(cons.iter().all(|c| c.satisfied(&m)));
                assert!(m[0].is_integer());
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn simple_infeasible() {
        // x < 3 ∧ x > 5
        let cons = vec![con(&[(0, 1)], -3, true), con(&[(0, -1)], 5, true)];
        assert_eq!(
            solve(&int_vars(1), &cons, Limits::default()),
            ArithResult::Unsat
        );
    }

    #[test]
    fn open_interval_real_sat_int_unsat() {
        // 0 < x < 1
        let cons = vec![con(&[(0, -1)], 0, true), con(&[(0, 1)], -1, true)];
        assert!(matches!(
            solve(&real_vars(1), &cons, Limits::default()),
            ArithResult::Sat(_)
        ));
        assert_eq!(
            solve(&int_vars(1), &cons, Limits::default()),
            ArithResult::Unsat
        );
    }

    #[test]
    fn equality_via_two_bounds() {
        // 2x = 1 over ints: 2x - 1 ≤ 0 ∧ 1 - 2x ≤ 0
        let cons = vec![con(&[(0, 2)], -1, false), con(&[(0, -2)], 1, false)];
        assert_eq!(
            solve(&int_vars(1), &cons, Limits::default()),
            ArithResult::Unsat
        );
        match solve(&real_vars(1), &cons, Limits::default()) {
            ArithResult::Sat(m) => assert_eq!(m[0], Rat::new(1, 2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_system() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ x ∧ x ≥ 7 → all equal ≥ 7
        let cons = vec![
            con(&[(0, 1), (1, -1)], 0, false),
            con(&[(1, 1), (2, -1)], 0, false),
            con(&[(2, 1), (0, -1)], 0, false),
            con(&[(0, -1)], 7, false),
        ];
        match solve(&int_vars(3), &cons, Limits::default()) {
            ArithResult::Sat(m) => {
                assert!(cons.iter().all(|c| c.satisfied(&m)));
                assert_eq!(m[0], m[1]);
                assert_eq!(m[1], m[2]);
                assert!(m[0] >= Rat::int(7));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strict_chain_unsat() {
        // x < y ∧ y < x
        let cons = vec![
            con(&[(0, 1), (1, -1)], 0, true),
            con(&[(1, 1), (0, -1)], 0, true),
        ];
        assert_eq!(
            solve(&real_vars(2), &cons, Limits::default()),
            ArithResult::Unsat
        );
    }

    #[test]
    fn unconstrained_vars_default() {
        match solve(&int_vars(2), &[], Limits::default()) {
            ArithResult::Sat(m) => assert_eq!(m, vec![ZERO, ZERO]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finish_order_conflict_shape() {
        // The Fig. 9-style condition:
        //   qty ≥ oi_qty  ∧  oi_qty ≥ 1  ∧  qty' = qty - oi_qty  ∧  qty' ≥ 0
        // vars: 0=qty, 1=oi_qty, 2=qty'
        let cons = vec![
            con(&[(0, -1), (1, 1)], 0, false),          // oi_qty - qty ≤ 0
            con(&[(1, -1)], 1, false),                  // 1 - oi_qty ≤ 0
            con(&[(2, 1), (0, -1), (1, 1)], 0, false),  // qty' - qty + oi_qty ≤ 0
            con(&[(2, -1), (0, 1), (1, -1)], 0, false), // and ≥ → equality
            con(&[(2, -1)], 0, false),                  // -qty' ≤ 0
        ];
        match solve(&int_vars(3), &cons, Limits::default()) {
            ArithResult::Sat(m) => {
                assert!(cons.iter().all(|c| c.satisfied(&m)));
                assert_eq!(m[2], m[0] - m[1]);
            }
            other => panic!("{other:?}"),
        }
    }

    proptest! {
        /// Constraints generated to be satisfied by a hidden assignment
        /// must be found SAT, and the returned model must satisfy them.
        #[test]
        fn planted_assignment_found(
            hidden in proptest::collection::vec(-50i64..50, 1..5),
            raw in proptest::collection::vec(
                (proptest::collection::vec((0usize..5, -4i64..5), 1..4), any::<bool>()),
                0..12,
            ),
        ) {
            let n = hidden.len();
            let vars = int_vars(n);
            let mut cons = Vec::new();
            for (terms, strict) in raw {
                let mut e = LinExpr::zero();
                for (v, c) in terms {
                    if c != 0 {
                        e = e.add(&LinExpr::var(v % n).scale(Rat::int(c)));
                    }
                }
                // Choose the offset so the hidden point satisfies it.
                let hidden_rats: Vec<Rat> = hidden.iter().map(|&h| Rat::int(h)).collect();
                let at_hidden = e.eval(&hidden_rats);
                let slack = if strict { Rat::int(1) } else { ZERO };
                let expr = e.sub(&LinExpr::constant(at_hidden + slack));
                cons.push(Constraint { expr, strict });
            }
            match solve(&vars, &cons, Limits::default()) {
                ArithResult::Sat(m) => {
                    prop_assert!(cons.iter().all(|c| c.satisfied(&m)));
                    for (i, v) in vars.iter().enumerate() {
                        if v.is_int {
                            prop_assert!(m[i].is_integer());
                        }
                    }
                }
                other => prop_assert!(false, "planted-SAT instance reported {other:?}"),
            }
        }

        /// Whatever the system, a SAT answer must carry a genuine model.
        #[test]
        fn sat_models_verify(
            raw in proptest::collection::vec(
                (proptest::collection::vec((0usize..4, -3i64..4), 1..4), -10i64..10, any::<bool>()),
                0..10,
            ),
        ) {
            let n = 4;
            let vars = int_vars(n);
            let mut cons = Vec::new();
            for (terms, k, strict) in raw {
                let mut e = LinExpr::constant(Rat::int(k));
                for (v, c) in terms {
                    if c != 0 {
                        e = e.add(&LinExpr::var(v % n).scale(Rat::int(c)));
                    }
                }
                cons.push(Constraint { expr: e, strict });
            }
            if let ArithResult::Sat(m) = solve(&vars, &cons, Limits::default()) {
                prop_assert!(cons.iter().all(|c| c.satisfied(&m)));
            }
        }
    }
}

//! Tier 0 of the tiered solving pipeline: a memoizing bottom-up term
//! simplifier over the hash-consed DAG.
//!
//! The analyzer's conflict ∧ path-condition conjunctions carry a lot of
//! structure the full DPLL(T) stack would otherwise grind through atom by
//! atom: trivially decided comparisons between constants, `x = x`
//! reflexivity from result-consistency encoding, conjuncts duplicated
//! between a path condition and a conflict condition, and contradiction
//! literals (`p ∧ ¬p`). Rewriting these *before* canonicalization means
//! [`crate::cache::VerdictCache`] keys on the simplified form, so queries
//! that become alpha-equivalent only after simplification turn into cache
//! hits — and a formula that simplifies all the way to a boolean constant
//! never reaches CNF lowering at all.
//!
//! Every rewrite is an equivalence (never a strengthening or weakening):
//! the simplified term is satisfiable iff the original is, and any model
//! of one satisfies the other. The property tests in
//! `crates/smt/tests/tiered.rs` check exactly that against the full
//! solver.
//!
//! Rules implemented:
//!
//! * **Constant folding** — arithmetic over [`Rat`] constants, comparisons
//!   and equalities between constants, `x + 0`, `x - 0`, `x - x`, `1·x`,
//!   `0·x`, `-(-x)`.
//! * **Reflexivity** — `x = x` ⇒ `true`, `x ≤ x` ⇒ `true`, `x < x` ⇒
//!   `false` (same hash-consed id on both sides).
//! * **Boolean equality** — `b = true` ⇒ `b`, `b = false` ⇒ `¬b`.
//! * **Contradiction literals** — an `And` containing both `p` and `¬p`
//!   collapses to `false`; an `Or` containing both collapses to `true`.
//! * **Absorption** — `a ∧ (a ∨ b)` ⇒ `a`, `a ∨ (a ∧ b)` ⇒ `a`.
//! * **Duplicate elimination** — `And`/`Or` children are deduplicated
//!   (hash consing makes duplicates id-equal), preserving first-occurrence
//!   order so results stay deterministic.
//!
//! The [`Ctx`] builders already do light rewriting (flattening, constant
//! short-circuits, double-negation collapse); the simplifier composes with
//! them by rebuilding every node through the builders.

use crate::rational::Rat;
use crate::term::{CmpKind, Ctx, Sort, TermId, TermKind};
use std::collections::{HashMap, HashSet};

/// A memoizing bottom-up simplifier over one [`Ctx`].
///
/// The memo table is keyed by term id, so repeated calls on overlapping
/// DAGs (e.g. every path condition of one trace, which share prefixes) do
/// each node's work once. Create one per context and reuse it; for
/// one-shot use call [`simplify`].
#[derive(Debug, Default)]
pub struct Simplifier {
    memo: HashMap<TermId, TermId>,
}

impl Simplifier {
    /// New simplifier with an empty memo table.
    pub fn new() -> Self {
        Simplifier::default()
    }

    /// Simplify `t` inside `ctx`, returning an equivalent (and possibly
    /// identical) term id in the same context.
    pub fn simplify(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        if let Some(&s) = self.memo.get(&t) {
            return s;
        }
        let out = self.rewrite(ctx, t);
        self.memo.insert(t, out);
        out
    }

    fn rewrite(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        match ctx.kind(t).clone() {
            TermKind::Var(_)
            | TermKind::BoolConst(_)
            | TermKind::NumConst(_)
            | TermKind::StrConst(_) => t,
            TermKind::Add(a, b) => {
                let (a, b) = (self.simplify(ctx, a), self.simplify(ctx, b));
                match (num_const(ctx, a), num_const(ctx, b)) {
                    (Some(x), Some(y)) => {
                        let s = join(ctx, a, b);
                        num(ctx, x + y, s)
                    }
                    (Some(x), None) if x.is_zero() && ctx.sort(a) == ctx.sort(b) => b,
                    (None, Some(y)) if y.is_zero() && ctx.sort(a) == ctx.sort(b) => a,
                    _ => ctx.add(a, b),
                }
            }
            TermKind::Sub(a, b) => {
                let (a, b) = (self.simplify(ctx, a), self.simplify(ctx, b));
                if a == b {
                    let s = ctx.sort(a).clone();
                    return num(ctx, Rat::int(0), s);
                }
                match (num_const(ctx, a), num_const(ctx, b)) {
                    (Some(x), Some(y)) => {
                        let s = join(ctx, a, b);
                        num(ctx, x - y, s)
                    }
                    (None, Some(y)) if y.is_zero() => a,
                    _ => ctx.sub(a, b),
                }
            }
            TermKind::Neg(a) => {
                let a = self.simplify(ctx, a);
                if let Some(x) = num_const(ctx, a) {
                    let s = ctx.sort(a).clone();
                    return num(ctx, -x, s);
                }
                if let TermKind::Neg(inner) = ctx.kind(a) {
                    return *inner;
                }
                ctx.neg(a)
            }
            TermKind::MulConst(c, a) => {
                let a = self.simplify(ctx, a);
                if let Some(x) = num_const(ctx, a) {
                    let s = ctx.sort(t).clone();
                    return num(ctx, c * x, s);
                }
                if c == Rat::int(1) && ctx.sort(a) == ctx.sort(t) {
                    return a;
                }
                if c.is_zero() {
                    let s = ctx.sort(t).clone();
                    return num(ctx, Rat::int(0), s);
                }
                ctx.mul_const(c, a)
            }
            TermKind::Cmp(kind, a, b) => {
                let (a, b) = (self.simplify(ctx, a), self.simplify(ctx, b));
                if a == b {
                    // x < x is false, x ≤ x is true.
                    return ctx.bool_const(kind == CmpKind::Le);
                }
                if let (Some(x), Some(y)) = (num_const(ctx, a), num_const(ctx, b)) {
                    return ctx.bool_const(match kind {
                        CmpKind::Lt => x < y,
                        CmpKind::Le => x <= y,
                    });
                }
                match kind {
                    CmpKind::Lt => ctx.lt(a, b),
                    CmpKind::Le => ctx.le(a, b),
                }
            }
            TermKind::Eq(a, b) => {
                let (a, b) = (self.simplify(ctx, a), self.simplify(ctx, b));
                if a == b {
                    return ctx.bool_const(true);
                }
                match (ctx.kind(a).clone(), ctx.kind(b).clone()) {
                    // Rat equality also decides Int-vs-Real constant pairs.
                    (TermKind::NumConst(x), TermKind::NumConst(y)) => ctx.bool_const(x == y),
                    (TermKind::StrConst(x), TermKind::StrConst(y)) => ctx.bool_const(x == y),
                    (TermKind::BoolConst(x), TermKind::BoolConst(y)) => ctx.bool_const(x == y),
                    // b = true ⇒ b ; b = false ⇒ ¬b (either side).
                    (TermKind::BoolConst(x), _) => {
                        if x {
                            b
                        } else {
                            ctx.not(b)
                        }
                    }
                    (_, TermKind::BoolConst(y)) => {
                        if y {
                            a
                        } else {
                            ctx.not(a)
                        }
                    }
                    _ => ctx.eq(a, b),
                }
            }
            TermKind::Not(a) => {
                let a = self.simplify(ctx, a);
                ctx.not(a)
            }
            TermKind::And(parts) => {
                let parts: Vec<TermId> = parts.iter().map(|&p| self.simplify(ctx, p)).collect();
                // The builder flattens and short-circuits; apply the
                // set-based rules on the flattened child list.
                let flat = ctx.and(parts);
                let children = match ctx.kind(flat) {
                    TermKind::And(c) => c.clone(),
                    _ => return flat,
                };
                let (kept, present) = dedup(&children);
                for &p in &kept {
                    if let TermKind::Not(inner) = ctx.kind(p) {
                        if present.contains(inner) {
                            // p ∧ ¬p ⇒ false.
                            return ctx.bool_const(false);
                        }
                    }
                }
                // Absorption: a ∧ (a ∨ b) ⇒ a — drop any disjunction one
                // of whose arms is already asserted.
                let kept: Vec<TermId> = kept
                    .into_iter()
                    .filter(|&p| match ctx.kind(p) {
                        TermKind::Or(arms) => !arms.iter().any(|arm| present.contains(arm)),
                        _ => true,
                    })
                    .collect();
                ctx.and(kept)
            }
            TermKind::Or(parts) => {
                let parts: Vec<TermId> = parts.iter().map(|&p| self.simplify(ctx, p)).collect();
                let flat = ctx.or(parts);
                let children = match ctx.kind(flat) {
                    TermKind::Or(c) => c.clone(),
                    _ => return flat,
                };
                let (kept, present) = dedup(&children);
                for &p in &kept {
                    if let TermKind::Not(inner) = ctx.kind(p) {
                        if present.contains(inner) {
                            // p ∨ ¬p ⇒ true.
                            return ctx.bool_const(true);
                        }
                    }
                }
                // Absorption: a ∨ (a ∧ b) ⇒ a — drop any conjunction one
                // of whose conjuncts is already an arm.
                let kept: Vec<TermId> = kept
                    .into_iter()
                    .filter(|&p| match ctx.kind(p) {
                        TermKind::And(conj) => !conj.iter().any(|c| present.contains(c)),
                        _ => true,
                    })
                    .collect();
                ctx.or(kept)
            }
            TermKind::Store(arr, idx, val) => {
                let arr = self.simplify(ctx, arr);
                let idx = self.simplify(ctx, idx);
                let val = self.simplify(ctx, val);
                ctx.store(arr, idx, val)
            }
            TermKind::Select(arr, idx) => {
                let arr = self.simplify(ctx, arr);
                let idx = self.simplify(ctx, idx);
                ctx.select(arr, idx)
            }
        }
    }
}

/// One-shot convenience wrapper around [`Simplifier`].
pub fn simplify(ctx: &mut Ctx, t: TermId) -> TermId {
    Simplifier::new().simplify(ctx, t)
}

/// Deduplicate preserving first-occurrence order; also return the set.
fn dedup(children: &[TermId]) -> (Vec<TermId>, HashSet<TermId>) {
    let mut kept = Vec::with_capacity(children.len());
    let mut present = HashSet::with_capacity(children.len());
    for &p in children {
        if present.insert(p) {
            kept.push(p);
        }
    }
    (kept, present)
}

fn num_const(ctx: &Ctx, t: TermId) -> Option<Rat> {
    match ctx.kind(t) {
        TermKind::NumConst(r) => Some(*r),
        _ => None,
    }
}

/// Rebuild a numeric constant at the given sort.
fn num(ctx: &mut Ctx, r: Rat, sort: Sort) -> TermId {
    if sort == Sort::Int && r.is_integer() {
        ctx.int(r.floor() as i64)
    } else {
        ctx.real(r)
    }
}

/// Sort join of two numeric operands (Real wins).
fn join(ctx: &Ctx, a: TermId, b: TermId) -> Sort {
    if ctx.sort(a) == &Sort::Real || ctx.sort(b) == &Sort::Real {
        Sort::Real
    } else {
        Sort::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn folds_constants() {
        let mut ctx = Ctx::new();
        let three = ctx.int(3);
        let five = ctx.int(5);
        let sum = ctx.add(three, five);
        let cmp = ctx.lt(sum, five);
        let s = simplify(&mut ctx, cmp);
        assert_eq!(s, ctx.bool_const(false));
        let eq = ctx.eq(three, three);
        let s = simplify(&mut ctx, eq);
        assert_eq!(s, ctx.bool_const(true));
    }

    #[test]
    fn reflexivity() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let eq = ctx.eq(x, x);
        let s = simplify(&mut ctx, eq);
        assert_eq!(s, ctx.bool_const(true));
        let le = ctx.le(x, x);
        let s = simplify(&mut ctx, le);
        assert_eq!(s, ctx.bool_const(true));
        let lt = ctx.lt(x, x);
        let s = simplify(&mut ctx, lt);
        assert_eq!(s, ctx.bool_const(false));
    }

    #[test]
    fn contradiction_literals() {
        let mut ctx = Ctx::new();
        let p = ctx.var("p", Sort::Bool);
        let np = ctx.not(p);
        let q = ctx.var("q", Sort::Bool);
        let f = ctx.and([p, q, np]);
        let s = simplify(&mut ctx, f);
        assert_eq!(s, ctx.bool_const(false));
        let g = ctx.or([p, q, np]);
        let s = simplify(&mut ctx, g);
        assert_eq!(s, ctx.bool_const(true));
    }

    #[test]
    fn absorption_and_dedup() {
        let mut ctx = Ctx::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let a_or_b = ctx.or([a, b]);
        let f = ctx.and([a, a_or_b]);
        assert_eq!(simplify(&mut ctx, f), a);
        let a_and_b = ctx.and([a, b]);
        let g = ctx.or([a, a_and_b]);
        assert_eq!(simplify(&mut ctx, g), a);
    }

    #[test]
    fn arithmetic_identities() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let xp0 = ctx.add(x, zero);
        assert_eq!(simplify(&mut ctx, xp0), x);
        let xmx = ctx.sub(x, x);
        assert_eq!(simplify(&mut ctx, xmx), zero);
        let one_x = ctx.mul_const(Rat::int(1), x);
        assert_eq!(simplify(&mut ctx, one_x), x);
        let neg_neg = {
            let n = ctx.neg(x);
            ctx.neg(n)
        };
        assert_eq!(simplify(&mut ctx, neg_neg), x);
    }

    #[test]
    fn bool_equality_unwraps() {
        let mut ctx = Ctx::new();
        let p = ctx.var("p", Sort::Bool);
        let tt = ctx.bool_const(true);
        let ff = ctx.bool_const(false);
        let e1 = ctx.eq(p, tt);
        assert_eq!(simplify(&mut ctx, e1), p);
        let e2 = ctx.eq(p, ff);
        let s = simplify(&mut ctx, e2);
        let np = ctx.not(p);
        assert_eq!(s, np);
    }

    #[test]
    fn nested_collapse_through_layers() {
        // (x + 0 = x) ∧ q simplifies to q: the equality folds to true.
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let xp0 = ctx.add(x, zero);
        let eq = ctx.eq(xp0, x);
        let q = ctx.var("q", Sort::Bool);
        let f = ctx.and([eq, q]);
        assert_eq!(simplify(&mut ctx, f), q);
    }

    #[test]
    fn idempotent() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let zero = ctx.int(0);
        let c1 = ctx.lt(x, y);
        let xp0 = ctx.add(x, zero);
        let c2 = ctx.eq(xp0, y);
        let f = ctx.and([c1, c2, c1]);
        let s1 = simplify(&mut ctx, f);
        let s2 = simplify(&mut ctx, s1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn memo_reuse_across_calls() {
        let mut ctx = Ctx::new();
        let mut simp = Simplifier::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let c = ctx.lt(x, y);
        let a = simp.simplify(&mut ctx, c);
        let b = simp.simplify(&mut ctx, c);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}

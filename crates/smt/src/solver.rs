//! The lazy-SMT solver loop: SAT on the boolean skeleton, theory checks on
//! the implied atom polarities, blocking clauses on theory conflicts.
//!
//! This is the Z3 stand-in WeSEER's analyzer calls (paper Sec. III-B): it
//! answers SAT with a satisfying assignment, UNSAT, or Unknown (timeout);
//! the analyzer reports a deadlock only on SAT.

use crate::arith::{self, ArithResult, Constraint, Limits};
use crate::lower::{Atom, Lowering};
use crate::model::{Model, ModelKey, ModelValue};
use crate::presolve::{self, PresolveResult};
use crate::rational::Rat;
use crate::sat::{self, Cnf, Lit, SatResult, SatStats};
use crate::simplify;
use crate::strings::{self, StrResult, StrTerm};
use crate::term::{Ctx, TermId, TermKind};
use std::collections::{BTreeMap, HashMap};

/// Which tiers of the fast path run in front of the full solver (see
/// [`check_tiered`]). All tiers are sound — disabling them changes cost,
/// never verdicts — which `reproduce --smt-ablation` verifies end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Tier 0: bottom-up simplification ([`crate::simplify`]) before
    /// canonicalization/solving; formulas that fold to a constant are
    /// discharged outright.
    pub simplify: bool,
    /// Tier 1: abstract pre-solve ([`crate::presolve`]) for definite
    /// UNSAT / definite SAT-with-model verdicts.
    pub presolve: bool,
    /// Tier 2: shared path-condition prefix solving in the analyzer
    /// (`weseer-analyzer`); carried here so one knob travels with the
    /// solver config.
    pub prefix: bool,
    /// CDCL SAT core: first-UIP clause learning, VSIDS, restarts, and a
    /// persistent solver that keeps theory-blocking clauses across the
    /// lazy loop's iterations. Off = the legacy chronological DPLL that
    /// rebuilds the CNF every iteration.
    pub cdcl: bool,
    /// Incremental cross-query solving in the analyzer: one persistent
    /// [`crate::IncrementalSolver`] per transaction pair, every cycle's
    /// formula solved under a single assumption literal so lowered
    /// subterms, learned clauses, and theory-blocking clauses carry over
    /// between cycles. Requires `cdcl`; carried here so one knob travels
    /// with the solver config.
    pub incremental: bool,
}

impl TierConfig {
    /// Every tier disabled — the pre-tiered pipeline, used as the
    /// ablation baseline.
    pub const OFF: TierConfig = TierConfig {
        simplify: false,
        presolve: false,
        prefix: false,
        cdcl: false,
        incremental: false,
    };

    /// The named knob ablation grid: every row is the default config with
    /// exactly one knob withheld (plus the all-on and all-off endpoints).
    /// `reproduce --smt-ablation` emits one `BENCH_smt.json` row per
    /// name and CI gates on exactly these names, so adding a `TierConfig`
    /// knob without extending this list fails the bench check.
    pub fn ablation_configs() -> Vec<(&'static str, TierConfig)> {
        let all = TierConfig::default();
        vec![
            ("all_tiers", all),
            (
                "no_simplify",
                TierConfig {
                    simplify: false,
                    ..all
                },
            ),
            (
                "no_presolve",
                TierConfig {
                    presolve: false,
                    ..all
                },
            ),
            (
                "no_prefix",
                TierConfig {
                    prefix: false,
                    ..all
                },
            ),
            (
                // `incremental` requires `cdcl`, so the CDCL ablation
                // withdraws both.
                "no_cdcl",
                TierConfig {
                    cdcl: false,
                    incremental: false,
                    ..all
                },
            ),
            (
                "no_incremental",
                TierConfig {
                    incremental: false,
                    ..all
                },
            ),
            ("no_tiers", TierConfig::OFF),
        ]
    }
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            simplify: true,
            presolve: true,
            prefix: true,
            cdcl: true,
            incremental: true,
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum number of SAT+theory iterations before giving up.
    pub max_theory_iters: usize,
    /// Arithmetic resource limits.
    pub arith_limits: Limits,
    /// Branching-decision budget per SAT call; exhaustion is a timeout.
    pub sat_decision_budget: u64,
    /// Fast-path tiers run by [`check_tiered`] (and the verdict cache).
    pub tiers: TierConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_theory_iters: 500,
            arith_limits: Limits::default(),
            sat_decision_budget: 2_000_000,
            tiers: TierConfig::default(),
        }
    }
}

/// Outcome of a solver call.
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// Satisfiable with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Resource limits exceeded (reported like a Z3 timeout).
    Unknown,
}

impl SolveResult {
    /// Short verdict label ("sat"/"unsat"/"unknown") for timelines.
    pub fn verdict_str(&self) -> &'static str {
        match self {
            SolveResult::Sat(_) => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown => "unknown",
        }
    }

    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model if SAT.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Search-effort statistics for one [`check_with_stats`] call, summed
/// over every SAT call and theory iteration of the lazy loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// SAT core invocations (one per theory iteration).
    pub sat_calls: u64,
    /// Aggregated DPLL decision/propagation counts.
    pub sat: SatStats,
    /// Theory iterations executed (= blocking clauses added + 1, unless
    /// the loop exited early).
    pub theory_iters: u64,
    /// Arithmetic-theory conflicts (each adds one blocking clause).
    pub arith_conflicts: u64,
    /// String-theory conflicts (each adds one blocking clause).
    pub str_conflicts: u64,
    /// Total literals across all minimized unsat cores.
    pub core_lits: u64,
    /// Largest single minimized unsat core.
    pub max_core_lits: u64,
    /// Verdict-cache hits (filled by [`crate::cache::VerdictCache`];
    /// always 0 for direct [`check`] calls).
    pub cache_hits: u64,
    /// Verdict-cache misses.
    pub cache_misses: u64,
    /// Unknowns caused by exhausting the SAT decision budget.
    pub sat_budget_exhausted: u64,
    /// Unknowns caused by exceeding the arithmetic resource limits.
    pub arith_budget_exhausted: u64,
    /// Unknowns caused by running out of theory iterations.
    pub theory_iters_exhausted: u64,
    /// Queries discharged by tier 0 (simplified to a boolean constant).
    pub t0_discharged: u64,
    /// Queries discharged UNSAT by the tier-1 abstract pre-solver.
    pub t1_unsat: u64,
    /// Queries discharged SAT (with a checked model) by tier 1.
    pub t1_sat: u64,
    /// Queries that fell through every fast-path tier.
    pub fallthrough: u64,
    /// Wall-clock microseconds spent answering the query (summed over
    /// calls when absorbed). Nondeterministic — attribution only; must
    /// never feed byte-compared reports or verdicts.
    pub wall_us: u64,
}

impl SolverStats {
    /// Accumulate another call's statistics into this one.
    pub fn absorb(&mut self, other: SolverStats) {
        self.sat_calls += other.sat_calls;
        self.sat.absorb(other.sat);
        self.theory_iters += other.theory_iters;
        self.arith_conflicts += other.arith_conflicts;
        self.str_conflicts += other.str_conflicts;
        self.core_lits += other.core_lits;
        self.max_core_lits = self.max_core_lits.max(other.max_core_lits);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.sat_budget_exhausted += other.sat_budget_exhausted;
        self.arith_budget_exhausted += other.arith_budget_exhausted;
        self.theory_iters_exhausted += other.theory_iters_exhausted;
        self.t0_discharged += other.t0_discharged;
        self.t1_unsat += other.t1_unsat;
        self.t1_sat += other.t1_sat;
        self.fallthrough += other.fallthrough;
        self.wall_us += other.wall_us;
    }

    /// Total Unknown verdicts attributable to exhausted budgets rather
    /// than genuine pruning — the "gave up" bucket the ablation separates
    /// from "pruned".
    pub fn budget_exhausted(&self) -> u64 {
        self.sat_budget_exhausted + self.arith_budget_exhausted + self.theory_iters_exhausted
    }

    fn record_core(&mut self, core: &[Lit]) {
        self.core_lits += core.len() as u64;
        self.max_core_lits = self.max_core_lits.max(core.len() as u64);
        weseer_obs::observe("smt.unsat_core_size", core.len() as u64);
    }
}

/// Decide the satisfiability of `assertion` (Bool-sorted).
pub fn check(ctx: &mut Ctx, assertion: TermId, config: &SolverConfig) -> SolveResult {
    check_with_stats(ctx, assertion, config).0
}

/// Like [`check`] but also reporting search-effort statistics. Per-call
/// latency and the aggregated counters are additionally recorded in the
/// global [`weseer_obs`] registry (histogram `smt.solve_us`, counters
/// `smt.*`) when observability is enabled.
pub fn check_with_stats(
    ctx: &mut Ctx,
    assertion: TermId,
    config: &SolverConfig,
) -> (SolveResult, SolverStats) {
    let start = std::time::Instant::now();
    let mut stats = SolverStats::default();
    let result = check_inner(ctx, assertion, config, &mut stats);
    record_full_solve(start, &result, &mut stats);
    (result, stats)
}

/// Record the per-call observability for one full (non-fastpath) solve:
/// wall-clock histograms, the timeline slice, and the aggregated search
/// counters — including the CDCL internals
/// (`smt.cdcl.{conflicts,learned,restarts,propagations,db_reductions}`).
/// Shared by [`check_with_stats`] and the incremental solver so the
/// funnel counters mean the same thing in every mode.
pub(crate) fn record_full_solve(
    start: std::time::Instant,
    result: &SolveResult,
    stats: &mut SolverStats,
) {
    let elapsed = start.elapsed();
    stats.wall_us = elapsed.as_micros() as u64;
    if weseer_obs::timeline::enabled() {
        weseer_obs::timeline::complete_since(
            "smt.solve",
            "smt",
            start,
            &[
                ("tier", "full".to_string()),
                ("verdict", result.verdict_str().to_string()),
            ],
        );
    }
    weseer_obs::observe_duration("smt.solve_us", elapsed);
    weseer_obs::observe_duration("smt.full_solve_us", elapsed);
    weseer_obs::add("smt.solve_calls", 1);
    weseer_obs::add("smt.full_solve", 1);
    weseer_obs::add("smt.sat_budget_exhausted", stats.sat_budget_exhausted);
    weseer_obs::add("smt.arith_budget_exhausted", stats.arith_budget_exhausted);
    weseer_obs::add("smt.theory_iters_exhausted", stats.theory_iters_exhausted);
    weseer_obs::add("smt.sat_calls", stats.sat_calls);
    weseer_obs::add("smt.sat_decisions", stats.sat.decisions);
    weseer_obs::add("smt.sat_propagations", stats.sat.propagations);
    weseer_obs::add("smt.theory_iters", stats.theory_iters);
    weseer_obs::add("smt.arith_conflicts", stats.arith_conflicts);
    weseer_obs::add("smt.str_conflicts", stats.str_conflicts);
    weseer_obs::add("smt.cdcl.conflicts", stats.sat.conflicts);
    weseer_obs::add("smt.cdcl.learned", stats.sat.learned);
    weseer_obs::add("smt.cdcl.restarts", stats.sat.restarts);
    weseer_obs::add("smt.cdcl.propagations", stats.sat.propagations);
    weseer_obs::add("smt.cdcl.db_reductions", stats.sat.db_reductions);
}

/// Outcome of the tier-0/tier-1 fast path: either a final verdict or the
/// (possibly simplified) formula the full solver should see.
pub(crate) enum Fastpath {
    Decided(SolveResult),
    Continue(TermId),
}

/// Run the tier-0 simplifier and tier-1 abstract pre-solver in front of
/// the full solver, recording discharge counters in `stats` and the
/// global `weseer_obs` registry.
///
/// Soundness: tier 0 discharges only formulas that fold to a boolean
/// constant; tier 1 discharges UNSAT only from over-approximating
/// reasoning (cross-checked against the full solver under
/// `debug_assertions`) and SAT only with a candidate model that
/// [`Model::satisfies`] has verified against the original formula.
pub(crate) fn fastpath(
    ctx: &mut Ctx,
    assertion: TermId,
    config: &SolverConfig,
    stats: &mut SolverStats,
) -> Fastpath {
    let mut term = assertion;
    if config.tiers.simplify {
        let start = std::time::Instant::now();
        term = simplify::simplify(ctx, term);
        weseer_obs::observe_duration("smt.fastpath.t0_us", start.elapsed());
        if let TermKind::BoolConst(b) = *ctx.kind(term) {
            stats.t0_discharged += 1;
            weseer_obs::add("smt.fastpath.t0_simplified", 1);
            return Fastpath::Decided(if b {
                // `true` is satisfied by any assignment; the empty model
                // leaves every variable at its sort's default value.
                SolveResult::Sat(Model::default())
            } else {
                SolveResult::Unsat
            });
        }
    }
    if config.tiers.presolve {
        let start = std::time::Instant::now();
        let pre = presolve::presolve(ctx, term);
        weseer_obs::observe_duration("smt.fastpath.t1_us", start.elapsed());
        match pre {
            PresolveResult::Unsat => {
                #[cfg(debug_assertions)]
                {
                    let mut scratch = SolverStats::default();
                    let full = check_inner(ctx, term, config, &mut scratch);
                    debug_assert!(
                        !matches!(full, SolveResult::Sat(_)),
                        "presolve claimed UNSAT for a satisfiable formula"
                    );
                }
                stats.t1_unsat += 1;
                weseer_obs::add("smt.fastpath.t1_unsat", 1);
                return Fastpath::Decided(SolveResult::Unsat);
            }
            PresolveResult::Sat(model) => {
                debug_assert!(
                    model.satisfies(ctx, assertion),
                    "presolve returned a model that does not satisfy the original formula"
                );
                stats.t1_sat += 1;
                weseer_obs::add("smt.fastpath.t1_sat", 1);
                return Fastpath::Decided(SolveResult::Sat(model));
            }
            PresolveResult::Unknown => {}
        }
    }
    stats.fallthrough += 1;
    weseer_obs::add("smt.fastpath.fallthrough", 1);
    Fastpath::Continue(term)
}

/// [`check_with_stats`] behind the tiered fast path: tier-0
/// simplification and the tier-1 abstract pre-solver run first (subject
/// to `config.tiers`), and only formulas neither tier can discharge reach
/// the full DPLL(T) solver. Verdicts are identical to [`check`]'s on
/// every decided formula; only the cost differs.
pub fn check_tiered(
    ctx: &mut Ctx,
    assertion: TermId,
    config: &SolverConfig,
) -> (SolveResult, SolverStats) {
    let start = std::time::Instant::now();
    let mut stats = SolverStats::default();
    match fastpath(ctx, assertion, config, &mut stats) {
        Fastpath::Decided(result) => {
            record_fastpath_decided(start, &result, &mut stats);
            (result, stats)
        }
        Fastpath::Continue(term) => {
            let (result, full_stats) = check_with_stats(ctx, term, config);
            stats.absorb(full_stats);
            (result, stats)
        }
    }
}

/// Record the per-call observability for a query the tier-0/tier-1 fast
/// path discharged without running the full solver. Keeps the funnel
/// invariant `smt.solve_calls` = queries answered, whether or not the
/// full solver ran. Shared by [`check_tiered`] and the incremental
/// solver.
pub(crate) fn record_fastpath_decided(
    start: std::time::Instant,
    result: &SolveResult,
    stats: &mut SolverStats,
) {
    let elapsed = start.elapsed();
    stats.wall_us = elapsed.as_micros() as u64;
    if weseer_obs::timeline::enabled() {
        let tier = if stats.t0_discharged > 0 { "t0" } else { "t1" };
        weseer_obs::timeline::complete_since(
            "smt.solve",
            "smt",
            start,
            &[
                ("tier", tier.to_string()),
                ("verdict", result.verdict_str().to_string()),
            ],
        );
    }
    weseer_obs::observe_duration("smt.solve_us", elapsed);
    weseer_obs::add("smt.solve_calls", 1);
}

fn check_inner(
    ctx: &mut Ctx,
    assertion: TermId,
    config: &SolverConfig,
    stats: &mut SolverStats,
) -> SolveResult {
    // 1. Instantiate read-congruence axioms: for any two reads on the same
    //    array variable, equal indices force equal read values.
    let with_axioms = add_select_congruence(ctx, assertion);

    // 2. Lower to CNF over atoms.
    let mut low = Lowering::new();
    low.assert(ctx, with_axioms);

    // 3. Lazy theory loop. With CDCL on, one persistent solver lives
    //    across all iterations: blocking clauses (and everything the SAT
    //    search learned) accumulate instead of the CNF being rebuilt and
    //    re-searched from scratch each time. With CDCL off, the legacy
    //    chronological DPLL rebuilds per iteration — the `no_cdcl`
    //    ablation baseline.
    let mut persistent = config.tiers.cdcl.then(|| sat::Solver::from_cnf(&low.cnf));
    for _ in 0..config.max_theory_iters {
        stats.theory_iters += 1;
        stats.sat_calls += 1;
        let (sat_result, sat_stats) = match persistent.as_mut() {
            Some(solver) => solver.solve_under_assumptions(&[], config.sat_decision_budget),
            None => sat::solve_dpll_instrumented(&low.cnf, config.sat_decision_budget),
        };
        stats.sat.absorb(sat_stats);
        let bool_model = match sat_result {
            None => {
                stats.sat_budget_exhausted += 1;
                return SolveResult::Unknown;
            }
            Some(SatResult::Unsat) => return SolveResult::Unsat,
            Some(SatResult::Sat(m)) => m,
        };

        // Reduce the full assignment to a prime implicant: atoms that are
        // not needed to satisfy the boolean skeleton stay out of the
        // theory checks. Conflict-condition formulas carry hundreds of
        // don't-care congruence atoms; asserting them all would send the
        // arithmetic solver arbitrary (often contradictory) polarities
        // and turn the lazy loop into model enumeration.
        let needed = prime_implicant(&low.cnf, &bool_model);

        match theory_round(ctx, &low, &bool_model, &needed, config, stats) {
            TheoryOutcome::Conflict(core) => {
                let clause = block(&mut low, &core);
                if let Some(solver) = persistent.as_mut() {
                    solver.add_clause(&clause);
                }
            }
            TheoryOutcome::Unknown => return SolveResult::Unknown,
            TheoryOutcome::Sat(model) => return SolveResult::Sat(*model),
        }
    }
    stats.theory_iters_exhausted += 1;
    SolveResult::Unknown
}

/// Outcome of one theory round over a boolean model.
pub(crate) enum TheoryOutcome {
    /// A theory refuted the implied literals; the minimized core must be
    /// blocked (negated into a clause) before the next SAT call.
    Conflict(Vec<Lit>),
    /// A theory exhausted its resource limits.
    Unknown,
    /// Both theories accept; here is the combined model.
    Sat(Box<Model>),
}

/// Run the arithmetic and string theories over the atom polarities a
/// boolean model implies (restricted to `needed` variables), minimizing
/// the unsat core on conflict and assembling the combined model on
/// success. Shared by [`check_inner`] and the incremental solver.
pub(crate) fn theory_round(
    ctx: &Ctx,
    low: &Lowering,
    bool_model: &[bool],
    needed: &[bool],
    config: &SolverConfig,
    stats: &mut SolverStats,
) -> TheoryOutcome {
    // Collect asserted theory literals.
    let mut lin_cons: Vec<Constraint> = Vec::new();
    let mut lin_lits: Vec<Lit> = Vec::new();
    let mut str_items: Vec<(bool, (StrTerm, StrTerm), Lit)> = Vec::new();
    for (i, atom) in low.atoms.iter().enumerate() {
        let var = low.atom_vars[i];
        if !needed[var] {
            continue;
        }
        let pol = bool_model[var];
        match atom {
            Atom::Lin(c) => {
                let asserted = if pol {
                    c.clone()
                } else {
                    // ¬(e ≤ 0) ⇔ -e < 0 ; ¬(e < 0) ⇔ -e ≤ 0
                    Constraint {
                        expr: c.expr.scale(Rat::int(-1)),
                        strict: !c.strict,
                    }
                };
                lin_cons.push(asserted);
                lin_lits.push(if pol { Lit::pos(var) } else { Lit::neg(var) });
            }
            Atom::StrEq(a, b) => {
                let lit = if pol { Lit::pos(var) } else { Lit::neg(var) };
                str_items.push((pol, (a.clone(), b.clone()), lit));
            }
            Atom::BoolVar(_) | Atom::Select { .. } => {}
        }
    }
    let str_eqs: Vec<(StrTerm, StrTerm)> = str_items
        .iter()
        .filter(|(eq, _, _)| *eq)
        .map(|(_, p, _)| p.clone())
        .collect();
    let str_neqs: Vec<(StrTerm, StrTerm)> = str_items
        .iter()
        .filter(|(eq, _, _)| !*eq)
        .map(|(_, p, _)| p.clone())
        .collect();

    // Arithmetic theory.
    let arith_model = match arith::solve(&low.num_vars, &lin_cons, config.arith_limits) {
        ArithResult::Unsat => {
            let core =
                minimize_arith_core(&low.num_vars, &lin_cons, &lin_lits, config.arith_limits);
            stats.arith_conflicts += 1;
            stats.record_core(&core);
            return TheoryOutcome::Conflict(core);
        }
        ArithResult::Unknown => {
            stats.arith_budget_exhausted += 1;
            return TheoryOutcome::Unknown;
        }
        ArithResult::Sat(m) => m,
    };

    // String theory.
    let str_model = match strings::solve(&str_eqs, &str_neqs) {
        StrResult::Unsat => {
            let core = minimize_str_core(&str_items);
            stats.str_conflicts += 1;
            stats.record_core(&core);
            return TheoryOutcome::Conflict(core);
        }
        StrResult::Sat(m) => m,
    };

    // Both theories agree: assemble the model.
    TheoryOutcome::Sat(Box::new(build_model(
        ctx,
        low,
        bool_model,
        &arith_model,
        &str_model,
    )))
}

/// Convenience: check a conjunction of assertions.
pub fn check_all(ctx: &mut Ctx, assertions: &[TermId], config: &SolverConfig) -> SolveResult {
    let conj = ctx.and(assertions.iter().copied());
    check(ctx, conj, config)
}

/// Greedily mark the variables needed to satisfy every clause under
/// `model`; unmarked variables are don't-cares whose truth value the
/// skeleton never relies on. Two passes let later clauses reuse variables
/// marked by earlier ones.
pub(crate) fn prime_implicant(cnf: &Cnf, model: &[bool]) -> Vec<bool> {
    let mut needed = vec![false; model.len()];
    for _ in 0..2 {
        for clause in &cnf.clauses {
            mark_clause(clause, model, &mut needed);
        }
    }
    needed
}

/// [`prime_implicant`] over an explicit clause subset — the incremental
/// solver's per-query cone, where clauses belonging to earlier queries
/// need no justification (every permanent clause is satisfiable
/// standalone or a valid theory lemma).
pub(crate) fn prime_implicant_over(cnf: &Cnf, model: &[bool], clauses: &[usize]) -> Vec<bool> {
    let mut needed = vec![false; model.len()];
    for _ in 0..2 {
        for &i in clauses {
            mark_clause(&cnf.clauses[i], model, &mut needed);
        }
    }
    needed
}

fn mark_clause(clause: &[Lit], model: &[bool], needed: &mut [bool]) {
    if clause
        .iter()
        .any(|l| model[l.var] == l.positive && needed[l.var])
    {
        return;
    }
    if let Some(l) = clause.iter().find(|l| model[l.var] == l.positive) {
        needed[l.var] = true;
    }
}

/// Forbid this exact combination of theory literals, returning the
/// blocking clause so a persistent SAT solver can mirror it. The clause
/// is a theory lemma (valid in every model of the theories), so it is
/// safe to keep forever — including across the incremental solver's
/// later queries under different assumptions.
pub(crate) fn block(low: &mut Lowering, lits: &[Lit]) -> Vec<Lit> {
    let clause: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
    low.cnf.add_clause(clause.clone());
    clause
}

/// Deletion-based unsat-core minimization for arithmetic conflicts: the
/// smaller the blocking clause, the fewer SAT+theory iterations the lazy
/// loop needs (a ~100-literal blocking clause barely prunes anything).
fn minimize_arith_core(
    vars: &[arith::VarInfo],
    cons: &[Constraint],
    lits: &[Lit],
    limits: Limits,
) -> Vec<Lit> {
    let mut keep: Vec<(Constraint, Lit)> = cons.iter().cloned().zip(lits.iter().copied()).collect();
    let mut i = 0;
    while i < keep.len() {
        let trial: Vec<Constraint> = keep
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, (c, _))| c.clone())
            .collect();
        if matches!(arith::solve(vars, &trial, limits), ArithResult::Unsat) {
            keep.remove(i);
        } else {
            i += 1;
        }
    }
    keep.into_iter().map(|(_, l)| l).collect()
}

/// Deletion-based unsat-core minimization for string conflicts.
fn minimize_str_core(items: &[(bool, (StrTerm, StrTerm), Lit)]) -> Vec<Lit> {
    let mut keep: Vec<(bool, (StrTerm, StrTerm), Lit)> = items.to_vec();
    let mut i = 0;
    while i < keep.len() {
        let eqs: Vec<(StrTerm, StrTerm)> = keep
            .iter()
            .enumerate()
            .filter(|(j, (eq, _, _))| *j != i && *eq)
            .map(|(_, (_, p, _))| p.clone())
            .collect();
        let neqs: Vec<(StrTerm, StrTerm)> = keep
            .iter()
            .enumerate()
            .filter(|(j, (eq, _, _))| *j != i && !*eq)
            .map(|(_, (_, p, _))| p.clone())
            .collect();
        if matches!(strings::solve(&eqs, &neqs), StrResult::Unsat) {
            keep.remove(i);
        } else {
            i += 1;
        }
    }
    keep.into_iter().map(|(_, _, l)| l).collect()
}

/// Walk the DAG collecting `Select` nodes grouped by array variable, then
/// conjoin pairwise congruence axioms with the original assertion.
fn add_select_congruence(ctx: &mut Ctx, root: TermId) -> TermId {
    // BTreeMap: axiom order must not depend on hash iteration order, or
    // identical queries could take different search paths and return
    // different models — the verdict cache and the deterministic parallel
    // scheduler both rely on solve being a pure function of the formula.
    let mut selects: BTreeMap<TermId, Vec<TermId>> = BTreeMap::new();
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        match ctx.kind(t).clone() {
            TermKind::Select(arr, idx) => {
                debug_assert!(matches!(ctx.kind(arr), TermKind::Var(_)));
                let indexes = selects.entry(arr).or_default();
                if !indexes.contains(&idx) {
                    indexes.push(idx);
                }
                stack.push(idx);
            }
            TermKind::Add(a, b)
            | TermKind::Sub(a, b)
            | TermKind::Cmp(_, a, b)
            | TermKind::Eq(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            TermKind::Neg(a) | TermKind::MulConst(_, a) | TermKind::Not(a) => stack.push(a),
            TermKind::And(parts) | TermKind::Or(parts) => stack.extend(parts),
            TermKind::Store(a, i, v) => {
                stack.push(a);
                stack.push(i);
                stack.push(v);
            }
            TermKind::Var(_)
            | TermKind::BoolConst(_)
            | TermKind::NumConst(_)
            | TermKind::StrConst(_) => {}
        }
    }
    let mut axioms = Vec::new();
    for (arr, indexes) in selects {
        for i in 0..indexes.len() {
            for j in (i + 1)..indexes.len() {
                let (ii, ij) = (indexes[i], indexes[j]);
                let idx_eq = ctx.eq(ii, ij);
                let si = ctx.select(arr, ii);
                let sj = ctx.select(arr, ij);
                let sel_eq = ctx.eq(si, sj);
                axioms.push(ctx.implies(idx_eq, sel_eq));
            }
        }
    }
    if axioms.is_empty() {
        root
    } else {
        let ax = ctx.and(axioms);
        ctx.and([root, ax])
    }
}

fn build_model(
    ctx: &Ctx,
    low: &Lowering,
    bool_model: &[bool],
    arith_model: &[Rat],
    str_model: &HashMap<String, String>,
) -> Model {
    let mut values: BTreeMap<String, ModelValue> = BTreeMap::new();
    for (i, v) in low.num_vars.iter().enumerate() {
        let r = arith_model[i];
        let mv = if v.is_int {
            debug_assert!(r.is_integer(), "integer var with fractional model value");
            ModelValue::Int(r.floor() as i64)
        } else {
            ModelValue::Real(r.to_f64())
        };
        values.insert(v.name.clone(), mv);
    }
    for (name, s) in str_model {
        values.insert(name.clone(), ModelValue::Str(s.clone()));
    }
    for (i, atom) in low.atoms.iter().enumerate() {
        if let Atom::BoolVar(name) = atom {
            values.insert(name.clone(), ModelValue::Bool(bool_model[low.atom_vars[i]]));
        }
    }
    // Array reads: evaluate index terms under the partial model.
    let partial = Model::new(values.clone(), HashMap::new());
    let mut selects: HashMap<(String, ModelKey), bool> = HashMap::new();
    for (i, atom) in low.atoms.iter().enumerate() {
        if let Atom::Select { array, index } = atom {
            let name = match ctx.kind(*array) {
                TermKind::Var(n) => n.clone(),
                _ => unreachable!("selects expanded to array vars"),
            };
            let key_val = partial.eval(ctx, *index);
            if let Some(key) = ModelKey::from_value(&key_val) {
                selects.insert((name, key), bool_model[low.atom_vars[i]]);
            }
        }
    }
    Model::new(values, selects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn paper_example_sat() {
        // (syma + 1 != 8) ∧ (syma > 3) → SAT (Sec. III-B gives syma == 4).
        let mut ctx = Ctx::new();
        let a = ctx.var("syma", Sort::Int);
        let one = ctx.int(1);
        let sum = ctx.add(a, one);
        let eight = ctx.int(8);
        let ne = ctx.ne(sum, eight);
        let three = ctx.int(3);
        let gt = ctx.gt(a, three);
        let f = ctx.and([ne, gt]);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(m) => {
                let v = m.get_int("syma").unwrap();
                assert!(v > 3 && v + 1 != 8, "bad model value {v}");
                assert!(m.satisfies(&ctx, f));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_unsat() {
        // (syma + 1 != 8) ∧ (syma == 7) → UNSAT (Sec. III-B).
        let mut ctx = Ctx::new();
        let a = ctx.var("syma", Sort::Int);
        let one = ctx.int(1);
        let sum = ctx.add(a, one);
        let eight = ctx.int(8);
        let ne = ctx.ne(sum, eight);
        let seven = ctx.int(7);
        let eq = ctx.eq(a, seven);
        let f = ctx.and([ne, eq]);
        assert!(matches!(check(&mut ctx, f, &cfg()), SolveResult::Unsat));
    }

    #[test]
    fn disjunction_picks_a_branch() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let ten = ctx.int(10);
        let lt = ctx.lt(x, zero);
        let gt = ctx.gt(x, ten);
        let f = ctx.or([lt, gt]);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(m) => {
                let v = m.get_int("x").unwrap();
                assert!(!(0..=10).contains(&v));
                assert!(m.satisfies(&ctx, f));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_theory_integration() {
        let mut ctx = Ctx::new();
        let u = ctx.var("user", Sort::Str);
        let v = ctx.var("email", Sort::Str);
        let alice = ctx.str_const("alice");
        let e1 = ctx.eq(u, alice);
        let e2 = ctx.ne(u, v);
        let f = ctx.and([e1, e2]);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(m) => {
                assert_eq!(m.get_str("user"), Some("alice"));
                assert_ne!(m.get_str("email"), Some("alice"));
                assert!(m.satisfies(&ctx, f));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_conflict_unsat() {
        let mut ctx = Ctx::new();
        let u = ctx.var("u", Sort::Str);
        let a = ctx.str_const("a");
        let b = ctx.str_const("b");
        let e1 = ctx.eq(u, a);
        let e2 = ctx.eq(u, b);
        let f = ctx.and([e1, e2]);
        assert!(matches!(check(&mut ctx, f, &cfg()), SolveResult::Unsat));
    }

    #[test]
    fn mixed_theories_and_booleans() {
        // (flag → x ≥ 5) ∧ (¬flag → s = "no") ∧ x = 7 ∧ flag
        let mut ctx = Ctx::new();
        let flag = ctx.var("flag", Sort::Bool);
        let x = ctx.var("x", Sort::Int);
        let s = ctx.var("s", Sort::Str);
        let five = ctx.int(5);
        let ge = ctx.ge(x, five);
        let i1 = ctx.implies(flag, ge);
        let nf = ctx.not(flag);
        let no = ctx.str_const("no");
        let seq = ctx.eq(s, no);
        let i2 = ctx.implies(nf, seq);
        let seven = ctx.int(7);
        let xeq = ctx.eq(x, seven);
        let f = ctx.and([i1, i2, xeq, flag]);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(m) => {
                assert_eq!(m.get_int("x"), Some(7));
                assert_eq!(m.get("flag"), Some(&ModelValue::Bool(true)));
                assert!(m.satisfies(&ctx, f));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_store_then_read() {
        // read(write(m, k, true), k) must be true; read at другой key is free
        // but constrained false here.
        let mut ctx = Ctx::new();
        let m0 = ctx.array_var("m", Sort::Int);
        let k = ctx.var("k", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let tt = ctx.bool_const(true);
        let m1 = ctx.store(m0, k, tt);
        let rk = ctx.select(m1, k);
        let rj = ctx.select(m1, j);
        let nrj = ctx.not(rj);
        let f = ctx.and([rk, nrj]);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(model) => {
                // j must differ from k, otherwise rj would be true.
                assert_ne!(model.get_int("k"), model.get_int("j"));
                assert!(model.satisfies(&ctx, f));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_congruence_forces_equal_reads() {
        // i = j ∧ read(m, i) ∧ ¬read(m, j) is UNSAT by congruence.
        let mut ctx = Ctx::new();
        let m = ctx.array_var("m", Sort::Int);
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let eq = ctx.eq(i, j);
        let ri = ctx.select(m, i);
        let rj = ctx.select(m, j);
        let nrj = ctx.not(rj);
        let f = ctx.and([eq, ri, nrj]);
        assert!(matches!(check(&mut ctx, f, &cfg()), SolveResult::Unsat));
    }

    #[test]
    fn real_arithmetic() {
        // 0 < r < 1 is satisfiable over reals.
        let mut ctx = Ctx::new();
        let r = ctx.var("r", Sort::Real);
        let zero = ctx.real(Rat::int(0));
        let one = ctx.real(Rat::int(1));
        let c1 = ctx.lt(zero, r);
        let c2 = ctx.lt(r, one);
        let f = ctx.and([c1, c2]);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(m) => match m.get("r") {
                Some(ModelValue::Real(v)) => assert!(*v > 0.0 && *v < 1.0),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn int_gap_unsat_where_real_sat() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let c1 = ctx.lt(zero, x);
        let c2 = ctx.lt(x, one);
        let f = ctx.and([c1, c2]);
        assert!(matches!(check(&mut ctx, f, &cfg()), SolveResult::Unsat));
    }

    #[test]
    fn deep_nesting() {
        // ⋀_{i<6} (xᵢ < xᵢ₊₁) ∧ x₀ = 0 ∧ x₆ ≤ 6 → forces xᵢ = i.
        let mut ctx = Ctx::new();
        let xs: Vec<_> = (0..7)
            .map(|i| ctx.var(format!("x{i}"), Sort::Int))
            .collect();
        let mut parts = Vec::new();
        for w in xs.windows(2) {
            parts.push(ctx.lt(w[0], w[1]));
        }
        let zero = ctx.int(0);
        let six = ctx.int(6);
        parts.push(ctx.eq(xs[0], zero));
        parts.push(ctx.le(xs[6], six));
        let f = ctx.and(parts);
        match check(&mut ctx, f, &cfg()) {
            SolveResult::Sat(m) => {
                for (i, x) in xs.iter().enumerate() {
                    let _ = x;
                    assert_eq!(m.get_int(&format!("x{i}")), Some(i as i64));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_reflect_search_effort() {
        // UNSAT via an arithmetic conflict: the stats must show at least
        // one SAT call, one theory iteration, one arithmetic conflict,
        // and a non-empty minimized core.
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let c1 = ctx.lt(zero, x);
        let c2 = ctx.lt(x, one);
        let f = ctx.and([c1, c2]);
        let (res, stats) = check_with_stats(&mut ctx, f, &cfg());
        assert!(matches!(res, SolveResult::Unsat));
        assert!(stats.sat_calls >= 1);
        assert!(stats.theory_iters >= 1);
        assert!(stats.arith_conflicts >= 1);
        assert!(stats.core_lits >= 1);
        assert!(stats.max_core_lits >= 1);
        assert!(stats.max_core_lits <= stats.core_lits);

        // absorb() sums counters and maxes the core size.
        let mut total = SolverStats::default();
        total.absorb(stats);
        total.absorb(stats);
        assert_eq!(total.arith_conflicts, 2 * stats.arith_conflicts);
        assert_eq!(total.max_core_lits, stats.max_core_lits);
    }

    #[test]
    fn check_all_conjunction() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let two = ctx.int(2);
        let a1 = ctx.ge(x, two);
        let a2 = ctx.le(x, two);
        match check_all(&mut ctx, &[a1, a2], &cfg()) {
            SolveResult::Sat(m) => assert_eq!(m.get_int("x"), Some(2)),
            other => panic!("{other:?}"),
        }
    }
}

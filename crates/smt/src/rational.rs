//! Exact rational arithmetic for the linear-arithmetic theory solver.
//!
//! `Rat` is an always-normalized fraction of `i128`s. The Fourier–Motzkin
//! elimination in [`crate::arith`] multiplies coefficients pairwise, so exact
//! arithmetic is required — floats would make SAT/UNSAT answers unsound.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A normalized rational number (`den > 0`, `gcd(|num|, den) == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// The rational 0.
pub const ZERO: Rat = Rat { num: 0, den: 1 };
/// The rational 1.
pub const ONE: Rat = Rat { num: 1, den: 1 };

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs()
}

impl Rat {
    /// Construct `num/den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics when `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Approximate a finite `f64` (used only to import float constants
    /// from the concolic layer; denominators are powers of two).
    pub fn from_f64(f: f64) -> Rat {
        assert!(f.is_finite(), "cannot represent non-finite float");
        // Scale by 2^20 — plenty for the currency/quantity values the
        // workloads use, without risking i128 overflow in FM pivots.
        const SCALE: i128 = 1 << 20;
        Rat::new((f * SCALE as f64).round() as i128, SCALE)
    }

    /// Numerator (after normalization).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether the value is a whole number.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Largest integer ≤ self.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer ≥ self.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rat {
        Rat::new(self.den, self.num)
    }

    /// Convert to `f64` (for model output).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Midpoint of two rationals.
    pub fn midpoint(a: Rat, b: Rat) -> Rat {
        (a + b) * Rat::new(1, 2)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, o: Rat) -> Rat {
        assert!(!o.is_zero(), "division by zero rational");
        Rat::new(self.num * o.den, self.den * o.num)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering_and_rounding() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < ZERO);
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn from_f64_roundtrip() {
        assert_eq!(Rat::from_f64(0.5), Rat::new(1, 2));
        assert_eq!(Rat::from_f64(3.0), Rat::int(3));
        assert!((Rat::from_f64(0.1).to_f64() - 0.1).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn midpoint_between() {
        let m = Rat::midpoint(Rat::int(1), Rat::int(2));
        assert!(Rat::int(1) < m && m < Rat::int(2));
    }

    proptest! {
        #[test]
        fn add_commutes(a in -1000i128..1000, b in 1i128..50, c in -1000i128..1000, d in 1i128..50) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y, y + x);
            prop_assert_eq!((x - y) + y, x);
        }

        #[test]
        fn ordering_consistent_with_f64(a in -1000i128..1000, b in 1i128..50, c in -1000i128..1000, d in 1i128..50) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() <= y.to_f64());
            }
        }

        #[test]
        fn floor_ceil_bracket(a in -10000i128..10000, b in 1i128..100) {
            let x = Rat::new(a, b);
            prop_assert!(Rat::int(x.floor() as i64) <= x);
            prop_assert!(x <= Rat::int(x.ceil() as i64));
            prop_assert!(x.ceil() - x.floor() <= 1);
        }
    }
}

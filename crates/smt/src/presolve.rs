//! Tier 1 of the tiered solving pipeline: a sound abstract pre-solver.
//!
//! [`presolve`] decides many of the analyzer's queries without ever
//! touching CNF lowering or the DPLL loop, by combining two cheap
//! abstract domains over the conjunctive skeleton of the formula:
//!
//! * **difference bounds** — every unit-coefficient numeric atom
//!   (`x − y ⋈ c`, `x ⋈ c`, and equalities, which contribute both
//!   directions) becomes an edge in a constraint graph with a designated
//!   zero node; Bellman–Ford either finds a negative cycle (definite
//!   UNSAT) or yields potentials that double as a candidate assignment.
//!   Interval bounds are exactly the zero-node edges, and strict bounds
//!   between integer variables are tightened to closed integer bounds
//!   first, so pure-integer contradictions like `x < 3 ∧ x > 2` are
//!   caught.
//! * **equality congruence** — string and boolean literals go through a
//!   union–find (strings reuse [`crate::strings::solve`]); a class pinned
//!   to two different literals, or a disequality inside one class, is
//!   definite UNSAT.
//!
//! The two verdicts have very different soundness arguments:
//!
//! * **UNSAT** is claimed only from constraints *implied by* the formula
//!   (the top-level conjuncts, never disjunction arms), after
//!   satisfiability-preserving tightenings. Unsatisfiability of an
//!   implied subset proves unsatisfiability of the whole. The solver
//!   wiring additionally cross-checks every UNSAT claim against the full
//!   solver under `debug_assertions`.
//! * **SAT** is claimed only when the constructed candidate assignment
//!   *evaluates the original formula to true* ([`Model::satisfies`]).
//!   The model is the proof, so this gate is unconditional — no
//!   agreement check needed, and it lets the pre-solver handle formulas
//!   beyond the pure-conjunctive fragment: each disjunctive conjunct is
//!   satisfied by enumerating a bounded number of arm selections
//!   ([`MAX_COMBOS`]) and letting the gate reject bad guesses.
//!
//! Anything else falls through as [`PresolveResult::Unknown`] and goes to
//! the full solver. See DESIGN.md ("Tier-1 soundness") for why never
//! claiming UNSAT on a SAT formula is the safety invariant of the whole
//! fast path.

use crate::model::{Model, ModelKey, ModelValue};
use crate::rational::{Rat, ZERO};
use crate::strings::{self, StrResult, StrTerm};
use crate::term::{CmpKind, Ctx, Sort, TermId, TermKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Verdict of the abstract pre-solver.
#[derive(Debug, Clone)]
pub enum PresolveResult {
    /// Definitely satisfiable; the model evaluates the formula to true.
    Sat(Model),
    /// Definitely unsatisfiable (an implied constraint subset is).
    Unsat,
    /// Could not decide cheaply — fall through to the full solver.
    Unknown,
}

/// Cap on disjunction-arm selections tried for a SAT witness. Keeps the
/// pre-solver linear-ish on formulas with many multi-arm conflict
/// conditions; anything past the cap falls through to the full solver.
pub const MAX_COMBOS: usize = 64;

/// Pre-solve `assertion`. Never builds terms, so the context is shared.
pub fn presolve(ctx: &Ctx, assertion: TermId) -> PresolveResult {
    let mut lits = Lits::default();
    let mut disjs: Vec<Vec<(TermId, bool)>> = Vec::new();
    collect(ctx, assertion, false, &mut lits, &mut Some(&mut disjs));

    // Definite-UNSAT pass over the implied conjunctive skeleton.
    let base = match solve_lits(ctx, &lits) {
        None => return PresolveResult::Unsat,
        Some(c) => c,
    };

    let vars = VarSets::collect(ctx, assertion);

    // Definite-SAT pass 1: greedy arm selection. Walk the disjunctions in
    // order, asserting the first arm whose literals keep the accumulated
    // set solvable; scales to formulas with many disjunctive conjuncts
    // where exhaustive combination enumeration cannot.
    {
        let mut chosen = lits.clone();
        let mut solvable = true;
        for arms in &disjs {
            let picked = arms.iter().find_map(|&(arm, arm_neg)| {
                let mut with_arm = chosen.clone();
                collect(ctx, arm, arm_neg, &mut with_arm, &mut None);
                solve_lits(ctx, &with_arm).map(|_| with_arm)
            });
            match picked {
                Some(with_arm) => chosen = with_arm,
                None => {
                    solvable = false;
                    break;
                }
            }
        }
        if solvable {
            if let Some(cand) = solve_lits(ctx, &chosen) {
                if let Some(model) = build_model(ctx, &vars, &cand) {
                    if model.satisfies(ctx, assertion) {
                        return PresolveResult::Sat(model);
                    }
                }
            }
        }
    }

    // Definite-SAT pass 2: bounded exhaustive arm enumeration (mixed
    // radix over the arm choices), for small formulas where the greedy
    // order picks a dead arm early.
    let total: usize = disjs
        .iter()
        .map(|arms| arms.len().max(1))
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .unwrap_or(usize::MAX);
    let attempts = total.min(MAX_COMBOS);
    for combo in 0..attempts {
        let cand = if disjs.is_empty() {
            Some(base.clone())
        } else {
            let mut chosen = lits.clone();
            let mut rest = combo;
            for arms in &disjs {
                let n = arms.len().max(1);
                let (pick, pick_neg) = arms[rest % n];
                rest /= n;
                collect(ctx, pick, pick_neg, &mut chosen, &mut None);
            }
            solve_lits(ctx, &chosen)
        };
        if let Some(cand) = cand {
            if let Some(model) = build_model(ctx, &vars, &cand) {
                if model.satisfies(ctx, assertion) {
                    return PresolveResult::Sat(model);
                }
            }
        }
        if disjs.is_empty() {
            break;
        }
    }
    PresolveResult::Unknown
}

// ---- literal collection ----------------------------------------------

/// One side of a simple numeric disequality (for model repair).
#[derive(Debug, Clone, Copy)]
enum DiseqSide {
    Var(TermId),
    Const(Rat),
}

/// A parsed numeric constraint `Σ coeffs·var + constant ≤ 0` (`< 0` when
/// strict).
#[derive(Debug, Clone)]
struct LinCon {
    coeffs: BTreeMap<TermId, Rat>,
    constant: Rat,
    strict: bool,
}

/// Recognized literals of the conjunctive skeleton.
#[derive(Debug, Clone, Default)]
struct Lits {
    cons: Vec<LinCon>,
    diseqs: Vec<(DiseqSide, DiseqSide)>,
    str_eqs: Vec<(StrTerm, StrTerm)>,
    str_neqs: Vec<(StrTerm, StrTerm)>,
    bools: Vec<(String, bool)>,
    /// Asserted array-membership literals `(array, index, polarity)`;
    /// resolved against the scalar candidate during model assembly.
    sels: Vec<(TermId, TermId, bool)>,
    ground_false: bool,
}

/// Classify one conjunct (under `neg` polarity) into `lits`; negation is
/// pushed inward (De Morgan), so `¬(a ∨ b)` contributes both negated
/// arms as literals. Disjunctive conjuncts — `Or` under positive
/// polarity, `And` under negative — go to `disjs` when provided (the
/// base pass) and are ignored inside arm expansion (`None`); the
/// satisfies() gate covers whatever is skipped.
fn collect(
    ctx: &Ctx,
    t: TermId,
    neg: bool,
    lits: &mut Lits,
    disjs: &mut Option<&mut Vec<Vec<(TermId, bool)>>>,
) {
    match ctx.kind(t) {
        TermKind::BoolConst(b) if *b == neg => lits.ground_false = true,
        TermKind::BoolConst(_) => {}
        TermKind::Var(name) if ctx.sort(t) == &Sort::Bool => {
            lits.bools.push((name.clone(), !neg));
        }
        TermKind::Not(inner) => collect(ctx, *inner, !neg, lits, disjs),
        TermKind::And(parts) => {
            if neg {
                // ¬(p ∧ q) ⇔ ¬p ∨ ¬q — a disjunction over negated parts.
                if let Some(d) = disjs {
                    d.push(parts.iter().map(|&p| (p, true)).collect());
                }
            } else {
                for p in parts.clone() {
                    collect(ctx, p, false, lits, disjs);
                }
            }
        }
        TermKind::Or(arms) => {
            if neg {
                // ¬(p ∨ q) ⇔ ¬p ∧ ¬q — both negated arms are implied.
                for p in arms.clone() {
                    collect(ctx, p, true, lits, disjs);
                }
            } else if let Some(d) = disjs {
                d.push(arms.iter().map(|&p| (p, false)).collect());
            }
        }
        TermKind::Select(arr, idx) => lits.sels.push((*arr, *idx, !neg)),
        TermKind::Cmp(kind, a, b) => {
            if neg {
                // ¬(a < b) ⇔ b ≤ a ; ¬(a ≤ b) ⇔ b < a.
                let flipped = match kind {
                    CmpKind::Lt => CmpKind::Le,
                    CmpKind::Le => CmpKind::Lt,
                };
                push_cmp(ctx, flipped, *b, *a, lits);
            } else {
                push_cmp(ctx, *kind, *a, *b, lits);
            }
        }
        TermKind::Eq(a, b) => {
            let (a, b) = (*a, *b);
            if neg {
                if ctx.sort(a).is_numeric() {
                    if let (Some(sa), Some(sb)) = (num_side(ctx, a), num_side(ctx, b)) {
                        lits.diseqs.push((sa, sb));
                    }
                } else if let (Some(sa), Some(sb)) = (str_term(ctx, a), str_term(ctx, b)) {
                    lits.str_neqs.push((sa, sb));
                }
            } else if ctx.sort(a).is_numeric() {
                if let Some(d) = diff(ctx, a, b) {
                    lits.cons.push(LinCon {
                        coeffs: d.0.clone(),
                        constant: d.1,
                        strict: false,
                    });
                    lits.cons.push(LinCon {
                        coeffs: d.0.iter().map(|(&v, &c)| (v, -c)).collect(),
                        constant: -d.1,
                        strict: false,
                    });
                }
            } else if let (Some(sa), Some(sb)) = (str_term(ctx, a), str_term(ctx, b)) {
                lits.str_eqs.push((sa, sb));
            }
        }
        _ => {}
    }
}

fn push_cmp(ctx: &Ctx, kind: CmpKind, a: TermId, b: TermId, lits: &mut Lits) {
    if let Some((coeffs, constant)) = diff(ctx, a, b) {
        lits.cons.push(LinCon {
            coeffs,
            constant,
            strict: kind == CmpKind::Lt,
        });
    }
}

/// Linearize `a − b` as `(coeffs, constant)`, dropping zero coefficients.
fn diff(ctx: &Ctx, a: TermId, b: TermId) -> Option<(BTreeMap<TermId, Rat>, Rat)> {
    let mut coeffs = BTreeMap::new();
    let mut constant = ZERO;
    linearize(ctx, a, Rat::int(1), &mut coeffs, &mut constant)?;
    linearize(ctx, b, Rat::int(-1), &mut coeffs, &mut constant)?;
    coeffs.retain(|_, c| !c.is_zero());
    Some((coeffs, constant))
}

fn linearize(
    ctx: &Ctx,
    t: TermId,
    scale: Rat,
    coeffs: &mut BTreeMap<TermId, Rat>,
    constant: &mut Rat,
) -> Option<()> {
    match ctx.kind(t) {
        TermKind::NumConst(r) => {
            *constant = *constant + scale * *r;
            Some(())
        }
        TermKind::Var(_) if ctx.sort(t).is_numeric() => {
            let e = coeffs.entry(t).or_insert(ZERO);
            *e = *e + scale;
            Some(())
        }
        TermKind::Add(a, b) => {
            linearize(ctx, *a, scale, coeffs, constant)?;
            linearize(ctx, *b, scale, coeffs, constant)
        }
        TermKind::Sub(a, b) => {
            linearize(ctx, *a, scale, coeffs, constant)?;
            linearize(ctx, *b, -scale, coeffs, constant)
        }
        TermKind::Neg(a) => linearize(ctx, *a, -scale, coeffs, constant),
        TermKind::MulConst(c, a) => linearize(ctx, *a, scale * *c, coeffs, constant),
        _ => None,
    }
}

fn num_side(ctx: &Ctx, t: TermId) -> Option<DiseqSide> {
    match ctx.kind(t) {
        TermKind::Var(_) => Some(DiseqSide::Var(t)),
        TermKind::NumConst(r) => Some(DiseqSide::Const(*r)),
        _ => None,
    }
}

fn str_term(ctx: &Ctx, t: TermId) -> Option<StrTerm> {
    match ctx.kind(t) {
        TermKind::Var(n) if ctx.sort(t) == &Sort::Str => Some(StrTerm::Var(n.clone())),
        TermKind::StrConst(s) => Some(StrTerm::Const(s.clone())),
        _ => None,
    }
}

// ---- constraint solving ----------------------------------------------

/// Candidate assignment pieces for one literal set.
#[derive(Debug, Clone)]
struct Candidate {
    num: HashMap<TermId, Rat>,
    strs: HashMap<String, String>,
    bools: HashMap<String, bool>,
    sels: Vec<(TermId, TermId, bool)>,
}

/// Decide the recognized literals: `None` means definitely UNSAT (every
/// constraint used is implied by the input), `Some` carries a candidate
/// assignment for the recognized part.
fn solve_lits(ctx: &Ctx, lits: &Lits) -> Option<Candidate> {
    if lits.ground_false {
        return None;
    }

    // Boolean literals: a variable forced both ways is a contradiction.
    let mut bools: HashMap<String, bool> = HashMap::new();
    for (name, val) in &lits.bools {
        if *bools.entry(name.clone()).or_insert(*val) != *val {
            return None;
        }
    }

    // String congruence (union–find with pinned literals).
    let strs = match strings::solve(&lits.str_eqs, &lits.str_neqs) {
        StrResult::Unsat => return None,
        StrResult::Sat(m) => m,
    };

    // Implied numeric skeleton: UNSAT here is UNSAT of the formula.
    let (mut num, mut constrained) = dbm_solve(ctx, &lits.cons)?;

    // Disequality repair, round 1: violated diseqs between constrained
    // integer sides are re-solved with an integer split (`a ≤ b − 1`,
    // then `b ≤ a − 1`) added to the difference-bounds system. A split
    // that fails both ways just leaves the diseq violated for the gate
    // to reject — it is *not* UNSAT, because earlier splits were choices.
    let mut extra = lits.cons.clone();
    let mut resolved = true;
    while resolved {
        resolved = false;
        for (a, b) in &lits.diseqs {
            if side_value(a, &num) != side_value(b, &num) {
                continue;
            }
            let (int_a, int_b) = (side_is_int(ctx, a), side_is_int(ctx, b));
            let both_pinned = matches!(
                (a, b),
                (DiseqSide::Var(_) | DiseqSide::Const(_), DiseqSide::Var(_))
                    | (DiseqSide::Var(_), DiseqSide::Const(_))
            ) && side_constrained(a, &constrained)
                && side_constrained(b, &constrained);
            if !(both_pinned && int_a && int_b) {
                continue;
            }
            for (lo, hi) in [(a, b), (b, a)] {
                let split = split_con(lo, hi);
                extra.push(split);
                if let Some((n2, c2)) = dbm_solve(ctx, &extra) {
                    num = n2;
                    constrained = c2;
                    resolved = true;
                    break;
                }
                extra.pop();
            }
            if resolved {
                break; // re-scan: the new potentials move other diseqs
            }
        }
    }

    // Disequality repair, round 2: unconstrained variables get distinct
    // fresh values. Deterministic: literals are processed in input order
    // and fresh values count down from −1.
    let mut used: HashSet<Rat> = num.values().copied().collect();
    for (a, b) in &lits.diseqs {
        used.insert(side_value(a, &num));
        used.insert(side_value(b, &num));
    }
    let mut fresh = Rat::int(-1);
    let mut next_fresh = |used: &mut HashSet<Rat>| {
        while used.contains(&fresh) {
            fresh = fresh - Rat::int(1);
        }
        used.insert(fresh);
        fresh
    };
    for (a, b) in &lits.diseqs {
        if side_value(a, &num) != side_value(b, &num) {
            continue;
        }
        let free = match (a, b) {
            (DiseqSide::Var(v), _) if !constrained.contains(v) => Some(*v),
            (_, DiseqSide::Var(v)) if !constrained.contains(v) => Some(*v),
            _ => None,
        };
        // When both sides stay pinned to the same value the diseq is not
        // repairable here; the satisfies() gate rejects the candidate.
        // UNSAT may not be claimed, because propagation was partial.
        if let Some(v) = free {
            let val = next_fresh(&mut used);
            num.insert(v, val);
        }
    }

    Some(Candidate {
        num,
        strs,
        bools,
        sels: lits.sels.clone(),
    })
}

/// Build the difference-bounds graph for `cons` and run Bellman–Ford.
/// `None` means the unit-shaped subset is unsatisfiable; `Some` carries
/// the potentials (a candidate assignment) and the set of variables that
/// actually appeared in edges.
#[allow(clippy::type_complexity)]
fn dbm_solve(ctx: &Ctx, cons: &[LinCon]) -> Option<(HashMap<TermId, Rat>, HashSet<TermId>)> {
    // Node 0 is the zero reference; constraints that are not
    // unit-difference shaped are skipped (they only weaken the SAT
    // candidate, never the UNSAT claim).
    let mut node_of: HashMap<TermId, usize> = HashMap::new();
    let mut nodes: Vec<TermId> = Vec::new();
    // Edge (from, to, w): value(to) − value(from) ≤ w.
    let mut edges: Vec<(usize, usize, Rat)> = Vec::new();
    for con in cons {
        match dbm_edge(ctx, con, &mut node_of, &mut nodes) {
            DbmEdge::Edge(f, t, w) => edges.push((f, t, w)),
            DbmEdge::GroundFalse => return None,
            DbmEdge::Skip => {}
        }
    }

    // Bellman–Ford from a virtual source (all distances start at zero):
    // an improvement in round |V| means a negative cycle ⇒ UNSAT.
    let n = nodes.len() + 1;
    let mut dist = vec![ZERO; n];
    for round in 0..n {
        let mut changed = false;
        for &(f, t, w) in &edges {
            let cand = dist[f] + w;
            if cand < dist[t] {
                dist[t] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n - 1 {
            return None;
        }
    }

    // Potentials relative to the zero node are a candidate assignment.
    let zero = dist[0];
    let mut num: HashMap<TermId, Rat> = HashMap::new();
    let mut constrained: HashSet<TermId> = HashSet::new();
    for (i, &v) in nodes.iter().enumerate() {
        num.insert(v, dist[i + 1] - zero);
        constrained.insert(v);
    }
    Some((num, constrained))
}

fn side_is_int(ctx: &Ctx, s: &DiseqSide) -> bool {
    match s {
        DiseqSide::Var(v) => ctx.sort(*v) == &Sort::Int,
        DiseqSide::Const(c) => c.is_integer(),
    }
}

fn side_constrained(s: &DiseqSide, constrained: &HashSet<TermId>) -> bool {
    match s {
        DiseqSide::Var(v) => constrained.contains(v),
        DiseqSide::Const(_) => true,
    }
}

/// The integer split `lo ≤ hi − 1` as a [`LinCon`] (`lo − hi + 1 ≤ 0`).
fn split_con(lo: &DiseqSide, hi: &DiseqSide) -> LinCon {
    let mut coeffs = BTreeMap::new();
    let mut constant = Rat::int(1);
    match lo {
        DiseqSide::Var(v) => {
            let e = coeffs.entry(*v).or_insert(ZERO);
            *e = *e + Rat::int(1);
        }
        DiseqSide::Const(c) => constant = constant + *c,
    }
    match hi {
        DiseqSide::Var(v) => {
            let e = coeffs.entry(*v).or_insert(ZERO);
            *e = *e - Rat::int(1);
        }
        DiseqSide::Const(c) => constant = constant - *c,
    }
    coeffs.retain(|_, c| !c.is_zero());
    LinCon {
        coeffs,
        constant,
        strict: false,
    }
}

enum DbmEdge {
    Edge(usize, usize, Rat),
    GroundFalse,
    Skip,
}

/// Convert `Σ coeffs·var + c ⋈ 0` to a difference-bounds edge when it has
/// unit shape after scaling; apply integer tightening so strict bounds
/// between integers become closed (and strict bounds elsewhere relax to
/// closed, which is sound for UNSAT and double-checked by the SAT gate).
fn dbm_edge(
    ctx: &Ctx,
    con: &LinCon,
    node_of: &mut HashMap<TermId, usize>,
    nodes: &mut Vec<TermId>,
) -> DbmEdge {
    let node = |v: TermId, node_of: &mut HashMap<TermId, usize>, nodes: &mut Vec<TermId>| {
        *node_of.entry(v).or_insert_with(|| {
            nodes.push(v);
            nodes.len() // node ids are 1-based; 0 is the zero reference
        })
    };
    let vars: Vec<(TermId, Rat)> = con.coeffs.iter().map(|(&v, &c)| (v, c)).collect();
    // (to − from ≤ w) after normalization, plus whether every variable
    // involved has integer sort (enabling tightening).
    let (from, to, mut w, all_int) = match vars.as_slice() {
        [] => {
            let violated = if con.strict {
                con.constant >= ZERO
            } else {
                con.constant > ZERO
            };
            return if violated {
                DbmEdge::GroundFalse
            } else {
                DbmEdge::Skip
            };
        }
        [(v, c)] => {
            // c·v + k ⋈ 0 ⇔ v ≤ −k/c (c > 0) or v ≥ −k/c (c < 0).
            let bound = -con.constant / *c;
            let is_int = ctx.sort(*v) == &Sort::Int;
            let vn = node(*v, node_of, nodes);
            if c.signum() > 0 {
                (0, vn, bound, is_int)
            } else {
                (vn, 0, -bound, is_int)
            }
        }
        [(v1, c1), (v2, c2)] if *c1 == -*c2 => {
            // c·(v1 − v2) + k ⋈ 0 ⇔ v1 − v2 ≤ −k/c (c > 0) etc.
            let bound = -con.constant / *c1;
            let all_int = ctx.sort(*v1) == &Sort::Int && ctx.sort(*v2) == &Sort::Int;
            let n1 = node(*v1, node_of, nodes);
            let n2 = node(*v2, node_of, nodes);
            if c1.signum() > 0 {
                (n2, n1, bound, all_int)
            } else {
                (n1, n2, -bound, all_int)
            }
        }
        _ => return DbmEdge::Skip,
    };
    if all_int {
        // Integer difference: strict `< w` ⇔ `≤ ⌈w⌉ − 1`; closed with a
        // fractional bound tightens to `≤ ⌊w⌋`. Both preserve the integer
        // solution set exactly.
        if con.strict {
            w = Rat::int((w.ceil() - 1) as i64);
        } else if !w.is_integer() {
            w = Rat::int(w.floor() as i64);
        }
    }
    DbmEdge::Edge(from, to, w)
}

fn side_value(s: &DiseqSide, num: &HashMap<TermId, Rat>) -> Rat {
    match s {
        DiseqSide::Var(v) => num.get(v).copied().unwrap_or(ZERO),
        DiseqSide::Const(c) => *c,
    }
}

// ---- model assembly --------------------------------------------------

/// Every variable mentioned in the formula, grouped for model building.
struct VarSets {
    nums: Vec<(TermId, String, Sort)>,
    strs: Vec<String>,
    bools: Vec<String>,
    str_consts: HashSet<String>,
}

impl VarSets {
    fn collect(ctx: &Ctx, t: TermId) -> VarSets {
        let mut out = VarSets {
            nums: Vec::new(),
            strs: Vec::new(),
            bools: Vec::new(),
            str_consts: HashSet::new(),
        };
        let mut seen = HashSet::new();
        out.walk(ctx, t, &mut seen);
        out.nums.sort_by(|a, b| a.1.cmp(&b.1));
        out.strs.sort();
        out.bools.sort();
        out
    }

    fn walk(&mut self, ctx: &Ctx, t: TermId, seen: &mut HashSet<TermId>) {
        if !seen.insert(t) {
            return;
        }
        match ctx.kind(t) {
            TermKind::Var(name) => match ctx.sort(t) {
                Sort::Int | Sort::Real => self.nums.push((t, name.clone(), ctx.sort(t).clone())),
                Sort::Str => self.strs.push(name.clone()),
                Sort::Bool => self.bools.push(name.clone()),
                Sort::Array(_) => {}
            },
            TermKind::StrConst(s) => {
                self.str_consts.insert(s.clone());
            }
            TermKind::BoolConst(_) | TermKind::NumConst(_) => {}
            TermKind::Add(a, b) | TermKind::Sub(a, b) | TermKind::Select(a, b) => {
                self.walk(ctx, *a, seen);
                self.walk(ctx, *b, seen);
            }
            TermKind::Cmp(_, a, b) | TermKind::Eq(a, b) => {
                self.walk(ctx, *a, seen);
                self.walk(ctx, *b, seen);
            }
            TermKind::Neg(a) | TermKind::Not(a) | TermKind::MulConst(_, a) => {
                self.walk(ctx, *a, seen)
            }
            TermKind::And(parts) | TermKind::Or(parts) => {
                for p in parts.clone() {
                    self.walk(ctx, p, seen);
                }
            }
            TermKind::Store(a, i, v) => {
                self.walk(ctx, *a, seen);
                self.walk(ctx, *i, seen);
                self.walk(ctx, *v, seen);
            }
        }
    }
}

/// Assemble a total [`Model`] over every mentioned variable: constrained
/// numerics take their potentials, free strings get distinct fresh
/// values (the full solver's convention), everything else defaults.
/// Asserted select literals are then resolved by evaluating their index
/// under the scalar model; two literals pinning the same cell both ways
/// reject the candidate (`None`) — never UNSAT, because the collision
/// depends on candidate values, not on the formula.
fn build_model(ctx: &Ctx, vars: &VarSets, cand: &Candidate) -> Option<Model> {
    let mut values: BTreeMap<String, ModelValue> = BTreeMap::new();
    for (id, name, sort) in &vars.nums {
        let v = cand.num.get(id).copied().unwrap_or(ZERO);
        let mv = match sort {
            Sort::Int => ModelValue::Int(v.floor() as i64),
            _ => ModelValue::Real(v.to_f64()),
        };
        values.insert(name.clone(), mv);
    }
    let mut used: HashSet<String> = vars.str_consts.clone();
    used.extend(cand.strs.values().cloned());
    let mut fresh = 0usize;
    for name in &vars.strs {
        let v = match cand.strs.get(name) {
            Some(v) => v.clone(),
            None => loop {
                let c = format!("str!{fresh}");
                fresh += 1;
                if !used.contains(&c) {
                    used.insert(c.clone());
                    break c;
                }
            },
        };
        values.insert(name.clone(), ModelValue::Str(v));
    }
    for name in &vars.bools {
        let v = cand.bools.get(name).copied().unwrap_or(false);
        values.insert(name.clone(), ModelValue::Bool(v));
    }
    let scalar = Model::new(values.clone(), HashMap::new());

    let mut selects: HashMap<(String, ModelKey), bool> = HashMap::new();
    for (arr, idx, pol) in &cand.sels {
        let TermKind::Var(name) = ctx.kind(*arr) else {
            return None; // unexpandable select base — give up on this candidate
        };
        let key = ModelKey::from_value(&scalar.eval(ctx, *idx))?;
        match selects.entry((name.clone(), key)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(*pol);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if e.get() != pol {
                    return None;
                }
            }
        }
    }
    Some(Model::new(values, selects))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contradiction_is_unsat() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let three = ctx.int(3);
        let two = ctx.int(2);
        let lo = ctx.gt(x, two); // x > 2
        let hi = ctx.lt(x, three); // x < 3 — no integer fits
        let f = ctx.and([lo, hi]);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn real_interval_stays_open() {
        // The same bounds over reals are satisfiable (x = 2.5); the
        // relaxed DBM must not claim UNSAT, and the gate finds no integer
        // witness, so this falls through.
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Real);
        let three = ctx.int(3);
        let two = ctx.int(2);
        let lo = ctx.gt(x, two);
        let hi = ctx.lt(x, three);
        let f = ctx.and([lo, hi]);
        assert!(!matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn difference_cycle_is_unsat() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let z = ctx.var("z", Sort::Int);
        let c1 = ctx.lt(x, y);
        let c2 = ctx.lt(y, z);
        let c3 = ctx.lt(z, x);
        let f = ctx.and([c1, c2, c3]);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn equalities_propagate_through_congruence() {
        let mut ctx = Ctx::new();
        let a = ctx.var("a", Sort::Str);
        let b = ctx.var("b", Sort::Str);
        let lit1 = ctx.str_const("x");
        let lit2 = ctx.str_const("y");
        let e1 = ctx.eq(a, lit1);
        let e2 = ctx.eq(a, b);
        let e3 = ctx.eq(b, lit2);
        let f = ctx.and([e1, e2, e3]);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn conjunctive_sat_with_model() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let ten = ctx.int(10);
        let c1 = ctx.lt(x, y);
        let c2 = ctx.le(y, ten);
        let s = ctx.var("s", Sort::Str);
        let lit = ctx.str_const("hello");
        let c3 = ctx.eq(s, lit);
        let f = ctx.and([c1, c2, c3]);
        match presolve(&ctx, f) {
            PresolveResult::Sat(m) => {
                assert!(m.satisfies(&ctx, f));
                assert_eq!(m.get_str("s"), Some("hello"));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn diseq_repair_finds_distinct_values() {
        let mut ctx = Ctx::new();
        let a = ctx.var("id_a", Sort::Int);
        let b = ctx.var("id_b", Sort::Int);
        let d = ctx.ne(a, b);
        match presolve(&ctx, d) {
            PresolveResult::Sat(m) => assert!(m.satisfies(&ctx, d)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn disjunction_solved_by_arm_enumeration() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let one = ctx.int(1);
        let two = ctx.int(2);
        // (x = 1 ∨ x = 2) ∧ x > 1 — only the second arm works.
        let a1 = ctx.eq(x, one);
        let a2 = ctx.eq(x, two);
        let arm = ctx.or([a1, a2]);
        let gt = ctx.gt(x, one);
        let f = ctx.and([arm, gt]);
        match presolve(&ctx, f) {
            PresolveResult::Sat(m) => {
                assert!(m.satisfies(&ctx, f));
                assert_eq!(m.get_int("x"), Some(2));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn unsat_never_claimed_from_an_arm() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let one = ctx.int(1);
        let two = ctx.int(2);
        // x = 1 is inconsistent with x = 2, but only inside one arm — the
        // formula is SAT via the other arm.
        let a1 = ctx.eq(x, one);
        let a2 = ctx.ge(x, two);
        let arm = ctx.or([a1, a2]);
        let ge = ctx.ge(x, two);
        let f = ctx.and([arm, ge]);
        assert!(!matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn bool_conflict_is_unsat() {
        let mut ctx = Ctx::new();
        let p = ctx.var("p", Sort::Bool);
        let q = ctx.var("q", Sort::Bool);
        let np = ctx.not(p);
        // Distinct literal occurrences (p via q∧p) so tier-0 wouldn't
        // have already folded this to false.
        let qp = ctx.and([q, p]);
        let f = ctx.and([np, qp]);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn mixed_int_equality_to_fractional_const_unsat() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let half = ctx.real(Rat::new(7, 2));
        let f = ctx.eq(x, half);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn select_literals_get_assignments() {
        let mut ctx = Ctx::new();
        let arr = ctx.array_var("rows", Sort::Int);
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let si = ctx.select(arr, i);
        let sj = ctx.select(arr, j);
        let nsj = ctx.not(sj);
        let ne = ctx.ne(i, j);
        // rows[i] ∧ ¬rows[j] ∧ i ≠ j — needs select assignments keyed by
        // the candidate's index values.
        let f = ctx.and([si, nsj, ne]);
        match presolve(&ctx, f) {
            PresolveResult::Sat(m) => assert!(m.satisfies(&ctx, f)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_select_cell_is_not_unsat() {
        let mut ctx = Ctx::new();
        let arr = ctx.array_var("rows", Sort::Int);
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let si = ctx.select(arr, i);
        let sj = ctx.select(arr, j);
        let nsj = ctx.not(sj);
        // rows[i] ∧ ¬rows[j] with i and j both defaulting to the same
        // value: the candidate collides on one cell and must be rejected
        // without claiming UNSAT (i ≠ j would make it SAT).
        let f = ctx.and([si, nsj]);
        assert!(!matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn negated_disjunction_pushes_inward() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let one = ctx.int(1);
        let five = ctx.int(5);
        let lo = ctx.lt(x, one);
        let hi = ctx.gt(x, five);
        let out = ctx.or([lo, hi]);
        let inside = ctx.not(out); // 1 ≤ x ≤ 5
        let zero = ctx.int(0);
        let at_zero = ctx.eq(x, zero);
        let f = ctx.and([inside, at_zero]);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unsat));
    }

    #[test]
    fn constrained_diseq_repaired_by_integer_split() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        // Both variables are pinned to [0, 1] (same potentials), so only
        // an integer split can separate them.
        let c1 = ctx.ge(x, zero);
        let c2 = ctx.le(x, one);
        let c3 = ctx.ge(y, zero);
        let c4 = ctx.le(y, one);
        let ne = ctx.ne(x, y);
        let f = ctx.and([c1, c2, c3, c4, ne]);
        match presolve(&ctx, f) {
            PresolveResult::Sat(m) => {
                assert!(m.satisfies(&ctx, f));
                assert_ne!(m.get_int("x"), m.get_int("y"));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn many_disjunctions_solved_greedily() {
        // 2^10 arm combinations — far past MAX_COMBOS, so only the greedy
        // pass can find the witness.
        let mut ctx = Ctx::new();
        let one = ctx.int(1);
        let two = ctx.int(2);
        let mut parts = Vec::new();
        for i in 0..10 {
            let x = ctx.var(format!("x{i}"), Sort::Int);
            let a1 = ctx.eq(x, one);
            let a2 = ctx.eq(x, two);
            let arm = ctx.or([a1, a2]);
            let gt = ctx.gt(x, one);
            parts.push(arm);
            parts.push(gt);
        }
        let f = ctx.and(parts);
        match presolve(&ctx, f) {
            PresolveResult::Sat(m) => assert!(m.satisfies(&ctx, f)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn opaque_formula_falls_through() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let sum = ctx.add(x, y);
        let z = ctx.var("z", Sort::Int);
        // ¬(x + y = z) is not a recognized literal shape (the diseq side
        // is a compound term), the default candidate violates it, and the
        // gate rejects — fall through rather than guess.
        let f = ctx.ne(sum, z);
        assert!(matches!(presolve(&ctx, f), PresolveResult::Unknown));
    }
}

//! Lowering of term-level formulas to CNF over theory atoms (Tseitin).
//!
//! Boolean structure becomes SAT clauses with auxiliary variables; leaves
//! become *atoms*: linear constraints, string (dis)equalities, boolean
//! variables, and array reads. Numeric equalities are split into the pair
//! `a - b ≤ 0 ∧ b - a ≤ 0` so that the arithmetic theory only ever sees
//! convex constraints (a negated `≤` is a strict `<` of the negation).

use crate::arith::{Constraint, LinExpr, VarInfo};
use crate::rational::Rat;
use crate::sat::{Cnf, Lit};
use crate::strings::StrTerm;
use crate::term::{CmpKind, Ctx, Sort, TermId, TermKind};
use std::collections::HashMap;

/// A theory atom tied to one SAT variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// Linear constraint `expr ≤ 0` (`< 0` when strict).
    Lin(Constraint),
    /// String equality.
    StrEq(StrTerm, StrTerm),
    /// Free boolean variable.
    BoolVar(String),
    /// Array read `read(array, index)`; `array` is a variable term.
    Select {
        /// The array variable term.
        array: TermId,
        /// The index term.
        index: TermId,
    },
}

/// The result of lowering: CNF + atom table + theory variable table.
#[derive(Debug, Default)]
pub struct Lowering {
    /// The boolean skeleton.
    pub cnf: Cnf,
    /// Atoms, indexed by atom id.
    pub atoms: Vec<Atom>,
    /// SAT variable of each atom.
    pub atom_vars: Vec<usize>,
    atom_ids: HashMap<Atom, usize>,
    memo: HashMap<TermId, Lit>,
    /// Per numeric-equality term, the two `≤` half atoms it was split
    /// into. Those atoms carry no TermId of their own, so term-DAG
    /// walks (the incremental solver's cone computation) must recover
    /// their SAT variables through this side table.
    eq_aux: HashMap<TermId, [Lit; 2]>,
    /// Numeric theory variables.
    pub num_vars: Vec<VarInfo>,
    num_var_ids: HashMap<String, usize>,
    true_var: Option<usize>,
}

impl Lowering {
    /// New empty lowering.
    pub fn new() -> Self {
        Lowering::default()
    }

    fn true_lit(&mut self) -> Lit {
        let v = match self.true_var {
            Some(v) => v,
            None => {
                let v = self.cnf.new_var();
                self.cnf.add_unit(Lit::pos(v));
                self.true_var = Some(v);
                v
            }
        };
        Lit::pos(v)
    }

    fn atom_lit(&mut self, atom: Atom) -> Lit {
        if let Some(&id) = self.atom_ids.get(&atom) {
            return Lit::pos(self.atom_vars[id]);
        }
        let var = self.cnf.new_var();
        let id = self.atoms.len();
        self.atoms.push(atom.clone());
        self.atom_vars.push(var);
        self.atom_ids.insert(atom, id);
        Lit::pos(var)
    }

    /// The numeric theory-variable index for `name`.
    pub fn num_var(&mut self, name: &str, is_int: bool) -> usize {
        if let Some(&i) = self.num_var_ids.get(name) {
            return i;
        }
        let i = self.num_vars.len();
        self.num_vars.push(VarInfo {
            name: name.to_string(),
            is_int,
        });
        self.num_var_ids.insert(name.to_string(), i);
        i
    }

    /// Linearize a numeric term.
    ///
    /// # Panics
    /// Panics on non-linear or non-numeric structure (the analyzer only
    /// emits the linear fragment).
    pub fn linearize(&mut self, ctx: &Ctx, t: TermId) -> LinExpr {
        match ctx.kind(t).clone() {
            TermKind::Var(name) => {
                let is_int = ctx.sort(t) == &Sort::Int;
                LinExpr::var(self.num_var(&name, is_int))
            }
            TermKind::NumConst(r) => LinExpr::constant(r),
            TermKind::Add(a, b) => {
                let (ea, eb) = (self.linearize(ctx, a), self.linearize(ctx, b));
                ea.add(&eb)
            }
            TermKind::Sub(a, b) => {
                let (ea, eb) = (self.linearize(ctx, a), self.linearize(ctx, b));
                ea.sub(&eb)
            }
            TermKind::Neg(a) => self.linearize(ctx, a).scale(Rat::int(-1)),
            TermKind::MulConst(c, a) => self.linearize(ctx, a).scale(c),
            k => panic!("non-linear term in arithmetic position: {k:?}"),
        }
    }

    fn str_term(&self, ctx: &Ctx, t: TermId) -> StrTerm {
        match ctx.kind(t) {
            TermKind::Var(name) => StrTerm::Var(name.clone()),
            TermKind::StrConst(s) => StrTerm::Const(s.clone()),
            k => panic!("unsupported string term: {k:?}"),
        }
    }

    /// The literal `t` lowered to earlier, if any. Lets callers walk a
    /// term DAG and recover which SAT variables encode its subterms (the
    /// incremental solver's query-cone computation) without re-lowering.
    pub fn lowered_lit(&self, t: TermId) -> Option<Lit> {
        self.memo.get(&t).copied()
    }

    /// The two `≤` half atoms a numeric equality was split into, if `t`
    /// is one that has been lowered. Companion to [`Self::lowered_lit`]
    /// for cone walks: these atoms are reachable from no TermId.
    pub fn eq_aux_lits(&self, t: TermId) -> Option<[Lit; 2]> {
        self.eq_aux.get(&t).copied()
    }

    /// Lower a Bool-sorted term to a literal, adding Tseitin clauses.
    pub fn lower(&mut self, ctx: &Ctx, t: TermId) -> Lit {
        if let Some(&l) = self.memo.get(&t) {
            return l;
        }
        let lit = match ctx.kind(t).clone() {
            TermKind::BoolConst(true) => self.true_lit(),
            TermKind::BoolConst(false) => self.true_lit().negated(),
            TermKind::Var(name) => {
                debug_assert_eq!(ctx.sort(t), &Sort::Bool);
                self.atom_lit(Atom::BoolVar(name))
            }
            TermKind::Not(a) => self.lower(ctx, a).negated(),
            TermKind::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|&p| self.lower(ctx, p)).collect();
                let v = self.cnf.new_var();
                let mut long = vec![Lit::pos(v)];
                for l in &lits {
                    self.cnf.add_clause(vec![Lit::neg(v), *l]);
                    long.push(l.negated());
                }
                self.cnf.add_clause(long);
                Lit::pos(v)
            }
            TermKind::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|&p| self.lower(ctx, p)).collect();
                let v = self.cnf.new_var();
                let mut long = vec![Lit::neg(v)];
                for l in &lits {
                    self.cnf.add_clause(vec![Lit::pos(v), l.negated()]);
                    long.push(*l);
                }
                self.cnf.add_clause(long);
                Lit::pos(v)
            }
            TermKind::Cmp(kind, a, b) => {
                let (ea, eb) = (self.linearize(ctx, a), self.linearize(ctx, b));
                let expr = ea.sub(&eb);
                self.atom_lit(Atom::Lin(Constraint {
                    expr,
                    strict: kind == CmpKind::Lt,
                }))
            }
            TermKind::Eq(a, b) => match ctx.sort(a) {
                Sort::Int | Sort::Real => {
                    let (ea, eb) = (self.linearize(ctx, a), self.linearize(ctx, b));
                    let le1 = self.atom_lit(Atom::Lin(Constraint::le0(ea.sub(&eb))));
                    let le2 = self.atom_lit(Atom::Lin(Constraint::le0(eb.sub(&ea))));
                    self.eq_aux.insert(t, [le1, le2]);
                    let v = self.cnf.new_var();
                    self.cnf.add_clause(vec![Lit::neg(v), le1]);
                    self.cnf.add_clause(vec![Lit::neg(v), le2]);
                    self.cnf
                        .add_clause(vec![Lit::pos(v), le1.negated(), le2.negated()]);
                    Lit::pos(v)
                }
                Sort::Str => {
                    let (sa, sb) = (self.str_term(ctx, a), self.str_term(ctx, b));
                    self.atom_lit(Atom::StrEq(sa, sb))
                }
                Sort::Bool => {
                    let (la, lb) = (self.lower(ctx, a), self.lower(ctx, b));
                    let v = self.cnf.new_var();
                    // v ↔ (la ↔ lb)
                    self.cnf.add_clause(vec![Lit::neg(v), la.negated(), lb]);
                    self.cnf.add_clause(vec![Lit::neg(v), la, lb.negated()]);
                    self.cnf.add_clause(vec![Lit::pos(v), la, lb]);
                    self.cnf
                        .add_clause(vec![Lit::pos(v), la.negated(), lb.negated()]);
                    Lit::pos(v)
                }
                s => panic!("equality unsupported at sort {s}"),
            },
            TermKind::Select(arr, idx) => {
                debug_assert!(
                    matches!(ctx.kind(arr), TermKind::Var(_)),
                    "selects are expanded to array variables at build time"
                );
                self.atom_lit(Atom::Select {
                    array: arr,
                    index: idx,
                })
            }
            k => panic!("term not lowerable at Bool position: {k:?}"),
        };
        self.memo.insert(t, lit);
        lit
    }

    /// Assert a Bool-sorted term as a top-level fact.
    pub fn assert(&mut self, ctx: &Ctx, t: TermId) {
        let lit = self.lower(ctx, t);
        self.cnf.add_unit(lit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat;

    #[test]
    fn atoms_deduplicate() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let a = ctx.le(x, y);
        let b = ctx.le(x, y);
        let mut low = Lowering::new();
        let la = low.lower(&ctx, a);
        let lb = low.lower(&ctx, b);
        assert_eq!(la, lb);
        assert_eq!(low.atoms.len(), 1);
    }

    #[test]
    fn numeric_eq_splits_into_two_le() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let e = ctx.eq(x, y);
        let mut low = Lowering::new();
        low.assert(&ctx, e);
        let lin = low
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Lin(_)))
            .count();
        assert_eq!(lin, 2);
    }

    #[test]
    fn pure_boolean_formula_solves() {
        let mut ctx = Ctx::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let nb = ctx.not(b);
        let f = ctx.and([a, nb]);
        let mut low = Lowering::new();
        low.assert(&ctx, f);
        match sat::solve(&low.cnf) {
            sat::SatResult::Sat(m) => {
                // Find the atom vars for a and b.
                let var_of = |name: &str, low: &Lowering| {
                    low.atoms
                        .iter()
                        .position(|at| matches!(at, Atom::BoolVar(n) if n == name))
                        .map(|i| low.atom_vars[i])
                        .expect("atom exists")
                };
                assert!(m[var_of("a", &low)]);
                assert!(!m[var_of("b", &low)]);
            }
            _ => panic!("expected SAT"),
        }
    }

    #[test]
    fn contradiction_is_unsat_at_sat_level() {
        let mut ctx = Ctx::new();
        let a = ctx.var("a", Sort::Bool);
        let na = ctx.not(a);
        let f = ctx.and([a, na]);
        let mut low = Lowering::new();
        low.assert(&ctx, f);
        assert_eq!(sat::solve(&low.cnf), sat::SatResult::Unsat);
    }

    #[test]
    fn linearize_collects_terms() {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Int);
        let y = ctx.var("y", Sort::Int);
        let two_x = ctx.mul_const(Rat::int(2), x);
        let sum = ctx.add(two_x, y);
        let five = ctx.int(5);
        let e = ctx.sub(sum, five);
        let mut low = Lowering::new();
        let lin = low.linearize(&ctx, e);
        assert_eq!(lin.constant, Rat::int(-5));
        assert_eq!(lin.coeffs.len(), 2);
        assert_eq!(low.num_vars.len(), 2);
        assert!(low.num_vars.iter().all(|v| v.is_int));
    }

    #[test]
    #[should_panic(expected = "non-linear")]
    fn select_in_numeric_position_panics() {
        let mut ctx = Ctx::new();
        let arr = ctx.array_var("m", Sort::Int);
        let i = ctx.var("i", Sort::Int);
        let sel = ctx.select(arr, i);
        let mut low = Lowering::new();
        let _ = low.linearize(&ctx, sel);
    }
}

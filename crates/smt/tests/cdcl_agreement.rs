//! Property tests for the CDCL upgrade: on random lowered QF_LIA terms,
//! every knob of the ablation grid (CDCL vs legacy DPLL, incremental vs
//! fresh solving, each fast-path tier) must yield the same verdict, and
//! every SAT model must satisfy the original formula. A separate property
//! pins determinism: repeated solves of the same input are identical.

use proptest::prelude::*;
use weseer_smt::{
    check_tiered, Ctx, IncrementalSolver, SolveResult, SolverConfig, Sort, TermId, TierConfig,
};

#[derive(Debug, Clone)]
enum Atom {
    /// var[i] ⋈ const
    VarConst(usize, u8, i64),
    /// var[i] ⋈ var[j]
    VarVar(usize, u8, usize),
}

#[derive(Debug, Clone)]
enum Form {
    Atom(Atom),
    Not(Box<Form>),
    And(Box<Form>, Box<Form>),
    Or(Box<Form>, Box<Form>),
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0usize..3, 0u8..6, -3i64..=3).prop_map(|(v, op, c)| Atom::VarConst(v, op, c)),
        (0usize..3, 0u8..6, 0usize..3).prop_map(|(a, op, b)| Atom::VarVar(a, op, b)),
    ]
}

fn form_strategy() -> impl Strategy<Value = Form> {
    atom_strategy()
        .prop_map(Form::Atom)
        .prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| Form::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Form::Or(Box::new(a), Box::new(b))),
            ]
        })
}

fn build(ctx: &mut Ctx, f: &Form, vars: &[TermId; 3]) -> TermId {
    match f {
        Form::Atom(Atom::VarConst(v, op, c)) => {
            let rhs = ctx.int(*c);
            build_cmp(ctx, *op, vars[*v], rhs)
        }
        Form::Atom(Atom::VarVar(a, op, b)) => build_cmp(ctx, *op, vars[*a], vars[*b]),
        Form::Not(f) => {
            let inner = build(ctx, f, vars);
            ctx.not(inner)
        }
        Form::And(a, b) => {
            let (ta, tb) = (build(ctx, a, vars), build(ctx, b, vars));
            ctx.and([ta, tb])
        }
        Form::Or(a, b) => {
            let (ta, tb) = (build(ctx, a, vars), build(ctx, b, vars));
            ctx.or([ta, tb])
        }
    }
}

fn build_cmp(ctx: &mut Ctx, op: u8, a: TermId, b: TermId) -> TermId {
    match op {
        0 => ctx.eq(a, b),
        1 => ctx.ne(a, b),
        2 => ctx.lt(a, b),
        3 => ctx.le(a, b),
        4 => ctx.gt(a, b),
        _ => ctx.ge(a, b),
    }
}

fn mk_vars(ctx: &mut Ctx) -> [TermId; 3] {
    [
        ctx.var("x", Sort::Int),
        ctx.var("y", Sort::Int),
        ctx.var("z", Sort::Int),
    ]
}

fn verdict(r: &SolveResult) -> &'static str {
    match r {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat => "unsat",
        SolveResult::Unknown => "unknown",
    }
}

fn config_with(tiers: TierConfig) -> SolverConfig {
    SolverConfig {
        tiers,
        ..SolverConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every named ablation config — including `no_cdcl` (legacy DPLL
    /// core) and `no_incremental` — decides random QF_LIA formulas
    /// identically, and each SAT model satisfies the original term.
    #[test]
    fn ablation_grid_agrees_on_random_terms(f in form_strategy()) {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let term = build(&mut ctx, &f, &vars);
        let mut baseline: Option<&'static str> = None;
        for (name, tiers) in TierConfig::ablation_configs() {
            let (res, _) = check_tiered(&mut ctx, term, &config_with(tiers));
            if let SolveResult::Sat(m) = &res {
                prop_assert!(
                    m.satisfies(&ctx, term),
                    "config {} returned a bad model for {:?}",
                    name,
                    f
                );
            }
            match baseline {
                None => baseline = Some(verdict(&res)),
                Some(b) => prop_assert_eq!(
                    b,
                    verdict(&res),
                    "config {} diverged on {:?}",
                    name,
                    f
                ),
            }
        }
    }

    /// An incremental solver fed a sequence of random formulas agrees
    /// with fresh per-formula solves — the accumulated clause database
    /// (Tseitin definitions, congruence axioms, blocking clauses, learned
    /// clauses) must never change later verdicts.
    #[test]
    fn incremental_sequence_agrees_with_fresh_solves(
        forms in proptest::collection::vec(form_strategy(), 1..4)
    ) {
        let config = SolverConfig::default();
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let mut inc = IncrementalSolver::new(config.clone());
        for f in &forms {
            let term = build(&mut ctx, f, &vars);
            let (inc_res, _) = inc.check_tiered(&mut ctx, term);
            let (fresh_res, _) = check_tiered(&mut ctx, term, &config);
            prop_assert_eq!(
                verdict(&inc_res),
                verdict(&fresh_res),
                "incremental diverged from fresh on {:?}",
                f
            );
            if let SolveResult::Sat(m) = &inc_res {
                prop_assert!(m.satisfies(&ctx, term));
            }
        }
    }

    /// Determinism: the same formula solved twice (fresh contexts, fresh
    /// solvers) produces byte-identical verdicts and models.
    #[test]
    fn solving_is_deterministic(f in form_strategy()) {
        let run = |f: &Form| {
            let config = SolverConfig::default();
            let mut ctx = Ctx::new();
            let vars = mk_vars(&mut ctx);
            let term = build(&mut ctx, f, &vars);
            let (res, _) = check_tiered(&mut ctx, term, &config);
            format!("{res:?}")
        };
        prop_assert_eq!(run(&f), run(&f));
    }
}

//! Property test: on random small formulas over a finite integer domain,
//! the solver's verdict must match exhaustive enumeration, and SAT models
//! must actually satisfy the assertion.

use proptest::prelude::*;
use weseer_smt::term::TermKind;
use weseer_smt::{check, Ctx, SolveResult, SolverConfig, Sort, TermId};

const VARS: [&str; 3] = ["x", "y", "z"];
const DOMAIN: std::ops::RangeInclusive<i64> = -3..=3;

#[derive(Debug, Clone)]
enum Atom {
    /// var[i] ⋈ const
    VarConst(usize, u8, i64),
    /// var[i] ⋈ var[j]
    VarVar(usize, u8, usize),
}

#[derive(Debug, Clone)]
enum Form {
    Atom(Atom),
    Not(Box<Form>),
    And(Box<Form>, Box<Form>),
    Or(Box<Form>, Box<Form>),
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0usize..3, 0u8..6, -3i64..=3).prop_map(|(v, op, c)| Atom::VarConst(v, op, c)),
        (0usize..3, 0u8..6, 0usize..3).prop_map(|(a, op, b)| Atom::VarVar(a, op, b)),
    ]
}

fn form_strategy() -> impl Strategy<Value = Form> {
    atom_strategy()
        .prop_map(Form::Atom)
        .prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| Form::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Form::Or(Box::new(a), Box::new(b))),
            ]
        })
}

fn cmp(op: u8, a: i64, b: i64) -> bool {
    match op {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => a <= b,
        4 => a > b,
        _ => a >= b,
    }
}

fn eval(f: &Form, env: &[i64; 3]) -> bool {
    match f {
        Form::Atom(Atom::VarConst(v, op, c)) => cmp(*op, env[*v], *c),
        Form::Atom(Atom::VarVar(a, op, b)) => cmp(*op, env[*a], env[*b]),
        Form::Not(f) => !eval(f, env),
        Form::And(a, b) => eval(a, env) && eval(b, env),
        Form::Or(a, b) => eval(a, env) || eval(b, env),
    }
}

fn build(ctx: &mut Ctx, f: &Form, vars: &[TermId; 3]) -> TermId {
    match f {
        Form::Atom(Atom::VarConst(v, op, c)) => {
            let rhs = ctx.int(*c);
            build_cmp(ctx, *op, vars[*v], rhs)
        }
        Form::Atom(Atom::VarVar(a, op, b)) => build_cmp(ctx, *op, vars[*a], vars[*b]),
        Form::Not(f) => {
            let inner = build(ctx, f, vars);
            ctx.not(inner)
        }
        Form::And(a, b) => {
            let (ta, tb) = (build(ctx, a, vars), build(ctx, b, vars));
            ctx.and([ta, tb])
        }
        Form::Or(a, b) => {
            let (ta, tb) = (build(ctx, a, vars), build(ctx, b, vars));
            ctx.or([ta, tb])
        }
    }
}

fn build_cmp(ctx: &mut Ctx, op: u8, a: TermId, b: TermId) -> TermId {
    match op {
        0 => ctx.eq(a, b),
        1 => ctx.ne(a, b),
        2 => ctx.lt(a, b),
        3 => ctx.le(a, b),
        4 => ctx.gt(a, b),
        _ => ctx.ge(a, b),
    }
}

/// Constrain every variable to the brute-force domain so UNSAT agreement
/// is meaningful.
fn domain_constraint(ctx: &mut Ctx, vars: &[TermId; 3]) -> TermId {
    let lo = ctx.int(*DOMAIN.start());
    let hi = ctx.int(*DOMAIN.end());
    let mut parts = Vec::new();
    for &v in vars {
        parts.push(ctx.ge(v, lo));
        parts.push(ctx.le(v, hi));
    }
    ctx.and(parts)
}

fn model_value(ctx: &Ctx, model: &weseer_smt::Model, name: &str) -> i64 {
    let _ = ctx;
    model.get_int(name).unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn solver_matches_brute_force(f in form_strategy()) {
        let mut ctx = Ctx::new();
        let vars = [
            ctx.var(VARS[0], Sort::Int),
            ctx.var(VARS[1], Sort::Int),
            ctx.var(VARS[2], Sort::Int),
        ];
        let body = build(&mut ctx, &f, &vars);
        let dom = domain_constraint(&mut ctx, &vars);
        let assertion = ctx.and([body, dom]);

        let brute_sat = DOMAIN.clone().any(|x| {
            DOMAIN.clone().any(|y| DOMAIN.clone().any(|z| eval(&f, &[x, y, z])))
        });

        match check(&mut ctx, assertion, &SolverConfig::default()) {
            SolveResult::Sat(model) => {
                prop_assert!(brute_sat, "solver SAT but brute force disagrees: {f:?}");
                let env = [
                    model_value(&ctx, &model, "x"),
                    model_value(&ctx, &model, "y"),
                    model_value(&ctx, &model, "z"),
                ];
                prop_assert!(
                    eval(&f, &env),
                    "model {env:?} does not satisfy {f:?}"
                );
                for v in env {
                    prop_assert!(DOMAIN.contains(&v));
                }
            }
            SolveResult::Unsat => {
                prop_assert!(!brute_sat, "solver UNSAT but {f:?} is satisfiable");
            }
            SolveResult::Unknown => {
                // Resource limit: allowed, but should be rare on such
                // small formulas.
            }
        }
    }

    /// Hash-consing sanity: building the same formula twice yields the
    /// same term id, and double negation collapses.
    #[test]
    fn construction_is_deterministic(f in form_strategy()) {
        let mut ctx = Ctx::new();
        let vars = [
            ctx.var("x", Sort::Int),
            ctx.var("y", Sort::Int),
            ctx.var("z", Sort::Int),
        ];
        let a = build(&mut ctx, &f, &vars);
        let b = build(&mut ctx, &f, &vars);
        prop_assert_eq!(a, b);
        let na = ctx.not(a);
        let nna = ctx.not(na);
        prop_assert_eq!(nna, a);
        let _ = TermKind::BoolConst(true);
    }
}

//! Property tests for the tiered solving fast path: on random small
//! formulas, tier 0 (simplification) must preserve the full solver's
//! verdict, tier 1 (abstract pre-solve) must never contradict it, and the
//! tiered entry point must agree with the plain solver.

use proptest::prelude::*;
use weseer_smt::{
    check, check_tiered, presolve, simplify, Ctx, PresolveResult, SolveResult, SolverConfig, Sort,
    TermId,
};

#[derive(Debug, Clone)]
enum Atom {
    /// var[i] ⋈ const
    VarConst(usize, u8, i64),
    /// var[i] ⋈ var[j]
    VarVar(usize, u8, usize),
}

#[derive(Debug, Clone)]
enum Form {
    Atom(Atom),
    Not(Box<Form>),
    And(Box<Form>, Box<Form>),
    Or(Box<Form>, Box<Form>),
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0usize..3, 0u8..6, -3i64..=3).prop_map(|(v, op, c)| Atom::VarConst(v, op, c)),
        (0usize..3, 0u8..6, 0usize..3).prop_map(|(a, op, b)| Atom::VarVar(a, op, b)),
    ]
}

fn form_strategy() -> impl Strategy<Value = Form> {
    atom_strategy()
        .prop_map(Form::Atom)
        .prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| Form::Not(Box::new(f))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Form::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Form::Or(Box::new(a), Box::new(b))),
            ]
        })
}

fn build(ctx: &mut Ctx, f: &Form, vars: &[TermId; 3]) -> TermId {
    match f {
        Form::Atom(Atom::VarConst(v, op, c)) => {
            let rhs = ctx.int(*c);
            build_cmp(ctx, *op, vars[*v], rhs)
        }
        Form::Atom(Atom::VarVar(a, op, b)) => build_cmp(ctx, *op, vars[*a], vars[*b]),
        Form::Not(f) => {
            let inner = build(ctx, f, vars);
            ctx.not(inner)
        }
        Form::And(a, b) => {
            let (ta, tb) = (build(ctx, a, vars), build(ctx, b, vars));
            ctx.and([ta, tb])
        }
        Form::Or(a, b) => {
            let (ta, tb) = (build(ctx, a, vars), build(ctx, b, vars));
            ctx.or([ta, tb])
        }
    }
}

fn build_cmp(ctx: &mut Ctx, op: u8, a: TermId, b: TermId) -> TermId {
    match op {
        0 => ctx.eq(a, b),
        1 => ctx.ne(a, b),
        2 => ctx.lt(a, b),
        3 => ctx.le(a, b),
        4 => ctx.gt(a, b),
        _ => ctx.ge(a, b),
    }
}

fn mk_vars(ctx: &mut Ctx) -> [TermId; 3] {
    [
        ctx.var("x", Sort::Int),
        ctx.var("y", Sort::Int),
        ctx.var("z", Sort::Int),
    ]
}

/// Collapse a solver result to a three-way verdict for comparisons.
fn verdict(r: &SolveResult) -> &'static str {
    match r {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat => "unsat",
        SolveResult::Unknown => "unknown",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tier 0: the simplified formula has the same verdict as the
    /// original, and a model of the simplified form satisfies the
    /// original term (the rewrite is an equivalence, not a refinement).
    #[test]
    fn simplifier_preserves_verdicts(f in form_strategy()) {
        let config = SolverConfig::default();
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let original = build(&mut ctx, &f, &vars);
        let simplified = simplify(&mut ctx, original);

        let r_orig = check(&mut ctx, original, &config);
        let r_simp = check(&mut ctx, simplified, &config);
        prop_assert_eq!(
            verdict(&r_orig),
            verdict(&r_simp),
            "simplification changed the verdict of {:?}",
            f
        );
        if let SolveResult::Sat(model) = &r_simp {
            prop_assert!(
                model.satisfies(&ctx, original),
                "model of the simplified form does not satisfy the original {:?}",
                f
            );
        }
    }

    /// Tier 1: the abstract pre-solver is sound — a SAT answer carries a
    /// model of the assertion, an UNSAT answer never contradicts the full
    /// solver, and Unknown claims nothing.
    #[test]
    fn presolve_never_contradicts_full_solver(f in form_strategy()) {
        let config = SolverConfig::default();
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let assertion = build(&mut ctx, &f, &vars);

        match presolve(&ctx, assertion) {
            PresolveResult::Sat(model) => {
                prop_assert!(
                    model.satisfies(&ctx, assertion),
                    "presolve SAT model does not satisfy {:?}",
                    f
                );
                let full = check(&mut ctx, assertion, &config);
                prop_assert!(
                    verdict(&full) != "unsat",
                    "presolve said SAT but the full solver proves UNSAT: {f:?}"
                );
            }
            PresolveResult::Unsat => {
                let full = check(&mut ctx, assertion, &config);
                prop_assert!(
                    verdict(&full) != "sat",
                    "presolve said UNSAT but the full solver found a model: {f:?}"
                );
            }
            PresolveResult::Unknown => {}
        }
    }

    /// The tiered entry point agrees with the plain solver on every
    /// decided verdict, its SAT models satisfy the assertion, and
    /// repeated calls are deterministic.
    #[test]
    fn tiered_agrees_with_plain_check(f in form_strategy()) {
        let config = SolverConfig::default();
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let assertion = build(&mut ctx, &f, &vars);

        let (tiered, stats) = check_tiered(&mut ctx, assertion, &config);
        let plain = check(&mut ctx, assertion, &config);
        // Unknown = a resource limit, which tier discharge can avoid;
        // decided verdicts must match exactly.
        if verdict(&tiered) != "unknown" && verdict(&plain) != "unknown" {
            prop_assert_eq!(
                verdict(&tiered),
                verdict(&plain),
                "tiered and plain solver disagree on {:?}",
                f
            );
        }
        if let SolveResult::Sat(model) = &tiered {
            prop_assert!(
                model.satisfies(&ctx, assertion),
                "tiered SAT model does not satisfy {:?}",
                f
            );
        }
        // Every query is accounted for: discharged by a tier or fallen
        // through to the full solver.
        prop_assert_eq!(
            stats.t0_discharged + stats.t1_sat + stats.t1_unsat + stats.fallthrough,
            1,
            "fastpath counters must partition the query"
        );

        let (again, _) = check_tiered(&mut ctx, assertion, &config);
        prop_assert_eq!(verdict(&tiered), verdict(&again), "tiered solving is not deterministic");
    }
}

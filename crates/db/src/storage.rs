//! Physical storage: heap rows plus B-tree primary/secondary indexes,
//! with undo logging for transaction rollback.
//!
//! Writes are performed in place under strict 2PL (exclusive locks prevent
//! dirty reads), so rollback only needs to replay the undo log in reverse.

use crate::mvcc::VersionStore;
use crate::types::{KeyTuple, RowId, TxnId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use weseer_sqlir::{Catalog, IndexDef, TableDef, Value};

/// A stored row: values in table column order.
pub type Row = Vec<Value>;

/// Extract an index key from a row. Secondary keys get the primary-key
/// columns appended so every index entry is unique.
pub fn index_key(def: &TableDef, idx: &IndexDef, row: &Row) -> KeyTuple {
    let mut key: KeyTuple = idx
        .columns
        .iter()
        .map(|c| row[def.col_pos(c).expect("validated column")].clone())
        .collect();
    if idx.is_secondary() {
        for pk in &def.primary_key {
            key.push(row[def.col_pos(pk).expect("validated pk column")].clone());
        }
    }
    key
}

/// One table's physical state.
#[derive(Debug, Clone)]
pub struct TableStore {
    /// Schema.
    pub def: Arc<TableDef>,
    /// Heap: row id → current version.
    pub heap: HashMap<RowId, Row>,
    /// One B-tree per index (primary first), mapping full entry key → row.
    pub btrees: HashMap<String, BTreeMap<KeyTuple, RowId>>,
    next_row: u64,
}

impl TableStore {
    fn new(def: Arc<TableDef>) -> Self {
        let btrees = def
            .indexes
            .iter()
            .map(|i| (i.name.clone(), BTreeMap::new()))
            .collect();
        TableStore {
            def,
            heap: HashMap::new(),
            btrees,
            next_row: 0,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a row into heap and all indexes. Uniqueness is checked by the
    /// executor *before* calling this.
    pub fn insert(&mut self, row: Row) -> RowId {
        let rid = RowId(self.next_row);
        self.next_row += 1;
        for idx in &self.def.indexes {
            let key = index_key(&self.def, idx, &row);
            self.btrees
                .get_mut(&idx.name)
                .expect("index btree exists")
                .insert(key, rid);
        }
        self.heap.insert(rid, row);
        rid
    }

    /// Re-insert a previously deleted row under its original id
    /// (rollback of a delete).
    pub fn restore(&mut self, rid: RowId, row: Row) {
        debug_assert!(!self.heap.contains_key(&rid), "restore over live row");
        for idx in &self.def.indexes {
            let key = index_key(&self.def, idx, &row);
            self.btrees
                .get_mut(&idx.name)
                .expect("index btree exists")
                .insert(key, rid);
        }
        self.heap.insert(rid, row);
    }

    /// Remove a row from heap and all indexes, returning its last version.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let row = self.heap.remove(&rid)?;
        for idx in &self.def.indexes {
            let key = index_key(&self.def, idx, &row);
            self.btrees
                .get_mut(&idx.name)
                .expect("index exists")
                .remove(&key);
        }
        Some(row)
    }

    /// Replace a row in place, maintaining indexes. Returns the old version.
    pub fn update(&mut self, rid: RowId, new_row: Row) -> Option<Row> {
        let old = self.heap.get(&rid)?.clone();
        for idx in &self.def.indexes {
            let old_key = index_key(&self.def, idx, &old);
            let new_key = index_key(&self.def, idx, &new_row);
            if old_key != new_key {
                let tree = self.btrees.get_mut(&idx.name).expect("index exists");
                tree.remove(&old_key);
                tree.insert(new_key, rid);
            }
        }
        self.heap.insert(rid, new_row);
        Some(old)
    }

    /// The row id holding `key` in `index`, if present.
    pub fn lookup(&self, index: &str, key: &KeyTuple) -> Option<RowId> {
        self.btrees.get(index)?.get(key).copied()
    }

    /// The B-tree of an index.
    pub fn btree(&self, index: &str) -> &BTreeMap<KeyTuple, RowId> {
        self.btrees.get(index).expect("index exists")
    }
}

/// An undo-log entry.
#[derive(Debug, Clone)]
pub enum Undo {
    /// A row this transaction inserted (undo = delete it).
    Insert {
        /// Table name.
        table: String,
        /// Inserted row id.
        rid: RowId,
    },
    /// A row this transaction updated (undo = restore old version).
    Update {
        /// Table name.
        table: String,
        /// Updated row id.
        rid: RowId,
        /// Pre-image.
        old: Row,
    },
    /// A row this transaction deleted (undo = re-insert pre-image under
    /// its original row id, so later undo entries still resolve).
    Delete {
        /// Table name.
        table: String,
        /// Original row id.
        rid: RowId,
        /// Pre-image.
        old: Row,
    },
}

/// All tables plus per-transaction undo logs, guarded by one mutex in
/// [`crate::database::Database`]. `Clone` deep-copies every table and
/// undo log (used by [`crate::database::Database::fork`]).
#[derive(Debug, Clone)]
pub struct Storage {
    /// Tables by name.
    pub tables: HashMap<String, TableStore>,
    /// Undo logs of active transactions.
    pub undo: HashMap<TxnId, Vec<Undo>>,
    /// Version chains + commit-timestamp clock ([`crate::mvcc`]).
    pub mvcc: VersionStore,
}

impl Storage {
    /// Build empty storage from a catalog.
    pub fn new(catalog: &Catalog) -> Self {
        let tables = catalog
            .tables()
            .map(|t| (t.name.clone(), TableStore::new(t.clone())))
            .collect();
        Storage {
            tables,
            undo: HashMap::new(),
            mvcc: VersionStore::default(),
        }
    }

    /// The table by name (panics on unknown: validated upstream).
    pub fn table(&self, name: &str) -> &TableStore {
        self.tables.get(name).expect("validated table name")
    }

    /// Mutable table access.
    pub fn table_mut(&mut self, name: &str) -> &mut TableStore {
        self.tables.get_mut(name).expect("validated table name")
    }

    /// Append an undo entry for `txn`.
    pub fn log(&mut self, txn: TxnId, u: Undo) {
        self.undo.entry(txn).or_default().push(u);
    }

    /// Commit `txn`: discard its undo log and install the transaction's
    /// net row effects as versions stamped with a fresh commit timestamp.
    /// Returns the commit timestamp (the unchanged clock for read-only
    /// commits).
    ///
    /// The net effect per `(table, row)` is derived from the undo log: the
    /// pre-image is the first touch's "before" state (`None` for an
    /// insert), the post-image is the row's current heap state. Rows whose
    /// pre-image predates version tracking get a ts-0 baseline seeded
    /// first, so older snapshots can still rewind to them.
    pub fn commit(&mut self, txn: TxnId) -> u64 {
        let Some(log) = self.undo.remove(&txn) else {
            return self.mvcc.current_ts();
        };
        // First-touch pre-image per (table, rid), in touch order.
        let mut touched: Vec<(String, RowId)> = Vec::new();
        let mut pre: HashMap<(String, RowId), Option<Row>> = HashMap::new();
        for u in &log {
            let (key, before) = match u {
                Undo::Insert { table, rid } => ((table.clone(), *rid), None),
                Undo::Update { table, rid, old } | Undo::Delete { table, rid, old } => {
                    ((table.clone(), *rid), Some(old.clone()))
                }
            };
            if !pre.contains_key(&key) {
                pre.insert(key.clone(), before);
                touched.push(key);
            }
        }
        if touched.is_empty() {
            return self.mvcc.current_ts();
        }
        for (table, rid) in &touched {
            if let Some(Some(baseline)) = pre.get(&(table.clone(), *rid)) {
                self.mvcc.seed_baseline(table, *rid, baseline.clone());
            }
        }
        let ts = self.mvcc.next_commit_ts();
        for (table, rid) in touched {
            let post = self.tables.get(&table).and_then(|t| t.heap.get(&rid));
            // Skip no-op round trips (insert+delete within the txn, with
            // no earlier chain to terminate).
            if post.is_none() && pre[&(table.clone(), rid)].is_none() {
                continue;
            }
            let post = post.cloned();
            self.mvcc.install(&table, rid, post, ts);
        }
        ts
    }

    /// Roll back every in-flight transaction (newest first), leaving only
    /// committed state. [`crate::database::Database::fork`] calls this so
    /// forks never inherit uncommitted heap data or undo logs.
    pub fn reset_in_flight(&mut self) {
        let mut active: Vec<TxnId> = self.undo.keys().copied().collect();
        active.sort_unstable();
        for txn in active.into_iter().rev() {
            self.rollback(txn);
        }
    }

    /// Roll back `txn`: replay undo in reverse.
    pub fn rollback(&mut self, txn: TxnId) {
        let log = self.undo.remove(&txn).unwrap_or_default();
        for u in log.into_iter().rev() {
            match u {
                Undo::Insert { table, rid } => {
                    self.table_mut(&table).delete(rid);
                }
                Undo::Update { table, rid, old } => {
                    self.table_mut(&table).update(rid, old);
                }
                Undo::Delete { table, rid, old } => {
                    self.table_mut(&table).restore(rid, old);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_sqlir::{ColType, TableBuilder};

    fn catalog() -> Catalog {
        Catalog::new(vec![TableBuilder::new("Product")
            .col("ID", ColType::Int)
            .col("SKU", ColType::Str)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .unique_index("uq_sku", &["SKU"])
            .index("idx_qty", &["QTY"])
            .build()
            .unwrap()])
        .unwrap()
    }

    fn row(id: i64, sku: &str, qty: i64) -> Row {
        vec![Value::Int(id), Value::str(sku), Value::Int(qty)]
    }

    #[test]
    fn insert_maintains_all_indexes() {
        let mut s = Storage::new(&catalog());
        let rid = s.table_mut("Product").insert(row(1, "a", 5));
        let t = s.table("Product");
        assert_eq!(t.lookup("PRIMARY", &vec![Value::Int(1)]), Some(rid));
        // Secondary keys carry the PK suffix.
        assert_eq!(
            t.lookup("uq_sku", &vec![Value::str("a"), Value::Int(1)]),
            Some(rid)
        );
        assert_eq!(
            t.lookup("idx_qty", &vec![Value::Int(5), Value::Int(1)]),
            Some(rid)
        );
    }

    #[test]
    fn update_moves_index_entries() {
        let mut s = Storage::new(&catalog());
        let rid = s.table_mut("Product").insert(row(1, "a", 5));
        s.table_mut("Product").update(rid, row(1, "a", 9));
        let t = s.table("Product");
        assert_eq!(
            t.lookup("idx_qty", &vec![Value::Int(5), Value::Int(1)]),
            None
        );
        assert_eq!(
            t.lookup("idx_qty", &vec![Value::Int(9), Value::Int(1)]),
            Some(rid)
        );
    }

    #[test]
    fn delete_cleans_indexes() {
        let mut s = Storage::new(&catalog());
        let rid = s.table_mut("Product").insert(row(1, "a", 5));
        let old = s.table_mut("Product").delete(rid).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert!(s.table("Product").is_empty());
        assert_eq!(
            s.table("Product").lookup("PRIMARY", &vec![Value::Int(1)]),
            None
        );
    }

    #[test]
    fn rollback_restores_preimages() {
        let mut s = Storage::new(&catalog());
        let txn = TxnId(1);
        // Baseline row committed by someone else.
        let r0 = s.table_mut("Product").insert(row(1, "a", 5));

        let rid = s.table_mut("Product").insert(row(2, "b", 7));
        s.log(
            txn,
            Undo::Insert {
                table: "Product".into(),
                rid,
            },
        );

        let old = s.table_mut("Product").update(r0, row(1, "a", 99)).unwrap();
        s.log(
            txn,
            Undo::Update {
                table: "Product".into(),
                rid: r0,
                old,
            },
        );

        let old = s.table_mut("Product").delete(r0).unwrap();
        s.log(
            txn,
            Undo::Delete {
                table: "Product".into(),
                rid: r0,
                old,
            },
        );

        s.rollback(txn);
        let t = s.table("Product");
        assert_eq!(t.len(), 1);
        let surviving = t.heap.values().next().unwrap();
        assert_eq!(surviving, &row(1, "a", 5));
        assert_eq!(
            t.lookup("uq_sku", &vec![Value::str("b"), Value::Int(2)]),
            None
        );
    }

    #[test]
    fn commit_discards_undo() {
        let mut s = Storage::new(&catalog());
        let txn = TxnId(1);
        let rid = s.table_mut("Product").insert(row(1, "a", 5));
        s.log(
            txn,
            Undo::Insert {
                table: "Product".into(),
                rid,
            },
        );
        s.commit(txn);
        s.rollback(txn); // no-op now
        assert_eq!(s.table("Product").len(), 1);
    }

    #[test]
    fn index_key_extraction() {
        let cat = catalog();
        let def = cat.table("Product").unwrap();
        let r = row(3, "x", 8);
        assert_eq!(index_key(def, def.primary_index(), &r), vec![Value::Int(3)]);
        let sku = def.index("uq_sku").unwrap();
        assert_eq!(
            index_key(def, sku, &r),
            vec![Value::str("x"), Value::Int(3)]
        );
    }
}

//! The lock manager: strict two-phase locking with InnoDB-style
//! row / gap / insert-intention / table locks, blocking waits, waits-for
//! cycle detection, and victim abort (paper Sec. II-A's detect-and-recover).
//!
//! Compatibility rules mirror InnoDB:
//!
//! * row and table locks: S/S compatible, anything with X conflicts;
//! * gap locks (S or X) are *purely inhibitive*: they never conflict with
//!   each other, but they block other transactions' insert-intention locks
//!   into the same gap;
//! * insert-intention locks are compatible with each other.
//!
//! A transaction that would close a hold-and-wait cycle is rolled back
//! immediately with [`DbError::Deadlock`] carrying the concrete waits-for
//! cycle (the requester is the victim, as in InnoDB when it is the
//! cheapest to roll back). Besides the blocking [`LockManager::acquire`],
//! the replay engine uses the non-blocking [`LockManager::acquire_nowait`],
//! which records the waits-for edge and returns instead of sleeping, so
//! deadlocks surface instantly and deterministically; the current edge set
//! is observable through [`LockManager::wait_for_edges`].

use crate::types::{DbError, KeyBound, KeyTuple, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// What is being locked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// Whole table (used when no index is usable — Alg. 2 line 19).
    Table {
        /// Table name.
        table: String,
    },
    /// One index entry (record lock).
    Row {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// Index key (with PK suffix for secondary indexes).
        key: KeyTuple,
    },
    /// The open interval before an index entry (gap lock).
    Gap {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// The key the gap precedes.
        upper: KeyBound,
    },
}

impl LockTarget {
    /// The table this target belongs to.
    pub fn table(&self) -> &str {
        match self {
            LockTarget::Table { table }
            | LockTarget::Row { table, .. }
            | LockTarget::Gap { table, .. } => table,
        }
    }

    /// Whether this is a gap target.
    pub fn is_gap(&self) -> bool {
        matches!(self, LockTarget::Gap { .. })
    }
}

/// Lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared.
    Shared,
    /// Exclusive.
    Exclusive,
    /// Insert intention (into a gap).
    InsertIntention,
    /// Intention shared (table level, taken before row S locks).
    IntentionShared,
    /// Intention exclusive (table level, taken before row X locks).
    IntentionExclusive,
}

/// Whether a held lock blocks a requested one on the *same* target.
fn conflicts(target: &LockTarget, held: LockMode, req: LockMode) -> bool {
    use LockMode::*;
    match target {
        LockTarget::Gap { .. } => matches!(
            (held, req),
            (Shared, InsertIntention) | (Exclusive, InsertIntention)
        ),
        LockTarget::Table { .. } => matches!(
            (held, req),
            (Shared, Exclusive)
                | (Shared, IntentionExclusive)
                | (Exclusive, _)
                | (IntentionShared, Exclusive)
                | (IntentionExclusive, Shared)
                | (IntentionExclusive, Exclusive)
        ),
        LockTarget::Row { .. } => !matches!((held, req), (Shared, Shared)),
    }
}

#[derive(Debug, Default)]
struct LockState {
    /// Granted locks per target.
    granted: HashMap<LockTarget, Vec<(TxnId, LockMode)>>,
    /// Targets held per transaction (release bookkeeping).
    held_by: HashMap<TxnId, Vec<LockTarget>>,
    /// Current waits-for edges of blocked transactions.
    waiting_for: HashMap<TxnId, HashSet<TxnId>>,
}

impl LockState {
    fn blockers(&self, txn: TxnId, target: &LockTarget, mode: LockMode) -> HashSet<TxnId> {
        self.granted
            .get(target)
            .into_iter()
            .flatten()
            .filter(|(holder, held)| *holder != txn && conflicts(target, *held, mode))
            .map(|(holder, _)| *holder)
            .collect()
    }

    /// DFS over waits-for edges: does any of `from` reach `to`?
    fn reaches(&self, from: &HashSet<TxnId>, to: TxnId) -> bool {
        let mut stack: Vec<TxnId> = from.iter().copied().collect();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.waiting_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// A deterministic waits-for cycle through the victim: DFS from the
    /// victim's blockers back to the victim, visiting candidates in
    /// ascending `TxnId` order. Only called after [`LockState::reaches`]
    /// confirmed a cycle exists.
    fn cycle_path(&self, victim: TxnId, blockers: &HashSet<TxnId>) -> Vec<TxnId> {
        let mut starts: Vec<TxnId> = blockers.iter().copied().collect();
        starts.sort_unstable();
        let mut visited = HashSet::new();
        let mut path = vec![victim];
        for s in starts {
            if self.find_path(s, victim, &mut visited, &mut path) {
                return path;
            }
        }
        path
    }

    fn find_path(
        &self,
        from: TxnId,
        to: TxnId,
        visited: &mut HashSet<TxnId>,
        path: &mut Vec<TxnId>,
    ) -> bool {
        if from == to {
            return true;
        }
        if !visited.insert(from) {
            return false;
        }
        path.push(from);
        let mut nexts: Vec<TxnId> = self
            .waiting_for
            .get(&from)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        nexts.sort_unstable();
        for n in nexts {
            if self.find_path(n, to, visited, path) {
                return true;
            }
        }
        path.pop();
        false
    }

    /// Sorted snapshot of the waits-for edges.
    fn edges_snapshot(&self) -> Vec<(TxnId, TxnId)> {
        let mut out: Vec<(TxnId, TxnId)> = self
            .waiting_for
            .iter()
            .flat_map(|(w, bs)| bs.iter().map(move |b| (*w, *b)))
            .collect();
        out.sort_unstable();
        out
    }

    fn grant(&mut self, txn: TxnId, target: LockTarget, mode: LockMode) {
        let entry = self.granted.entry(target.clone()).or_default();
        if entry.iter().any(|(t, m)| *t == txn && *m == mode) {
            return;
        }
        let first_for_txn = !entry.iter().any(|(t, _)| *t == txn);
        entry.push((txn, mode));
        if first_for_txn {
            self.held_by.entry(txn).or_default().push(target);
        }
    }
}

/// Mirror the current waits-for edge set into the obs crate's live
/// wait-for state for the `/waitfor` endpoint. Cheap no-op while the
/// registry is disabled.
fn publish_waitfor(st: &LockState) {
    if weseer_obs::enabled() {
        weseer_obs::waitfor::update_edges(
            st.edges_snapshot()
                .into_iter()
                .map(|(w, h)| (w.0, h.0))
                .collect(),
        );
    }
}

/// Timeline instant for a lock-manager event (acquire / wait / deadlock /
/// release). Cheap no-op while the timeline is disabled.
fn timeline_lock_event(name: &'static str, txn: TxnId, detail: &[(&str, String)]) {
    if weseer_obs::timeline::enabled() {
        let mut args = vec![("txn", txn.0.to_string())];
        args.extend(detail.iter().map(|(k, v)| (*k, v.clone())));
        weseer_obs::timeline::instant(name, "db", &args);
    }
}

/// Counters published by the lock manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Lock requests that had to wait.
    pub waits: u64,
    /// Deadlocks detected (victim aborts).
    pub deadlocks: u64,
    /// Lock-wait timeouts.
    pub timeouts: u64,
}

/// Outcome of a non-blocking [`LockManager::acquire_nowait`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted.
    Granted,
    /// The request must wait on these transactions (sorted). The waits-for
    /// edge has been recorded; it persists until the lock is granted or
    /// the transaction releases.
    WouldBlock(Vec<TxnId>),
}

/// The lock manager.
#[derive(Debug)]
pub struct LockManager {
    state: Mutex<LockState>,
    cond: Condvar,
    stats: Mutex<LockStats>,
    /// Maximum blocking time before a timeout abort.
    pub wait_timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(5))
    }
}

impl LockManager {
    /// Create a lock manager with the given wait timeout.
    pub fn new(wait_timeout: Duration) -> Self {
        LockManager {
            state: Mutex::new(LockState::default()),
            cond: Condvar::new(),
            stats: Mutex::new(LockStats::default()),
            wait_timeout,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> LockStats {
        *self.stats.lock()
    }

    /// Acquire `mode` on `target` for `txn`, blocking until granted.
    ///
    /// Returns [`DbError::Deadlock`] (with the concrete waits-for cycle)
    /// when granting would require waiting inside a hold-and-wait cycle,
    /// and [`DbError::LockWaitTimeout`] after `wait_timeout`. In both
    /// cases the caller must roll the transaction back.
    pub fn acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Result<(), DbError> {
        weseer_obs::incr("db.lock.acquisitions");
        let wait_start = Instant::now();
        let mut st = self.state.lock();
        let mut waited = false;
        let deadline = wait_start + self.wait_timeout;
        loop {
            let blockers = st.blockers(txn, &target, mode);
            if blockers.is_empty() {
                st.waiting_for.remove(&txn);
                timeline_lock_event(
                    "db.lock.acquire",
                    txn,
                    &[
                        ("target", format!("{target:?}")),
                        ("mode", format!("{mode:?}")),
                    ],
                );
                st.grant(txn, target, mode);
                if waited {
                    weseer_obs::observe_duration("db.lock.wait_us", wait_start.elapsed());
                    publish_waitfor(&st);
                    // Position may have changed while waiting; wake others
                    // whose blockers might have gone away.
                    self.cond.notify_all();
                }
                return Ok(());
            }
            // Would waiting close a cycle? blockers ⇒ … ⇒ txn.
            if st.reaches(&blockers, txn) {
                let cycle = st.cycle_path(txn, &blockers);
                if weseer_obs::enabled() {
                    // Edge set *at detection time*, before the victim's
                    // edges are rolled back, plus the closing edges the
                    // victim was about to add.
                    let mut edges: Vec<(u64, u64)> = st
                        .edges_snapshot()
                        .into_iter()
                        .map(|(w, h)| (w.0, h.0))
                        .collect();
                    edges.extend(blockers.iter().map(|b| (txn.0, b.0)));
                    edges.sort_unstable();
                    edges.dedup();
                    weseer_obs::waitfor::record_deadlock(
                        cycle.iter().map(|t| t.0).collect(),
                        edges,
                    );
                }
                st.waiting_for.remove(&txn);
                self.stats.lock().deadlocks += 1;
                weseer_obs::incr("db.lock.deadlock_aborts");
                timeline_lock_event("db.lock.deadlock", txn, &[("cycle", format!("{cycle:?}"))]);
                weseer_obs::emit(
                    weseer_obs::Level::Warn,
                    "db.lock",
                    format!(
                        "deadlock: {txn} requesting {mode:?} on {target:?}; \
                         cycle={cycle:?}; wait_for={:?}; held={:?}",
                        st.edges_snapshot(),
                        st.held_by.get(&txn)
                    ),
                );
                publish_waitfor(&st);
                self.cond.notify_all();
                return Err(DbError::Deadlock { cycle });
            }
            if !waited {
                self.stats.lock().waits += 1;
                weseer_obs::incr("db.lock.waits");
                timeline_lock_event(
                    "db.lock.wait",
                    txn,
                    &[
                        ("target", format!("{target:?}")),
                        ("mode", format!("{mode:?}")),
                    ],
                );
                waited = true;
            }
            weseer_obs::add("db.lock.wait_for_edges", blockers.len() as u64);
            st.waiting_for.insert(txn, blockers);
            publish_waitfor(&st);
            let timed_out = self.cond.wait_until(&mut st, deadline).timed_out();
            if timed_out {
                st.waiting_for.remove(&txn);
                publish_waitfor(&st);
                self.stats.lock().timeouts += 1;
                weseer_obs::incr("db.lock.timeouts");
                weseer_obs::emit(
                    weseer_obs::Level::Warn,
                    "db.lock",
                    format!("lock wait timeout: {txn} requesting {mode:?} on {target:?}"),
                );
                return Err(DbError::LockWaitTimeout);
            }
        }
    }

    /// Acquire without ever sleeping: grant, or *record the waits-for
    /// edge* and return [`AcquireOutcome::WouldBlock`], or detect that
    /// waiting would close a cycle and return [`DbError::Deadlock`].
    ///
    /// Unlike [`LockManager::try_acquire`], a blocked request leaves the
    /// transaction's waits-for edge in place, so a later `acquire_nowait`
    /// by another transaction sees it and deadlocks *instantly and
    /// deterministically* — no timeouts, no condition-variable races. The
    /// replay engine's schedule explorer is built on this. The edge is
    /// cleared when the lock is eventually granted (any acquisition path)
    /// or the transaction releases via [`LockManager::release_all`].
    pub fn acquire_nowait(
        &self,
        txn: TxnId,
        target: LockTarget,
        mode: LockMode,
    ) -> Result<AcquireOutcome, DbError> {
        let mut st = self.state.lock();
        let blockers = st.blockers(txn, &target, mode);
        if blockers.is_empty() {
            let had_edge = st.waiting_for.remove(&txn).is_some();
            timeline_lock_event(
                "db.lock.acquire",
                txn,
                &[
                    ("target", format!("{target:?}")),
                    ("mode", format!("{mode:?}")),
                ],
            );
            st.grant(txn, target, mode);
            weseer_obs::incr("db.lock.acquisitions");
            if had_edge {
                publish_waitfor(&st);
            }
            return Ok(AcquireOutcome::Granted);
        }
        if st.reaches(&blockers, txn) {
            let cycle = st.cycle_path(txn, &blockers);
            if weseer_obs::enabled() {
                let mut edges: Vec<(u64, u64)> = st
                    .edges_snapshot()
                    .into_iter()
                    .map(|(w, h)| (w.0, h.0))
                    .collect();
                edges.extend(blockers.iter().map(|b| (txn.0, b.0)));
                edges.sort_unstable();
                edges.dedup();
                weseer_obs::waitfor::record_deadlock(cycle.iter().map(|t| t.0).collect(), edges);
            }
            st.waiting_for.remove(&txn);
            self.stats.lock().deadlocks += 1;
            weseer_obs::incr("db.lock.deadlock_aborts");
            timeline_lock_event("db.lock.deadlock", txn, &[("cycle", format!("{cycle:?}"))]);
            weseer_obs::emit(
                weseer_obs::Level::Warn,
                "db.lock",
                format!(
                    "deadlock (nowait): {txn} requesting {mode:?} on {target:?}; \
                     cycle={cycle:?}; wait_for={:?}",
                    st.edges_snapshot()
                ),
            );
            publish_waitfor(&st);
            self.cond.notify_all();
            return Err(DbError::Deadlock { cycle });
        }
        let mut sorted: Vec<TxnId> = blockers.iter().copied().collect();
        sorted.sort_unstable();
        if st.waiting_for.insert(txn, blockers).is_none() {
            self.stats.lock().waits += 1;
            weseer_obs::incr("db.lock.waits");
            timeline_lock_event(
                "db.lock.wait",
                txn,
                &[
                    ("target", format!("{target:?}")),
                    ("mode", format!("{mode:?}")),
                ],
            );
        }
        publish_waitfor(&st);
        Ok(AcquireOutcome::WouldBlock(sorted))
    }

    /// Sorted snapshot of the current waits-for edges
    /// `(waiter, holder it waits on)` — consumed by the replay engine's
    /// witnesses and mirrored into the lock manager's obs events.
    pub fn wait_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        self.state.lock().edges_snapshot()
    }

    /// Try to acquire without blocking; `Ok(false)` when it would wait.
    pub fn try_acquire(
        &self,
        txn: TxnId,
        target: LockTarget,
        mode: LockMode,
    ) -> Result<bool, DbError> {
        let mut st = self.state.lock();
        if st.blockers(txn, &target, mode).is_empty() {
            st.grant(txn, target, mode);
            weseer_obs::incr("db.lock.acquisitions");
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Release every lock of `txn` (commit or rollback) and wake waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        if let Some(targets) = st.held_by.remove(&txn) {
            for t in targets {
                if let Some(holders) = st.granted.get_mut(&t) {
                    holders.retain(|(h, _)| *h != txn);
                    if holders.is_empty() {
                        st.granted.remove(&t);
                    }
                }
            }
        }
        st.waiting_for.remove(&txn);
        timeline_lock_event("db.lock.release", txn, &[]);
        publish_waitfor(&st);
        self.cond.notify_all();
    }

    /// Locks currently held by `txn` (tests and diagnostics); a target
    /// appears once per mode held on it.
    pub fn held(&self, txn: TxnId) -> Vec<(LockTarget, LockMode)> {
        let st = self.state.lock();
        st.held_by
            .get(&txn)
            .into_iter()
            .flatten()
            .flat_map(|t| {
                st.granted
                    .get(t)
                    .into_iter()
                    .flatten()
                    .filter(|(h, _)| *h == txn)
                    .map(|(_, m)| (t.clone(), *m))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use weseer_sqlir::Value;

    fn row(k: i64) -> LockTarget {
        LockTarget::Row {
            table: "T".into(),
            index: "PRIMARY".into(),
            key: vec![Value::Int(k)],
        }
    }

    fn gap(upper: i64) -> LockTarget {
        LockTarget::Gap {
            table: "T".into(),
            index: "PRIMARY".into(),
            upper: KeyBound::Key(vec![Value::Int(upper)]),
        }
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), row(1), LockMode::Shared).unwrap();
        assert_eq!(lm.held(TxnId(1)).len(), 1);
        assert_eq!(lm.held(TxnId(2)).len(), 1);
    }

    #[test]
    fn exclusive_blocks_then_releases() {
        let lm = Arc::new(LockManager::default());
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        assert!(!lm.try_acquire(TxnId(2), row(1), LockMode::Shared).unwrap());
        let lm2 = lm.clone();
        let h = thread::spawn(move || lm2.acquire(TxnId(2), row(1), LockMode::Shared));
        thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        let held = lm.held(TxnId(1));
        assert!(held.iter().any(|(_, m)| *m == LockMode::Exclusive));
        // The upgraded row is still blocked for others.
        assert!(!lm.try_acquire(TxnId(2), row(1), LockMode::Shared).unwrap());
    }

    #[test]
    fn gap_locks_are_mutually_compatible() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), gap(10), LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), gap(10), LockMode::Exclusive).unwrap();
        // But insert intention by a third party must wait.
        assert!(!lm
            .try_acquire(TxnId(3), gap(10), LockMode::InsertIntention)
            .unwrap());
        // Even a gap holder is blocked by the *other* holder's gap lock —
        // this mutual blocking is exactly how the Table-II deadlocks form.
        assert!(!lm
            .try_acquire(TxnId(1), gap(10), LockMode::InsertIntention)
            .unwrap());
        // A txn holding the only gap lock may insert through it.
        lm.release_all(TxnId(2));
        assert!(lm
            .try_acquire(TxnId(1), gap(10), LockMode::InsertIntention)
            .unwrap());
    }

    #[test]
    fn insert_intentions_are_compatible() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), gap(10), LockMode::InsertIntention)
            .unwrap();
        assert!(lm
            .try_acquire(TxnId(2), gap(10), LockMode::InsertIntention)
            .unwrap());
        // Gap locks never wait, even with an II present (InnoDB).
        assert!(lm.try_acquire(TxnId(3), gap(10), LockMode::Shared).unwrap());
    }

    #[test]
    fn two_txn_deadlock_detected() {
        // T1: X(r1) then wants X(r2); T2: X(r2) then wants X(r1).
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), row(2), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            // T1 blocks on r2.
            lm2.acquire(TxnId(1), row(2), LockMode::Exclusive)
        });
        thread::sleep(Duration::from_millis(50));
        // T2 requesting r1 closes the cycle → T2 is the victim, and the
        // error names the concrete cycle T2 → T1 → T2.
        let r = lm.acquire(TxnId(2), row(1), LockMode::Exclusive);
        assert_eq!(
            r,
            Err(DbError::Deadlock {
                cycle: vec![TxnId(2), TxnId(1)]
            })
        );
        lm.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.stats().deadlocks, 1);
    }

    #[test]
    fn classic_gap_insert_deadlock() {
        // The paper's d1-style deadlock: both transactions hold a gap lock,
        // both try to insert into it.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.acquire(TxnId(1), gap(100), LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), gap(100), LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || lm2.acquire(TxnId(1), gap(100), LockMode::InsertIntention));
        thread::sleep(Duration::from_millis(50));
        let r = lm.acquire(TxnId(2), gap(100), LockMode::InsertIntention);
        assert!(matches!(r, Err(DbError::Deadlock { .. })));
        lm.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        lm.release_all(TxnId(1));
    }

    #[test]
    fn three_txn_cycle_detected() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), row(2), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(3), row(3), LockMode::Exclusive).unwrap();
        let lm1 = lm.clone();
        let h1 = thread::spawn(move || lm1.acquire(TxnId(1), row(2), LockMode::Exclusive));
        let lm2 = lm.clone();
        let h2 = thread::spawn(move || lm2.acquire(TxnId(2), row(3), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(80));
        let r = lm.acquire(TxnId(3), row(1), LockMode::Exclusive);
        assert_eq!(
            r,
            Err(DbError::Deadlock {
                cycle: vec![TxnId(3), TxnId(1), TxnId(2)]
            })
        );
        lm.release_all(TxnId(3));
        h2.join().unwrap().unwrap();
        lm.release_all(TxnId(2));
        h1.join().unwrap().unwrap();
        lm.release_all(TxnId(1));
    }

    #[test]
    fn timeout_fires() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        let r = lm.acquire(TxnId(2), row(1), LockMode::Exclusive);
        assert_eq!(r, Err(DbError::LockWaitTimeout));
        assert_eq!(lm.stats().timeouts, 1);
    }

    #[test]
    fn release_clears_everything() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), gap(5), LockMode::Shared).unwrap();
        assert_eq!(lm.held(TxnId(1)).len(), 2);
        lm.release_all(TxnId(1));
        assert!(lm.held(TxnId(1)).is_empty());
        assert!(lm
            .try_acquire(TxnId(2), row(1), LockMode::Exclusive)
            .unwrap());
    }

    #[test]
    fn nowait_records_edges_and_detects_cycles_without_threads() {
        // The same two-txn deadlock as above, but entirely single-threaded
        // through the nowait path — the foundation of deterministic replay.
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), row(2), LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire_nowait(TxnId(1), row(2), LockMode::Exclusive),
            Ok(AcquireOutcome::WouldBlock(vec![TxnId(2)]))
        );
        assert_eq!(lm.wait_for_edges(), vec![(TxnId(1), TxnId(2))]);
        // A repeat attempt is idempotent (no double wait counting).
        let waits = lm.stats().waits;
        assert_eq!(
            lm.acquire_nowait(TxnId(1), row(2), LockMode::Exclusive),
            Ok(AcquireOutcome::WouldBlock(vec![TxnId(2)]))
        );
        assert_eq!(lm.stats().waits, waits);
        // T2 closing the cycle deadlocks instantly, no other threads.
        let r = lm.acquire_nowait(TxnId(2), row(1), LockMode::Exclusive);
        assert_eq!(
            r,
            Err(DbError::Deadlock {
                cycle: vec![TxnId(2), TxnId(1)]
            })
        );
        assert_eq!(lm.stats().deadlocks, 1);
        // The victim's rollback clears its locks; T1's edge resolves once
        // it re-attempts and is granted.
        lm.release_all(TxnId(2));
        assert_eq!(
            lm.acquire_nowait(TxnId(1), row(2), LockMode::Exclusive),
            Ok(AcquireOutcome::Granted)
        );
        assert!(lm.wait_for_edges().is_empty());
    }

    #[test]
    fn deadlock_then_timeout_on_the_same_edge() {
        // T2 blocks on the edge T2 → T1; T1 then closes a cycle through
        // that same edge and is aborted as the victim, but keeps its
        // locks (the caller has not rolled back yet), so T2's wait on the
        // very same edge subsequently times out. Both counters must fire
        // and the manager must stay consistent.
        let lm = Arc::new(LockManager::new(Duration::from_millis(150)));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), row(2), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || lm2.acquire(TxnId(2), row(1), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(40));
        // Closing the cycle: T1 is the victim and errors instantly …
        let r = lm.acquire(TxnId(1), row(2), LockMode::Exclusive);
        assert_eq!(
            r,
            Err(DbError::Deadlock {
                cycle: vec![TxnId(1), TxnId(2)]
            })
        );
        // … but T1 deliberately does not release, so T2's wait on the
        // same edge runs into the timeout backstop.
        assert_eq!(h.join().unwrap(), Err(DbError::LockWaitTimeout));
        let stats = lm.stats();
        assert_eq!(stats.deadlocks, 1);
        assert_eq!(stats.timeouts, 1);
        // Once both roll back, the rows are free again.
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        assert!(lm
            .try_acquire(TxnId(3), row(1), LockMode::Exclusive)
            .unwrap());
        assert!(lm
            .try_acquire(TxnId(3), row(2), LockMode::Exclusive)
            .unwrap());
    }

    #[test]
    fn timeout_clears_edge_so_no_stale_cycle() {
        // A timed-out waiter must remove its waits-for edge; otherwise a
        // later request in the opposite direction would see a phantom
        // cycle and abort a perfectly healthy transaction.
        let lm = LockManager::new(Duration::from_millis(40));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        let r = lm.acquire(TxnId(2), row(1), LockMode::Exclusive);
        assert_eq!(r, Err(DbError::LockWaitTimeout));
        assert!(lm.wait_for_edges().is_empty());
        // T2 holds r2 now; T1 requesting it must block, not deadlock —
        // the stale T2 → T1 edge is gone.
        lm.acquire(TxnId(2), row(2), LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire_nowait(TxnId(1), row(2), LockMode::Exclusive),
            Ok(AcquireOutcome::WouldBlock(vec![TxnId(2)]))
        );
        assert_eq!(lm.stats().deadlocks, 0);
    }

    #[test]
    fn nowait_victim_first_cycle_ordering_under_concurrent_release() {
        // Two cycles through the victim at once: T2 and T3 both hold the
        // gap and both wait on T1's row, so T1's insert intention closes
        // T1→T2→T1 *and* T1→T3→T1. The reported cycle must start with
        // the victim and pick blockers in ascending TxnId order.
        let lm = Arc::new(LockManager::default());
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), gap(100), LockMode::Shared).unwrap();
        lm.acquire(TxnId(3), gap(100), LockMode::Shared).unwrap();
        assert_eq!(
            lm.acquire_nowait(TxnId(2), row(1), LockMode::Exclusive),
            Ok(AcquireOutcome::WouldBlock(vec![TxnId(1)]))
        );
        assert_eq!(
            lm.acquire_nowait(TxnId(3), row(1), LockMode::Exclusive),
            Ok(AcquireOutcome::WouldBlock(vec![TxnId(1)]))
        );
        let r = lm.acquire_nowait(TxnId(1), gap(100), LockMode::InsertIntention);
        assert_eq!(
            r,
            Err(DbError::Deadlock {
                cycle: vec![TxnId(1), TxnId(2)]
            })
        );
        // T2 releases from another thread; once it is gone the remaining
        // cycle runs through T3, and the re-detected cycle is again
        // victim-first and deterministic.
        let lm2 = lm.clone();
        thread::spawn(move || lm2.release_all(TxnId(2)))
            .join()
            .unwrap();
        let r = lm.acquire_nowait(TxnId(1), gap(100), LockMode::InsertIntention);
        assert_eq!(
            r,
            Err(DbError::Deadlock {
                cycle: vec![TxnId(1), TxnId(3)]
            })
        );
        assert_eq!(lm.stats().deadlocks, 2);
        // After every participant rolls back, the gap is insertable.
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(3));
        assert!(lm
            .try_acquire(TxnId(4), gap(100), LockMode::InsertIntention)
            .unwrap());
    }

    #[test]
    fn different_targets_do_not_conflict() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        assert!(lm
            .try_acquire(TxnId(2), row(2), LockMode::Exclusive)
            .unwrap());
        let t = LockTarget::Table { table: "U".into() };
        assert!(lm.try_acquire(TxnId(2), t, LockMode::Exclusive).unwrap());
    }
}

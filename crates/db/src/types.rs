//! Core identifiers and key types for the storage engine.

use std::fmt;
use weseer_sqlir::Value;

/// A transaction identifier; monotonically increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Internal row identifier within a table (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// An index key: the indexed column values, in key order. Secondary index
/// keys are suffixed with the primary-key values to make entries unique
/// (InnoDB's physical layout).
pub type KeyTuple = Vec<Value>;

/// The upper boundary of a B-tree gap: the key the gap precedes, or the
/// index supremum (InnoDB's "gap before the supremum pseudo-record").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyBound {
    /// Gap immediately before this existing key.
    Key(KeyTuple),
    /// Gap after the last key.
    Supremum,
}

impl fmt::Display for KeyBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyBound::Key(k) => {
                write!(f, "<")?;
                for (i, v) in k.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            KeyBound::Supremum => write!(f, "<sup>"),
        }
    }
}

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// This transaction was chosen as a deadlock victim and rolled back.
    /// Carries the waits-for cycle that was closed, starting and ending at
    /// the victim: `cycle[0]` waits on `cycle[1]`, …, and the last entry
    /// waits back on `cycle[0]`.
    Deadlock {
        /// The waits-for cycle (victim first; implicitly closed).
        cycle: Vec<TxnId>,
    },
    /// Waited longer than the configured lock-wait timeout; the
    /// transaction was rolled back (MySQL's detect-or-timeout recovery).
    LockWaitTimeout,
    /// Under snapshot isolation the transaction tried to overwrite a row
    /// version committed after its snapshot (first-updater-wins); the
    /// transaction was rolled back (PostgreSQL's "could not serialize
    /// access due to concurrent update").
    WriteConflict {
        /// Table holding the conflicting row.
        table: String,
    },
    /// Unique-key violation.
    DuplicateKey {
        /// Violated index.
        index: String,
    },
    /// Statement used outside of a transaction.
    NoTransaction,
    /// Statement shape not supported by the engine.
    Unsupported(String),
    /// Schema-level problem (unknown table/column, arity mismatch).
    Schema(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Deadlock { cycle } => {
                write!(
                    f,
                    "deadlock found when trying to get lock; transaction rolled back"
                )?;
                if !cycle.is_empty() {
                    write!(f, " (cycle: ")?;
                    for t in cycle {
                        write!(f, "{t} -> ")?;
                    }
                    write!(f, "{})", cycle[0])?;
                }
                Ok(())
            }
            DbError::LockWaitTimeout => write!(f, "lock wait timeout exceeded"),
            DbError::WriteConflict { table } => {
                write!(
                    f,
                    "could not serialize access due to concurrent update on {table}; \
                     transaction rolled back"
                )
            }
            DbError::DuplicateKey { index } => {
                write!(f, "duplicate entry for index {index:?}")
            }
            DbError::NoTransaction => write!(f, "no active transaction"),
            DbError::Unsupported(s) => write!(f, "unsupported statement: {s}"),
            DbError::Schema(s) => write!(f, "schema error: {s}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Whether this error implies the transaction was rolled back by the
    /// engine (abort-style recovery).
    pub fn aborts_txn(&self) -> bool {
        matches!(
            self,
            DbError::Deadlock { .. } | DbError::LockWaitTimeout | DbError::WriteConflict { .. }
        )
    }

    /// The waits-for cycle of a deadlock error, if any.
    pub fn deadlock_cycle(&self) -> Option<&[TxnId]> {
        match self {
            DbError::Deadlock { cycle } => Some(cycle),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(TxnId(3).to_string().contains('3'));
        assert!(KeyBound::Supremum.to_string().contains("sup"));
        assert!(KeyBound::Key(vec![Value::Int(1), Value::str("a")])
            .to_string()
            .contains("1,'a'"));
        let dl = DbError::Deadlock {
            cycle: vec![TxnId(2), TxnId(1)],
        };
        assert!(dl.to_string().contains("deadlock"));
        assert!(dl.to_string().contains("txn#2 -> txn#1 -> txn#2"));
    }

    #[test]
    fn abort_classification() {
        let dl = DbError::Deadlock { cycle: vec![] };
        assert!(dl.aborts_txn());
        assert_eq!(dl.deadlock_cycle(), Some(&[][..]));
        assert!(DbError::LockWaitTimeout.aborts_txn());
        let wc = DbError::WriteConflict {
            table: "Account".into(),
        };
        assert!(wc.aborts_txn());
        assert!(wc.to_string().contains("concurrent update on Account"));
        assert!(!DbError::DuplicateKey {
            index: "PRIMARY".into()
        }
        .aborts_txn());
        assert!(!DbError::NoTransaction.aborts_txn());
    }
}

//! Runtime detection of weak-isolation anomalies.
//!
//! The tracker observes every MVCC session's snapshot reads and current
//! writes and reports, per committed history, the classic anomalies the
//! paper's 2PL model cannot produce:
//!
//! * **lost update** — a transaction overwrites a row it snapshot-read at
//!   a version older than the latest committed one (the overwritten commit
//!   is "lost" to the read-modify-write);
//! * **write skew** — two concurrent committed transactions with disjoint
//!   write sets, each snapshot-reading a row the other wrote while that
//!   write was invisible to it (a bidirectional rw-antidependency, the SSI
//!   dangerous structure);
//! * **read fracture** — one transaction snapshot-reads the same row at
//!   two different versions (read-committed's non-repeatable read).
//!
//! Events are recorded as *pending* while the transaction runs and
//! promoted only at commit — an aborted transaction (e.g. a
//! [`crate::DbError::WriteConflict`] victim) produces no anomalies, which
//! is exactly why snapshot isolation kills lost updates. Sessions at
//! serializable never touch the tracker, so default runs stay
//! byte-identical.

use crate::types::{RowId, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// The anomaly class of an [`AnomalyEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnomalyKind {
    /// Stale read-modify-write overwrote a newer committed version.
    LostUpdate,
    /// Bidirectional rw-antidependency between concurrent committed
    /// transactions with disjoint write sets.
    WriteSkew,
    /// Same row observed at two different versions within one transaction.
    ReadFracture,
}

impl AnomalyKind {
    /// Stable kebab-case name used in witnesses and reports.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::LostUpdate => "lost-update",
            AnomalyKind::WriteSkew => "write-skew",
            AnomalyKind::ReadFracture => "read-fracture",
        }
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One confirmed anomaly in a committed history.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnomalyEvent {
    /// Anomaly class.
    pub kind: AnomalyKind,
    /// Table of the conflicted row (write skew: lexicographically first
    /// conflicted table).
    pub table: String,
    /// Participating transactions, ascending.
    pub txns: Vec<TxnId>,
    /// Human-readable explanation with row/version detail.
    pub detail: String,
}

#[derive(Debug, Default)]
struct TxnState {
    snapshot: u64,
    /// Snapshot reads: (table, rid) → version ts first observed.
    reads: HashMap<(String, RowId), u64>,
    /// Current writes: (table, rid).
    writes: Vec<(String, RowId)>,
    /// Events to promote if this transaction commits.
    pending: Vec<AnomalyEvent>,
}

#[derive(Debug)]
struct Committed {
    txn: TxnId,
    snapshot: u64,
    commit_ts: u64,
    reads: HashMap<(String, RowId), u64>,
    writes: Vec<(String, RowId)>,
}

#[derive(Debug, Default)]
struct State {
    active: HashMap<TxnId, TxnState>,
    committed: Vec<Committed>,
    events: Vec<AnomalyEvent>,
}

/// Shared per-database anomaly tracker. All methods are no-ops for
/// transactions that never registered (serializable sessions don't).
#[derive(Debug, Default)]
pub struct AnomalyTracker {
    state: Mutex<State>,
}

impl AnomalyTracker {
    /// Register an MVCC transaction with its starting snapshot.
    pub fn begin(&self, txn: TxnId, snapshot: u64) {
        let mut st = self.state.lock();
        st.active.insert(
            txn,
            TxnState {
                snapshot,
                ..TxnState::default()
            },
        );
    }

    /// Record a snapshot read of one row at version `ts`. Detects read
    /// fractures (same row, different version within one transaction).
    pub fn record_read(&self, txn: TxnId, table: &str, rid: RowId, ts: u64) {
        let mut st = self.state.lock();
        let Some(t) = st.active.get_mut(&txn) else {
            return;
        };
        let key = (table.to_string(), rid);
        match t.reads.get(&key) {
            None => {
                t.reads.insert(key, ts);
            }
            Some(&first) if first != ts => {
                let detail = format!(
                    "{txn} read {table} row {} at version ts {} and again at ts {ts}",
                    rid.0, first
                );
                let ev = AnomalyEvent {
                    kind: AnomalyKind::ReadFracture,
                    table: table.to_string(),
                    txns: vec![txn],
                    detail,
                };
                if !t.pending.contains(&ev) {
                    t.pending.push(ev);
                    weseer_obs::incr("db.anomaly.read_fracture");
                }
            }
            Some(_) => {}
        }
    }

    /// Record a current write of one row. When the latest committed
    /// version is newer than the version this transaction snapshot-read,
    /// the write is a stale read-modify-write: a pending lost update.
    pub fn record_write(&self, txn: TxnId, table: &str, rid: RowId, latest_ts: u64) {
        let mut st = self.state.lock();
        let Some(t) = st.active.get_mut(&txn) else {
            return;
        };
        let key = (table.to_string(), rid);
        if !t.writes.contains(&key) {
            t.writes.push(key.clone());
        }
        if let Some(&read_ts) = t.reads.get(&key) {
            if latest_ts > read_ts {
                let detail = format!(
                    "{txn} overwrote {table} row {} after reading version ts {read_ts}; \
                     latest committed version is ts {latest_ts}",
                    rid.0
                );
                let ev = AnomalyEvent {
                    kind: AnomalyKind::LostUpdate,
                    table: table.to_string(),
                    txns: vec![txn],
                    detail,
                };
                if !t.pending.contains(&ev) {
                    t.pending.push(ev);
                    weseer_obs::incr("db.anomaly.lost_update");
                }
            }
        }
    }

    /// Promote the transaction's pending events, archive its read/write
    /// sets, and test the SSI dangerous structure against every concurrent
    /// previously committed transaction.
    pub fn commit(&self, txn: TxnId, commit_ts: u64) {
        let mut st = self.state.lock();
        let Some(t) = st.active.remove(&txn) else {
            return;
        };
        let me = Committed {
            txn,
            snapshot: t.snapshot,
            commit_ts,
            reads: t.reads,
            writes: t.writes,
        };
        let mut new_events = t.pending;
        for other in &st.committed {
            // Concurrent: neither committed before the other's snapshot.
            if other.commit_ts <= me.snapshot || me.commit_ts <= other.snapshot {
                continue;
            }
            // Disjoint write sets (same-row overwrites are lost updates,
            // not skew).
            if me.writes.iter().any(|w| other.writes.contains(w)) {
                continue;
            }
            let rw = |reader: &Committed, writer: &Committed| -> Option<(String, RowId)> {
                let mut hits: Vec<&(String, RowId)> = writer
                    .writes
                    .iter()
                    .filter(|w| {
                        // The reader saw a version older than the writer's
                        // commit: the write was invisible to it.
                        reader
                            .reads
                            .get(*w)
                            .is_some_and(|&ts| ts < writer.commit_ts)
                            && writer.commit_ts > reader.snapshot
                    })
                    .collect();
                hits.sort();
                hits.first().map(|w| (*w).clone())
            };
            if let (Some(a), Some(b)) = (rw(&me, other), rw(other, &me)) {
                let mut txns = vec![me.txn, other.txn];
                txns.sort_unstable();
                let mut tables = vec![a.0.clone(), b.0.clone()];
                tables.sort();
                tables.dedup();
                let detail = format!(
                    "{} and {} each read a row the other wrote ({} row {} / {} row {}) \
                     with disjoint writes",
                    txns[0], txns[1], a.0, a.1 .0, b.0, b.1 .0
                );
                let ev = AnomalyEvent {
                    kind: AnomalyKind::WriteSkew,
                    table: tables[0].clone(),
                    txns,
                    detail,
                };
                if !new_events.contains(&ev) {
                    new_events.push(ev);
                    weseer_obs::incr("db.anomaly.write_skew");
                }
            }
        }
        st.committed.push(me);
        st.events.extend(new_events);
    }

    /// Discard the transaction's pending events and sets (abort path).
    pub fn rollback(&self, txn: TxnId) {
        self.state.lock().active.remove(&txn);
    }

    /// All promoted events, sorted and deduplicated.
    pub fn events(&self) -> Vec<AnomalyEvent> {
        let st = self.state.lock();
        let mut out = st.events.clone();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_update_promoted_only_on_commit() {
        let tr = AnomalyTracker::default();
        let (a, b) = (TxnId(1), TxnId(2));
        tr.begin(a, 0);
        tr.begin(b, 0);
        tr.record_read(a, "T", RowId(0), 0);
        tr.record_read(b, "T", RowId(0), 0);
        tr.record_write(a, "T", RowId(0), 0);
        tr.commit(a, 1);
        assert!(tr.events().is_empty());
        // b writes over a's commit (latest ts 1 > read ts 0) — pending.
        tr.record_write(b, "T", RowId(0), 1);
        assert!(tr.events().is_empty());
        tr.commit(b, 2);
        let evs = tr.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, AnomalyKind::LostUpdate);
        assert_eq!(evs[0].txns, vec![b]);
    }

    #[test]
    fn aborted_txn_reports_nothing() {
        let tr = AnomalyTracker::default();
        let b = TxnId(2);
        tr.begin(b, 0);
        tr.record_read(b, "T", RowId(0), 0);
        tr.record_write(b, "T", RowId(0), 3);
        tr.rollback(b);
        assert!(tr.events().is_empty());
    }

    #[test]
    fn write_skew_needs_both_antidependencies() {
        let tr = AnomalyTracker::default();
        let (a, b) = (TxnId(1), TxnId(2));
        tr.begin(a, 0);
        tr.begin(b, 0);
        // a reads row 0 + row 1, writes row 0; b reads both, writes row 1.
        tr.record_read(a, "Doctors", RowId(0), 0);
        tr.record_read(a, "Doctors", RowId(1), 0);
        tr.record_write(a, "Doctors", RowId(0), 0);
        tr.record_read(b, "Doctors", RowId(0), 0);
        tr.record_read(b, "Doctors", RowId(1), 0);
        tr.record_write(b, "Doctors", RowId(1), 0);
        tr.commit(a, 1);
        tr.commit(b, 2);
        let evs = tr.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, AnomalyKind::WriteSkew);
        assert_eq!(evs[0].txns, vec![a, b]);
    }

    #[test]
    fn serial_history_is_clean() {
        let tr = AnomalyTracker::default();
        let (a, b) = (TxnId(1), TxnId(2));
        tr.begin(a, 0);
        tr.record_read(a, "T", RowId(0), 0);
        tr.record_write(a, "T", RowId(0), 0);
        tr.commit(a, 1);
        // b starts after a committed: snapshot 1 sees a's write.
        tr.begin(b, 1);
        tr.record_read(b, "T", RowId(0), 1);
        tr.record_write(b, "T", RowId(0), 1);
        tr.commit(b, 2);
        assert!(tr.events().is_empty());
    }

    #[test]
    fn read_fracture_on_version_change() {
        let tr = AnomalyTracker::default();
        let a = TxnId(1);
        tr.begin(a, 0);
        tr.record_read(a, "T", RowId(0), 0);
        tr.record_read(a, "T", RowId(0), 2);
        tr.commit(a, 3);
        let evs = tr.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, AnomalyKind::ReadFracture);
    }
}

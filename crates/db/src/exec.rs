//! Statement execution with InnoDB-style locking.
//!
//! Locks are acquired "during index traversal" (paper Sec. V-C): the
//! executor picks an access path per table, locks what it visits —
//! row locks for unique point reads, next-key (row+gap) locks for scans,
//! gap locks for empty reads, a table lock when no index is usable, and
//! insert-intention + row locks for inserts — then evaluates residual
//! conditions.
//!
//! Execution uses a plan/try-lock/apply loop: under the storage mutex the
//! statement is planned and its lock targets computed; if every lock is
//! grantable without waiting the plan is applied atomically, otherwise the
//! storage mutex is dropped and the executor blocks on the first contended
//! lock (where deadlock detection and victim abort happen), then replans.

use crate::anomaly::AnomalyTracker;
use crate::lock::{AcquireOutcome, LockManager, LockMode, LockTarget};
use crate::mvcc::{snapshot_view, IsolationLevel};
use crate::storage::{index_key, Row, Storage, TableStore, Undo};
use crate::types::{DbError, KeyBound, KeyTuple, RowId, TxnId};
use std::collections::HashMap;
use std::sync::Arc;
use weseer_sqlir::ast::{Assignment, Select, Statement};
use weseer_sqlir::cond::{evaluate, Truth};
use weseer_sqlir::{CmpOp, Operand, TableDef, Value};

/// Concrete result of one statement.
#[derive(Debug, Clone, Default)]
pub struct ExecData {
    /// Result rows (`alias.column` → value), empty for writes.
    pub rows: Vec<Vec<(String, Value)>>,
    /// Rows affected by a write.
    pub affected: usize,
    /// Lock targets of the statement's final (applied) plan, in
    /// acquisition order — what the statement holds on top of earlier
    /// statements. Replay witnesses record these per step.
    pub locks: Vec<(LockTarget, LockMode)>,
    /// Rows this statement read from an MVCC snapshot (lock-free plain
    /// SELECTs under weak isolation): `(table, row id, version ts)`.
    /// Empty under serializable and for current reads.
    pub snapshot_reads: Vec<(String, RowId, u64)>,
}

/// MVCC execution context of one statement: the session's isolation
/// level, its transaction snapshot, and the database's anomaly tracker.
/// At [`IsolationLevel::Serializable`] the snapshot and tracker are inert
/// and execution is byte-identical to the pre-MVCC engine.
#[derive(Debug, Clone, Copy)]
pub struct MvccCtx<'a> {
    /// Session isolation level.
    pub iso: IsolationLevel,
    /// Transaction snapshot timestamp (used by repeatable-read and
    /// snapshot; read-committed re-snapshots per statement internally).
    pub txn_snapshot: u64,
    /// Anomaly tracker to feed snapshot reads and current writes.
    pub tracker: &'a AnomalyTracker,
}

/// Outcome of one non-blocking statement step ([`execute_nowait`]).
#[derive(Debug)]
pub enum StepResult {
    /// Statement completed and its effects were applied.
    Done(ExecData),
    /// The statement must wait before it can make progress. Nothing was
    /// applied, but locks granted during the attempt — and the recorded
    /// waits-for edge — remain held, exactly like a blocked InnoDB
    /// statement mid-traversal. Re-execute the statement after the
    /// blockers release to make progress.
    Blocked {
        /// Transactions currently blocking this statement (sorted).
        on: Vec<TxnId>,
        /// The contended lock target.
        target: LockTarget,
        /// The requested mode.
        mode: LockMode,
    },
}

/// A mutation to apply once all locks are granted.
#[derive(Debug)]
enum Op {
    Insert {
        table: String,
        row: Row,
    },
    Update {
        table: String,
        rid: RowId,
        new_row: Row,
    },
    Delete {
        table: String,
        rid: RowId,
    },
}

/// The full plan of one attempt.
#[derive(Debug, Default)]
struct Plan {
    locks: Vec<(LockTarget, LockMode)>,
    ops: Vec<Op>,
    data: ExecData,
    /// A non-lock error discovered during planning (duplicate key); locks
    /// collected so far are still acquired (InnoDB locks the conflicting
    /// row on duplicate-key errors).
    error: Option<DbError>,
}

impl Plan {
    fn lock(&mut self, t: LockTarget, m: LockMode) {
        // Dedup exact repeats to keep the try-lock pass short.
        if !self.locks.iter().any(|(lt, lm)| lt == &t && lm == &m) {
            self.locks.push((t, m));
        }
    }
}

/// A predicate usable for index selection once its right side is bound.
#[derive(Debug, Clone)]
struct BoundPred {
    column: String,
    op: CmpOp,
    value: Value,
}

/// How a table will be accessed.
#[derive(Debug, Clone)]
enum Access {
    PointUnique {
        index: String,
        key: KeyTuple,
    },
    EqScan {
        index: String,
        first: Value,
    },
    RangeScan {
        index: String,
        low: Option<(Value, bool)>,
        high: Option<(Value, bool)>,
    },
    FullScan,
}

/// Maximum plan/lock/replan iterations before giving up.
const MAX_REPLANS: usize = 10_000;

/// One row of an EXPLAIN result: how the engine would access one table
/// of the statement (paper Sec. V-D future work: "query the database for
/// its concrete execution plan").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainRow {
    /// Table alias.
    pub alias: String,
    /// Table name.
    pub table: String,
    /// Chosen index, `None` for a full table scan.
    pub index: Option<String>,
    /// Access kind: `const` (unique point), `ref` (equality scan),
    /// `range`, or `ALL` (MySQL EXPLAIN vocabulary).
    pub access: &'static str,
}

/// Produce the concrete access plan the executor would use, without
/// taking locks or touching data.
///
/// Join levels are planned in FROM/JOIN order with earlier aliases
/// considered bound (exactly how [`execute`] plans them).
pub fn explain(
    stmt: &Statement,
    params: &[Value],
    catalog: &weseer_sqlir::Catalog,
) -> Vec<ExplainRow> {
    let mut out = Vec::new();
    let levels: Vec<(String, String, Vec<weseer_sqlir::Cond>)> = match stmt {
        Statement::Select(s) => {
            let where_conds: Vec<weseer_sqlir::Cond> = s.where_clause.iter().cloned().collect();
            let mut levels = vec![(
                s.from.alias.clone(),
                s.from.table.clone(),
                where_conds.clone(),
            )];
            for j in &s.joins {
                let mut cs = vec![j.on.clone()];
                cs.extend(where_conds.iter().cloned());
                levels.push((j.table.alias.clone(), j.table.table.clone(), cs));
            }
            levels
        }
        Statement::Update(u) => vec![(
            u.table.clone(),
            u.table.clone(),
            u.where_clause.iter().cloned().collect(),
        )],
        Statement::Delete(d) => vec![(
            d.table.clone(),
            d.table.clone(),
            d.where_clause.iter().cloned().collect(),
        )],
        Statement::Insert(i) => {
            // Inserts locate their position through the primary index.
            return vec![ExplainRow {
                alias: i.table.clone(),
                table: i.table.clone(),
                index: Some("PRIMARY".to_string()),
                access: "const",
            }];
        }
    };

    let mut bound_aliases: Vec<String> = Vec::new();
    for (alias, table, conds) in levels {
        let Some(def) = catalog.table(&table) else {
            continue;
        };
        // Structural predicate binding: params/consts always resolve;
        // columns of earlier levels resolve at execution time.
        let mut preds: Vec<BoundPred> = Vec::new();
        for cond in &conds {
            for p in cond.top_predicates() {
                let o = p.oriented_for(&alias);
                if let Operand::Column { alias: a, column } = &o.lhs {
                    if a != &alias {
                        continue;
                    }
                    let resolvable = match &o.rhs {
                        Operand::Param(i) => params.get(*i).map(|v| !v.is_null()).unwrap_or(true),
                        Operand::Const(v) => !v.is_null(),
                        Operand::Column { alias: a2, .. } => bound_aliases.contains(a2),
                    };
                    if resolvable {
                        let value = match &o.rhs {
                            Operand::Param(i) => params.get(*i).cloned().unwrap_or(Value::Int(0)),
                            Operand::Const(v) => v.clone(),
                            Operand::Column { .. } => Value::Int(0), // structural only
                        };
                        preds.push(BoundPred {
                            column: column.clone(),
                            op: o.op,
                            value,
                        });
                    }
                }
            }
        }
        let access = choose_access(def, &preds);
        let (index, kind) = match &access {
            Access::PointUnique { index, .. } => (Some(index.clone()), "const"),
            Access::EqScan { index, .. } => (Some(index.clone()), "ref"),
            Access::RangeScan { index, .. } => (Some(index.clone()), "range"),
            Access::FullScan => (None, "ALL"),
        };
        out.push(ExplainRow {
            alias: alias.clone(),
            table,
            index,
            access: kind,
        });
        bound_aliases.push(alias);
    }
    out
}

/// Whether the statement is a lock-free snapshot read under `iso`:
/// a plain SELECT (no `FOR UPDATE`) at a weak isolation level. Writes and
/// locking reads stay current reads under 2PL at every level (InnoDB's
/// semantics).
fn is_snapshot_read(iso: IsolationLevel, stmt: &Statement) -> bool {
    match stmt {
        Statement::Select(s) => iso.uses_snapshots() && !s.for_update,
        _ => false,
    }
}

/// Execute `stmt` for `txn`, blocking on contended locks.
pub fn execute(
    storage: &parking_lot::Mutex<Storage>,
    locks: &LockManager,
    txn: TxnId,
    stmt: &Statement,
    params: &[Value],
    mvcc: MvccCtx<'_>,
) -> Result<ExecData, DbError> {
    if is_snapshot_read(mvcc.iso, stmt) {
        let st = storage.lock();
        return snapshot_select(&st, txn, stmt, params, mvcc);
    }
    for _ in 0..MAX_REPLANS {
        let blocked = {
            let mut st = storage.lock();
            let plan = plan_statement(&st, txn, stmt, params)?;
            let mut blocked = None;
            for (t, m) in &plan.locks {
                match locks.try_acquire(txn, t.clone(), *m) {
                    Ok(true) => {}
                    Ok(false) => {
                        blocked = Some((t.clone(), *m));
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            match blocked {
                None => {
                    if let Some(e) = plan.error {
                        return Err(e);
                    }
                    write_scan(&st, txn, &plan.ops, mvcc)?;
                    apply(&mut st, txn, plan.ops);
                    let mut data = plan.data;
                    data.locks = plan.locks;
                    return Ok(data);
                }
                Some(b) => b,
            }
        };
        // Block outside the storage mutex; deadlock detection happens here.
        locks.acquire(txn, blocked.0, blocked.1)?;
    }
    Err(DbError::Unsupported(
        "statement did not converge under contention".into(),
    ))
}

/// Execute `stmt` for `txn` without ever sleeping: either the statement
/// completes, or it reports exactly whom it would wait on (recording the
/// waits-for edge via [`LockManager::acquire_nowait`]), or the wait would
/// close a cycle and [`DbError::Deadlock`] surfaces instantly.
///
/// This is the replay engine's step function: single-threaded schedule
/// exploration drives interleavings statement by statement and needs
/// blocking and deadlock detection to be synchronous and deterministic.
pub fn execute_nowait(
    storage: &parking_lot::Mutex<Storage>,
    locks: &LockManager,
    txn: TxnId,
    stmt: &Statement,
    params: &[Value],
    mvcc: MvccCtx<'_>,
) -> Result<StepResult, DbError> {
    let mut st = storage.lock();
    if is_snapshot_read(mvcc.iso, stmt) {
        return snapshot_select(&st, txn, stmt, params, mvcc).map(StepResult::Done);
    }
    let plan = plan_statement(&st, txn, stmt, params)?;
    for (t, m) in &plan.locks {
        match locks.acquire_nowait(txn, t.clone(), *m)? {
            AcquireOutcome::Granted => {}
            AcquireOutcome::WouldBlock(on) => {
                return Ok(StepResult::Blocked {
                    on,
                    target: t.clone(),
                    mode: *m,
                });
            }
        }
    }
    if let Some(e) = plan.error {
        return Err(e);
    }
    write_scan(&st, txn, &plan.ops, mvcc)?;
    apply(&mut st, txn, plan.ops);
    let mut data = plan.data;
    data.locks = plan.locks;
    Ok(StepResult::Done(data))
}

/// Run a plain SELECT against a materialized MVCC snapshot of the
/// statement's tables: no locks, no waits-for edges, rows as of the
/// session's snapshot (plus its own uncommitted writes). Records every
/// read row with its version timestamp in the anomaly tracker and in
/// [`ExecData::snapshot_reads`].
fn snapshot_select(
    st: &Storage,
    txn: TxnId,
    stmt: &Statement,
    params: &[Value],
    mvcc: MvccCtx<'_>,
) -> Result<ExecData, DbError> {
    let s = match stmt {
        Statement::Select(s) => s,
        _ => unreachable!("snapshot_select is only called for SELECTs"),
    };
    // Read-committed re-snapshots at every statement; repeatable-read and
    // snapshot pin the transaction snapshot taken at `begin`.
    let snapshot = if mvcc.iso.txn_snapshot() {
        mvcc.txn_snapshot
    } else {
        st.mvcc.current_ts()
    };
    let tables = stmt.tables();
    let view = snapshot_view(st, txn, snapshot, &tables);
    let mut plan = plan_select(&view, s, params)?;
    weseer_obs::incr("db.mvcc.snapshot_reads");

    // Row-level read set: extract each level's primary key from the
    // result rows and resolve it to a row id in the view.
    let mut levels: Vec<(String, String)> = vec![(s.from.alias.clone(), s.from.table.clone())];
    for j in &s.joins {
        levels.push((j.table.alias.clone(), j.table.table.clone()));
    }
    let mut reads: Vec<(String, RowId)> = Vec::new();
    for row in &plan.data.rows {
        for (alias, table) in &levels {
            let def = &view.table(table).def;
            let key: Option<KeyTuple> = def
                .primary_key
                .iter()
                .map(|pk| {
                    let name = format!("{alias}.{pk}");
                    row.iter().find(|(c, _)| c == &name).map(|(_, v)| v.clone())
                })
                .collect();
            let Some(key) = key else { continue };
            if let Some(rid) = view.table(table).lookup(&def.primary_index().name, &key) {
                if !reads.contains(&(table.clone(), rid)) {
                    reads.push((table.clone(), rid));
                }
            }
        }
    }
    reads.sort();
    let own = st.undo.get(&txn);
    for (table, rid) in reads {
        // The session's own uncommitted writes have no committed version
        // timestamp; reading them back is not a snapshot observation.
        let is_own = own.is_some_and(|log| {
            log.iter().any(|u| {
                let (t, r) = match u {
                    Undo::Insert { table, rid }
                    | Undo::Update { table, rid, .. }
                    | Undo::Delete { table, rid, .. } => (table, rid),
                };
                t == &table && *r == rid
            })
        });
        if is_own {
            continue;
        }
        let ts = st
            .mvcc
            .visible(&table, rid, snapshot)
            .map(|v| v.ts)
            .unwrap_or(0);
        mvcc.tracker.record_read(txn, &table, rid, ts);
        if weseer_obs::timeline::enabled() {
            weseer_obs::timeline::instant(
                "mvcc.snapshot_read",
                "db",
                &[
                    ("txn", txn.to_string()),
                    ("table", table.clone()),
                    ("row", rid.0.to_string()),
                    ("version_ts", ts.to_string()),
                    ("snapshot", snapshot.to_string()),
                ],
            );
        }
        plan.data.snapshot_reads.push((table, rid, ts));
    }
    Ok(plan.data)
}

/// Pre-apply scan over a write plan's row operations (all locks held,
/// nothing applied yet): enforce snapshot isolation's first-updater-wins
/// rule and feed current writes to the anomaly tracker. Statement-atomic:
/// a [`DbError::WriteConflict`] aborts before any op is applied.
fn write_scan(st: &Storage, txn: TxnId, ops: &[Op], mvcc: MvccCtx<'_>) -> Result<(), DbError> {
    if !mvcc.iso.uses_snapshots() {
        return Ok(());
    }
    let own = st.undo.get(&txn);
    for op in ops {
        let (table, rid) = match op {
            Op::Update { table, rid, .. } | Op::Delete { table, rid } => (table, *rid),
            // Fresh inserts have no prior versions to conflict with.
            Op::Insert { .. } => continue,
        };
        let already_mine = own.is_some_and(|log| {
            log.iter().any(|u| {
                let (t, r) = match u {
                    Undo::Insert { table, rid }
                    | Undo::Update { table, rid, .. }
                    | Undo::Delete { table, rid, .. } => (table, rid),
                };
                t == table && *r == rid
            })
        });
        let latest = st.mvcc.latest_ts(table, rid);
        if mvcc.iso == IsolationLevel::Snapshot && !already_mine && latest > mvcc.txn_snapshot {
            weseer_obs::incr("db.mvcc.write_conflicts");
            if weseer_obs::timeline::enabled() {
                weseer_obs::timeline::instant(
                    "mvcc.write_conflict",
                    "db",
                    &[
                        ("txn", txn.to_string()),
                        ("table", table.clone()),
                        ("row", rid.0.to_string()),
                        ("latest_ts", latest.to_string()),
                        ("snapshot", mvcc.txn_snapshot.to_string()),
                    ],
                );
            }
            return Err(DbError::WriteConflict {
                table: table.clone(),
            });
        }
        mvcc.tracker.record_write(txn, table, rid, latest);
    }
    Ok(())
}

fn apply(st: &mut Storage, txn: TxnId, ops: Vec<Op>) {
    for op in ops {
        match op {
            Op::Insert { table, row } => {
                let rid = st.table_mut(&table).insert(row);
                st.log(txn, Undo::Insert { table, rid });
            }
            Op::Update {
                table,
                rid,
                new_row,
            } => {
                if let Some(old) = st.table_mut(&table).update(rid, new_row) {
                    st.log(txn, Undo::Update { table, rid, old });
                }
            }
            Op::Delete { table, rid } => {
                if let Some(old) = st.table_mut(&table).delete(rid) {
                    st.log(txn, Undo::Delete { table, rid, old });
                }
            }
        }
    }
}

fn plan_statement(
    st: &Storage,
    _txn: TxnId,
    stmt: &Statement,
    params: &[Value],
) -> Result<Plan, DbError> {
    match stmt {
        Statement::Select(s) => plan_select(st, s, params),
        Statement::Update(_) | Statement::Delete(_) => plan_update_delete(st, stmt, params),
        Statement::Insert(_) => plan_insert(st, stmt, params),
    }
}

// ---------------------------------------------------------------------------
// shared scan machinery
// ---------------------------------------------------------------------------

type Bindings = HashMap<String, (String, Row)>; // alias → (table, row)
type TableDefs = HashMap<String, Arc<TableDef>>; // table name → definition

fn resolve(
    op: &Operand,
    bindings: &Bindings,
    tables: &TableDefs,
    params: &[Value],
) -> Option<Value> {
    match op {
        Operand::Param(i) => params.get(*i).cloned(),
        Operand::Const(v) => Some(v.clone()),
        Operand::Column { alias, column } => {
            let (table, row) = bindings.get(alias)?;
            let def = tables.get(table)?;
            def.col_pos(column).map(|p| row[p].clone())
        }
    }
}

/// Predicates on `alias` whose other side is resolvable right now.
fn bound_preds(
    conds: &[&weseer_sqlir::Cond],
    alias: &str,
    bindings: &Bindings,
    tables: &TableDefs,
    params: &[Value],
) -> Vec<BoundPred> {
    let mut out = Vec::new();
    for cond in conds {
        for p in cond.top_predicates() {
            let o = p.oriented_for(alias);
            if let Operand::Column { alias: a, column } = &o.lhs {
                if a == alias {
                    if let Some(v) = resolve(&o.rhs, bindings, tables, params) {
                        if !v.is_null() {
                            out.push(BoundPred {
                                column: column.clone(),
                                op: o.op,
                                value: v,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

fn choose_access(def: &TableDef, preds: &[BoundPred]) -> Access {
    // 1. A unique index with equality on every key column → point lookup.
    for idx in &def.indexes {
        if !idx.unique {
            continue;
        }
        let key: Option<KeyTuple> = idx
            .columns
            .iter()
            .map(|c| {
                preds
                    .iter()
                    .find(|p| p.op == CmpOp::Eq && &p.column == c)
                    .map(|p| p.value.clone())
            })
            .collect();
        if let Some(key) = key {
            return Access::PointUnique {
                index: idx.name.clone(),
                key,
            };
        }
    }
    // 2. Any index with equality on its leading column → equality scan.
    for idx in &def.indexes {
        if let Some(lead) = idx.columns.first() {
            if let Some(p) = preds
                .iter()
                .find(|p| p.op == CmpOp::Eq && &p.column == lead)
            {
                return Access::EqScan {
                    index: idx.name.clone(),
                    first: p.value.clone(),
                };
            }
        }
    }
    // 3. Any index with a range predicate on its leading column.
    for idx in &def.indexes {
        if let Some(lead) = idx.columns.first() {
            let mut low = None;
            let mut high = None;
            for p in preds.iter().filter(|p| &p.column == lead) {
                match p.op {
                    CmpOp::Gt => low = Some((p.value.clone(), true)),
                    CmpOp::Ge => low = Some((p.value.clone(), false)),
                    CmpOp::Lt => high = Some((p.value.clone(), true)),
                    CmpOp::Le => high = Some((p.value.clone(), false)),
                    _ => {}
                }
            }
            if low.is_some() || high.is_some() {
                return Access::RangeScan {
                    index: idx.name.clone(),
                    low,
                    high,
                };
            }
        }
    }
    Access::FullScan
}

/// Candidate rows for an access path, plus the key that bounds the scanned
/// region (for the terminating gap lock).
fn fetch(ts: &TableStore, access: &Access) -> (Vec<(String, KeyTuple, RowId)>, Option<KeyBound>) {
    match access {
        Access::PointUnique { index, key } => {
            let tree = ts.btree(index);
            // Unique index keys may be stored with the PK suffix when
            // secondary; compare on the prefix.
            let mut matches = Vec::new();
            let mut succ = None;
            for (k, rid) in tree.range(key.clone()..) {
                if k.len() >= key.len() && &k[..key.len()] == key.as_slice() {
                    matches.push((index.clone(), k.clone(), *rid));
                } else {
                    succ = Some(KeyBound::Key(k.clone()));
                    break;
                }
            }
            let succ = succ.or(Some(KeyBound::Supremum));
            (matches, succ)
        }
        Access::EqScan { index, first } => {
            let tree = ts.btree(index);
            let start: KeyTuple = vec![first.clone()];
            let mut matches = Vec::new();
            let mut succ = None;
            for (k, rid) in tree.range(start..) {
                if k.first() == Some(first) {
                    matches.push((index.clone(), k.clone(), *rid));
                } else {
                    succ = Some(KeyBound::Key(k.clone()));
                    break;
                }
            }
            (matches, succ.or(Some(KeyBound::Supremum)))
        }
        Access::RangeScan { index, low, high } => {
            let tree = ts.btree(index);
            let mut matches = Vec::new();
            let mut succ = None;
            let start: KeyTuple = match low {
                Some((v, _)) => vec![v.clone()],
                None => Vec::new(),
            };
            for (k, rid) in tree.range(start..) {
                let lead = k.first().cloned().unwrap_or(Value::Null);
                if let Some((lo, strict)) = low {
                    let ord = lead.total_cmp(lo);
                    if ord == std::cmp::Ordering::Less
                        || (*strict && ord == std::cmp::Ordering::Equal)
                    {
                        continue;
                    }
                }
                if let Some((hi, strict)) = high {
                    let ord = lead.total_cmp(hi);
                    if ord == std::cmp::Ordering::Greater
                        || (*strict && ord == std::cmp::Ordering::Equal)
                    {
                        succ = Some(KeyBound::Key(k.clone()));
                        break;
                    }
                }
                matches.push((index.clone(), k.clone(), *rid));
            }
            (matches, succ.or(Some(KeyBound::Supremum)))
        }
        Access::FullScan => {
            let tree = ts.btree(&ts.def.primary_index().name);
            let matches = tree
                .iter()
                .map(|(k, rid)| (ts.def.primary_index().name.clone(), k.clone(), *rid))
                .collect();
            (matches, None)
        }
    }
}

/// Emit the locks of one table access (Alg. 2's shared/exclusive lock
/// generation, executed for real).
fn lock_access(
    plan: &mut Plan,
    ts: &TableStore,
    access: &Access,
    matches: &[(String, KeyTuple, RowId)],
    succ: Option<&KeyBound>,
    exclusive: bool,
) {
    let mode = if exclusive {
        LockMode::Exclusive
    } else {
        LockMode::Shared
    };
    let table = ts.def.name.clone();
    if !matches!(access, Access::FullScan) {
        // Row access announces itself at table level so full scans
        // (table S/X) and row operations conflict properly.
        let intent = if exclusive {
            LockMode::IntentionExclusive
        } else {
            LockMode::IntentionShared
        };
        plan.lock(
            LockTarget::Table {
                table: table.clone(),
            },
            intent,
        );
    }
    match access {
        Access::FullScan => {
            plan.lock(LockTarget::Table { table }, mode);
        }
        Access::PointUnique { index, .. } => {
            let point = matches.len() == 1;
            for (_, key, rid) in matches {
                plan.lock(
                    LockTarget::Row {
                        table: table.clone(),
                        index: index.clone(),
                        key: key.clone(),
                    },
                    mode,
                );
                if !point {
                    plan.lock(
                        LockTarget::Gap {
                            table: table.clone(),
                            index: index.clone(),
                            upper: KeyBound::Key(key.clone()),
                        },
                        mode,
                    );
                }
                lock_primary_for_secondary(plan, ts, index, *rid, mode);
            }
            if matches.is_empty() {
                if let Some(succ) = succ {
                    plan.lock(
                        LockTarget::Gap {
                            table: table.clone(),
                            index: index.clone(),
                            upper: succ.clone(),
                        },
                        mode,
                    );
                }
            }
        }
        Access::EqScan { index, .. } | Access::RangeScan { index, .. } => {
            for (_, key, rid) in matches {
                // Next-key: the record and the gap before it.
                plan.lock(
                    LockTarget::Row {
                        table: table.clone(),
                        index: index.clone(),
                        key: key.clone(),
                    },
                    mode,
                );
                plan.lock(
                    LockTarget::Gap {
                        table: table.clone(),
                        index: index.clone(),
                        upper: KeyBound::Key(key.clone()),
                    },
                    mode,
                );
                lock_primary_for_secondary(plan, ts, index, *rid, mode);
            }
            // Terminating gap: protects the scanned range's tail (and the
            // whole range when the result is empty) — this is what turns
            // empty SELECTs into insert-blocking range locks (d3, d7, …).
            if let Some(succ) = succ {
                plan.lock(
                    LockTarget::Gap {
                        table: table.clone(),
                        index: index.clone(),
                        upper: succ.clone(),
                    },
                    mode,
                );
            }
        }
    }
}

fn lock_primary_for_secondary(
    plan: &mut Plan,
    ts: &TableStore,
    index: &str,
    rid: RowId,
    mode: LockMode,
) {
    let pri = ts.def.primary_index();
    if index == pri.name {
        return;
    }
    if let Some(row) = ts.heap.get(&rid) {
        let key = index_key(&ts.def, pri, row);
        plan.lock(
            LockTarget::Row {
                table: ts.def.name.clone(),
                index: pri.name.clone(),
                key,
            },
            mode,
        );
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

fn plan_select(st: &Storage, s: &Select, params: &[Value]) -> Result<Plan, DbError> {
    let stmt = Statement::Select(s.clone());
    let tables = table_map(st, &stmt)?;
    let mut plan = Plan::default();
    let exclusive = s.for_update;

    // Conditions usable per level: the FROM level sees WHERE; each JOIN
    // level sees its ON plus WHERE.
    let full_cond = stmt.query_condition();
    let mut levels: Vec<(String, String, Vec<&weseer_sqlir::Cond>)> = Vec::new();
    let where_conds: Vec<&weseer_sqlir::Cond> = s.where_clause.iter().collect();
    levels.push((
        s.from.alias.clone(),
        s.from.table.clone(),
        where_conds.clone(),
    ));
    for j in &s.joins {
        let mut cs: Vec<&weseer_sqlir::Cond> = vec![&j.on];
        cs.extend(where_conds.iter().copied());
        levels.push((j.table.alias.clone(), j.table.table.clone(), cs));
    }

    let mut bindings: Bindings = HashMap::new();
    let mut out_rows: Vec<Vec<(String, Value)>> = Vec::new();
    scan_levels(
        st,
        &tables,
        &levels,
        0,
        params,
        exclusive,
        &mut bindings,
        &mut plan,
        &mut |bindings, tables| {
            // Final filter: the complete query condition.
            let resolver = |alias: &str, column: &str| -> Option<Value> {
                let (table, row) = bindings.get(alias)?;
                let def = tables.get(table)?;
                def.col_pos(column).map(|p| row[p].clone())
            };
            let pass = match &full_cond {
                None => true,
                Some(c) => {
                    matches!(evaluate(c, &resolver, params), Some(Truth::True))
                }
            };
            if pass {
                let mut row_out = Vec::new();
                for (alias, _, _) in &levels {
                    let (table, row) = &bindings[alias];
                    let def = &tables[table];
                    for (i, col) in def.columns.iter().enumerate() {
                        row_out.push((format!("{alias}.{}", col.name), row[i].clone()));
                    }
                }
                out_rows.push(row_out);
            }
        },
    );
    plan.data.rows = out_rows;
    Ok(plan)
}

/// Recursive nested-loop join; calls `emit` for every fully bound tuple.
#[allow(clippy::too_many_arguments)]
fn scan_levels(
    st: &Storage,
    tables: &TableDefs,
    levels: &[(String, String, Vec<&weseer_sqlir::Cond>)],
    depth: usize,
    params: &[Value],
    exclusive: bool,
    bindings: &mut Bindings,
    plan: &mut Plan,
    emit: &mut dyn FnMut(&Bindings, &TableDefs),
) {
    if depth == levels.len() {
        emit(bindings, tables);
        return;
    }
    let (alias, table, conds) = &levels[depth];
    let ts = st.table(table);
    let preds = bound_preds(conds, alias, bindings, tables, params);
    let access = choose_access(&ts.def, &preds);
    let (matches, succ) = fetch(ts, &access);
    lock_access(plan, ts, &access, &matches, succ.as_ref(), exclusive);
    for (_, _, rid) in &matches {
        let Some(row) = ts.heap.get(rid) else {
            continue;
        };
        // Residual filter on this level's bound predicates.
        let def = &ts.def;
        let ok = preds.iter().all(|p| {
            def.col_pos(&p.column)
                .and_then(|pos| row[pos].sql_cmp(&p.value))
                .is_some_and(|ord| p.op.eval(ord))
        });
        if !ok {
            continue;
        }
        bindings.insert(alias.clone(), (table.clone(), row.clone()));
        scan_levels(
            st,
            tables,
            levels,
            depth + 1,
            params,
            exclusive,
            bindings,
            plan,
            emit,
        );
        bindings.remove(alias);
    }
}

fn table_map(st: &Storage, stmt: &Statement) -> Result<TableDefs, DbError> {
    let mut out = HashMap::new();
    for t in stmt.tables() {
        let ts = st
            .tables
            .get(&t)
            .ok_or_else(|| DbError::Schema(format!("unknown table {t}")))?;
        out.insert(t, ts.def.clone());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE
// ---------------------------------------------------------------------------

fn plan_update_delete(st: &Storage, stmt: &Statement, params: &[Value]) -> Result<Plan, DbError> {
    let (table, where_clause, sets): (&str, _, Option<&Vec<Assignment>>) = match stmt {
        Statement::Update(u) => (u.table.as_str(), u.where_clause.clone(), Some(&u.sets)),
        Statement::Delete(d) => (d.table.as_str(), d.where_clause.clone(), None),
        _ => unreachable!(),
    };
    let tables = table_map(st, stmt)?;
    let ts = st.table(table);
    let def = ts.def.clone();
    let mut plan = Plan::default();

    let conds: Vec<&weseer_sqlir::Cond> = where_clause.iter().collect();
    let preds = bound_preds(&conds, table, &HashMap::new(), &tables, params);
    let access = choose_access(&def, &preds);
    let (matches, succ) = fetch(ts, &access);
    lock_access(&mut plan, ts, &access, &matches, succ.as_ref(), true);

    let mut seen: Vec<RowId> = Vec::new();
    for (_, _, rid) in &matches {
        if seen.contains(rid) {
            continue;
        }
        let Some(row) = ts.heap.get(rid) else {
            continue;
        };
        // Full residual evaluation.
        let resolver = |alias: &str, column: &str| -> Option<Value> {
            if alias != table {
                return None;
            }
            def.col_pos(column).map(|p| row[p].clone())
        };
        let pass = match &where_clause {
            None => true,
            Some(c) => matches!(evaluate(c, &resolver, params), Some(Truth::True)),
        };
        if !pass {
            continue;
        }
        seen.push(*rid);
        // X lock on the primary entry.
        let pri = def.primary_index();
        let pk = index_key(&def, pri, row);
        plan.lock(
            LockTarget::Row {
                table: table.to_string(),
                index: pri.name.clone(),
                key: pk,
            },
            LockMode::Exclusive,
        );
        match sets {
            Some(sets) => {
                let mut new_row = row.clone();
                for a in sets {
                    let v = resolve(&a.value, &HashMap::new(), &tables, params)
                        .or_else(|| match &a.value {
                            Operand::Column { alias, column } if alias == table => {
                                def.col_pos(column).map(|p| row[p].clone())
                            }
                            _ => None,
                        })
                        .ok_or_else(|| {
                            DbError::Unsupported(format!("unresolvable SET value {:?}", a.value))
                        })?;
                    let pos = def
                        .col_pos(&a.column)
                        .ok_or_else(|| DbError::Schema(format!("unknown column {}", a.column)))?;
                    new_row[pos] = v;
                }
                // X locks on modified secondary entries (old and new).
                for idx in def.secondary_indexes() {
                    let old_key = index_key(&def, idx, row);
                    let new_key = index_key(&def, idx, &new_row);
                    if old_key != new_key {
                        for key in [old_key, new_key] {
                            plan.lock(
                                LockTarget::Row {
                                    table: table.to_string(),
                                    index: idx.name.clone(),
                                    key,
                                },
                                LockMode::Exclusive,
                            );
                        }
                    }
                }
                plan.ops.push(Op::Update {
                    table: table.to_string(),
                    rid: *rid,
                    new_row,
                });
            }
            None => {
                // DELETE: X lock every index entry of the row.
                for idx in def.secondary_indexes() {
                    let key = index_key(&def, idx, row);
                    plan.lock(
                        LockTarget::Row {
                            table: table.to_string(),
                            index: idx.name.clone(),
                            key,
                        },
                        LockMode::Exclusive,
                    );
                }
                plan.ops.push(Op::Delete {
                    table: table.to_string(),
                    rid: *rid,
                });
            }
        }
        plan.data.affected += 1;
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// INSERT
// ---------------------------------------------------------------------------

fn plan_insert(st: &Storage, stmt: &Statement, params: &[Value]) -> Result<Plan, DbError> {
    let ins = match stmt {
        Statement::Insert(i) => i,
        _ => unreachable!(),
    };
    let tables = table_map(st, stmt)?;
    let ts = st.table(&ins.table);
    let def = ts.def.clone();
    let mut plan = Plan::default();

    // Build the new row.
    let columns: Vec<String> = if ins.columns.is_empty() {
        def.columns.iter().map(|c| c.name.clone()).collect()
    } else {
        ins.columns.clone()
    };
    if columns.len() != ins.values.len() {
        return Err(DbError::Schema(format!(
            "INSERT into {} has {} columns but {} values",
            ins.table,
            columns.len(),
            ins.values.len()
        )));
    }
    let mut row: Row = vec![Value::Null; def.columns.len()];
    for (c, vexpr) in columns.iter().zip(&ins.values) {
        let pos = def
            .col_pos(c)
            .ok_or_else(|| DbError::Schema(format!("unknown column {c}")))?;
        row[pos] = resolve(vexpr, &HashMap::new(), &tables, params)
            .ok_or_else(|| DbError::Unsupported("unresolvable INSERT value".into()))?;
    }

    // Uniqueness checks first (primary + unique secondaries).
    for idx in def.indexes.iter().filter(|i| i.unique) {
        let logical: KeyTuple = idx
            .columns
            .iter()
            .map(|c| row[def.col_pos(c).expect("validated")].clone())
            .collect();
        let dup = ts
            .btree(&idx.name)
            .range(logical.clone()..)
            .next()
            .filter(|(k, _)| k.len() >= logical.len() && k[..logical.len()] == logical[..])
            .map(|(k, rid)| (k.clone(), *rid));
        if let Some((dup_key, dup_rid)) = dup {
            if !ins.on_duplicate.is_empty() {
                return plan_upsert_update(st, ins, &def, dup_rid, params, plan);
            }
            // InnoDB takes an S lock on the conflicting record before
            // reporting the duplicate — itself a deadlock ingredient.
            plan.lock(
                LockTarget::Row {
                    table: ins.table.clone(),
                    index: idx.name.clone(),
                    key: dup_key,
                },
                LockMode::Shared,
            );
            plan.error = Some(DbError::DuplicateKey {
                index: idx.name.clone(),
            });
            return Ok(plan);
        }
    }

    // Insert-intention lock on the gap receiving the key, per index, then
    // an X record lock on the new entry.
    plan.lock(
        LockTarget::Table {
            table: ins.table.clone(),
        },
        LockMode::IntentionExclusive,
    );
    for idx in &def.indexes {
        let key = index_key(&def, idx, &row);
        let succ = ts
            .btree(&idx.name)
            .range(key.clone()..)
            .next()
            .map(|(k, _)| KeyBound::Key(k.clone()))
            .unwrap_or(KeyBound::Supremum);
        plan.lock(
            LockTarget::Gap {
                table: ins.table.clone(),
                index: idx.name.clone(),
                upper: succ,
            },
            LockMode::InsertIntention,
        );
        plan.lock(
            LockTarget::Row {
                table: ins.table.clone(),
                index: idx.name.clone(),
                key,
            },
            LockMode::Exclusive,
        );
    }
    plan.ops.push(Op::Insert {
        table: ins.table.clone(),
        row,
    });
    plan.data.affected = 1;
    Ok(plan)
}

/// The UPDATE arm of `INSERT ... ON DUPLICATE KEY UPDATE` (fix f2).
fn plan_upsert_update(
    st: &Storage,
    ins: &weseer_sqlir::Insert,
    def: &Arc<TableDef>,
    rid: RowId,
    params: &[Value],
    mut plan: Plan,
) -> Result<Plan, DbError> {
    let ts = st.table(&ins.table);
    let Some(row) = ts.heap.get(&rid) else {
        return Ok(plan);
    };
    let pri = def.primary_index();
    let pk = index_key(def, pri, row);
    plan.lock(
        LockTarget::Row {
            table: ins.table.clone(),
            index: pri.name.clone(),
            key: pk,
        },
        LockMode::Exclusive,
    );
    let mut new_row = row.clone();
    let tables: TableDefs = [(ins.table.clone(), def.clone())].into_iter().collect();
    for a in &ins.on_duplicate {
        let v = resolve(&a.value, &HashMap::new(), &tables, params)
            .ok_or_else(|| DbError::Unsupported("unresolvable UPSERT value".into()))?;
        let pos = def
            .col_pos(&a.column)
            .ok_or_else(|| DbError::Schema(format!("unknown column {}", a.column)))?;
        new_row[pos] = v;
    }
    plan.ops.push(Op::Update {
        table: ins.table.clone(),
        rid,
        new_row,
    });
    plan.data.affected = 2; // MySQL convention for upsert-as-update
    Ok(plan)
}

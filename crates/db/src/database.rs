//! The database facade: shared handle, sessions, transactions, statistics.
//!
//! [`Database`] is cheap to clone and thread-safe; each client thread opens
//! its own [`Session`]. Sessions implement the concolic crate's
//! [`SqlBackend`] so the same database serves both trace collection (under
//! the ORM + tracing driver) and the multi-threaded performance harness
//! (paper Figs. 10/11).

use crate::anomaly::{AnomalyEvent, AnomalyTracker};
use crate::exec::{self, ExecData, MvccCtx};
use crate::lock::{LockManager, LockStats};
use crate::mvcc::IsolationLevel;
use crate::storage::{Row, Storage};
use crate::types::{DbError, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use weseer_concolic::{BackendError, ExecResult, SqlBackend};
use weseer_sqlir::{Catalog, Statement, Value};

/// Aggregate counters (paper Sec. VII-D reports aborts/second).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back (any reason).
    pub rollbacks: u64,
    /// Rollbacks caused by deadlock victim selection.
    pub deadlock_aborts: u64,
    /// Rollbacks caused by lock-wait timeouts.
    pub timeout_aborts: u64,
    /// Rollbacks caused by snapshot isolation's first-updater-wins rule.
    pub write_conflict_aborts: u64,
    /// Statements executed.
    pub statements: u64,
    /// Lock manager counters.
    pub locks: LockStats,
}

#[derive(Debug, Default)]
struct Counters {
    commits: AtomicU64,
    rollbacks: AtomicU64,
    deadlock_aborts: AtomicU64,
    timeout_aborts: AtomicU64,
    write_conflict_aborts: AtomicU64,
    statements: AtomicU64,
}

/// Encode an [`IsolationLevel`] into an atomic cell (index into
/// [`IsolationLevel::ALL`]).
fn iso_to_u64(level: IsolationLevel) -> u64 {
    IsolationLevel::ALL
        .iter()
        .position(|l| *l == level)
        .expect("level is in ALL") as u64
}

fn iso_from_u64(v: u64) -> IsolationLevel {
    IsolationLevel::ALL[v as usize]
}

#[derive(Debug)]
struct Inner {
    catalog: Catalog,
    storage: Mutex<Storage>,
    locks: LockManager,
    counters: Counters,
    next_txn: AtomicU64,
    id_gens: Mutex<HashMap<String, i64>>,
    /// Simulated per-statement latency in nanoseconds (client↔server
    /// round trip). Aborted transactions waste this work — the mechanism
    /// behind the paper's Fig. 10/11 degradation.
    statement_delay_ns: AtomicU64,
    /// Default isolation for [`Database::session`] (index into
    /// [`IsolationLevel::ALL`]); serializable unless overridden.
    default_isolation: AtomicU64,
    /// Weak-isolation anomaly observations ([`crate::anomaly`]).
    tracker: AnomalyTracker,
}

/// A shared in-memory database.
#[derive(Debug, Clone)]
pub struct Database {
    inner: Arc<Inner>,
}

impl Database {
    /// Create an empty database for `catalog` with the default 5 s lock
    /// wait timeout.
    pub fn new(catalog: Catalog) -> Self {
        Database::with_timeout(catalog, Duration::from_secs(5))
    }

    /// Create a database with a custom lock-wait timeout (MySQL's
    /// `innodb_lock_wait_timeout`).
    pub fn with_timeout(catalog: Catalog, wait_timeout: Duration) -> Self {
        let storage = Storage::new(&catalog);
        Database {
            inner: Arc::new(Inner {
                catalog,
                storage: Mutex::new(storage),
                locks: LockManager::new(wait_timeout),
                counters: Counters::default(),
                next_txn: AtomicU64::new(1),
                id_gens: Mutex::new(HashMap::new()),
                statement_delay_ns: AtomicU64::new(0),
                default_isolation: AtomicU64::new(iso_to_u64(IsolationLevel::Serializable)),
                tracker: AnomalyTracker::default(),
            }),
        }
    }

    /// Simulate a per-statement client↔server round trip. Zero (the
    /// default) disables the delay.
    pub fn set_statement_delay(&self, d: Duration) {
        self.inner
            .statement_delay_ns
            .store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// Open a session at the database's default isolation level
    /// (serializable unless [`Database::set_default_isolation`] changed it).
    pub fn session(&self) -> Session {
        self.session_at(self.default_isolation())
    }

    /// Open a session at an explicit isolation level.
    pub fn session_at(&self, isolation: IsolationLevel) -> Session {
        Session {
            db: self.clone(),
            txn: None,
            isolation,
            snapshot: 0,
        }
    }

    /// The default isolation level for new sessions.
    pub fn default_isolation(&self) -> IsolationLevel {
        iso_from_u64(self.inner.default_isolation.load(Ordering::Relaxed))
    }

    /// Change the default isolation level for new sessions (existing
    /// sessions keep theirs). Forks inherit the default.
    pub fn set_default_isolation(&self, level: IsolationLevel) {
        self.inner
            .default_isolation
            .store(iso_to_u64(level), Ordering::Relaxed);
    }

    /// Weak-isolation anomalies observed in committed transactions so
    /// far, sorted and deduplicated ([`crate::anomaly`]). Always empty
    /// for purely serializable histories.
    pub fn anomaly_events(&self) -> Vec<AnomalyEvent> {
        self.inner.tracker.events()
    }

    /// Current counters.
    pub fn stats(&self) -> DbStats {
        let c = &self.inner.counters;
        DbStats {
            commits: c.commits.load(Ordering::Relaxed),
            rollbacks: c.rollbacks.load(Ordering::Relaxed),
            deadlock_aborts: c.deadlock_aborts.load(Ordering::Relaxed),
            timeout_aborts: c.timeout_aborts.load(Ordering::Relaxed),
            write_conflict_aborts: c.write_conflict_aborts.load(Ordering::Relaxed),
            statements: c.statements.load(Ordering::Relaxed),
            locks: self.inner.locks.stats(),
        }
    }

    /// Draw the next value from a per-table id sequence (the ORM's
    /// identifier generator).
    pub fn next_id(&self, table: &str) -> i64 {
        let mut gens = self.inner.id_gens.lock();
        let e = gens.entry(table.to_string()).or_insert(0);
        *e += 1;
        *e
    }

    /// Advance a table's id sequence to at least `floor` (after seeding).
    pub fn bump_id(&self, table: &str, floor: i64) {
        let mut gens = self.inner.id_gens.lock();
        let e = gens.entry(table.to_string()).or_insert(0);
        *e = (*e).max(floor);
    }

    /// Seed rows directly, outside any transaction (test/bootstrap setup).
    ///
    /// # Panics
    /// Panics on unknown table or arity mismatch.
    pub fn seed(&self, table: &str, rows: Vec<Row>) {
        let mut st = self.inner.storage.lock();
        let t = st.table_mut(table);
        let width = t.def.columns.len();
        for row in rows {
            assert_eq!(row.len(), width, "seed row arity mismatch for {table}");
            t.insert(row);
        }
    }

    /// Snapshot a table's rows in primary-key order (test introspection).
    pub fn dump(&self, table: &str) -> Vec<Row> {
        let st = self.inner.storage.lock();
        let t = st.table(table);
        t.btree(&t.def.primary_index().name)
            .values()
            .filter_map(|rid| t.heap.get(rid).cloned())
            .collect()
    }

    /// Number of rows in a table.
    pub fn count(&self, table: &str) -> usize {
        self.inner.storage.lock().table(table).len()
    }

    /// Sorted snapshot of the lock manager's waits-for edges
    /// `(waiter, holder)` — surfaced for replay witnesses and diagnostics.
    pub fn wait_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        self.inner.locks.wait_for_edges()
    }

    /// An independent copy of this database's *committed* state: same
    /// catalog, committed storage and id sequences, fresh lock manager,
    /// counters, and anomaly tracker, transaction ids continuing from this
    /// database's next id.
    ///
    /// The replay engine prepares a database once per report and forks it
    /// per explored schedule, so every branch starts from bit-identical
    /// state. In-flight transactions of the source are rolled back *in the
    /// fork* ([`Storage::reset_in_flight`]): their locks and waits-for
    /// edges live in the source's lock manager and cannot transfer, so
    /// carrying their uncommitted heap data or undo logs across would
    /// leave the fork with orphaned dirty rows and a wait-for graph that
    /// lies about them.
    pub fn fork(&self) -> Database {
        let mut storage = self.inner.storage.lock().clone();
        storage.reset_in_flight();
        let id_gens = self.inner.id_gens.lock().clone();
        Database {
            inner: Arc::new(Inner {
                catalog: self.inner.catalog.clone(),
                storage: Mutex::new(storage),
                locks: LockManager::new(self.inner.locks.wait_timeout),
                counters: Counters::default(),
                next_txn: AtomicU64::new(self.inner.next_txn.load(Ordering::Relaxed)),
                id_gens: Mutex::new(id_gens),
                statement_delay_ns: AtomicU64::new(0),
                default_isolation: AtomicU64::new(
                    self.inner.default_isolation.load(Ordering::Relaxed),
                ),
                tracker: AnomalyTracker::default(),
            }),
        }
    }

    /// The concrete access plan for a statement — MySQL's `EXPLAIN`
    /// (paper Sec. V-D future work: the analyzer can consume this to
    /// avoid assuming indexes the engine would never use).
    pub fn explain(&self, stmt: &Statement, params: &[Value]) -> Vec<exec::ExplainRow> {
        exec::explain(stmt, params, &self.inner.catalog)
    }
}

/// A client session holding at most one open transaction.
#[derive(Debug)]
pub struct Session {
    db: Database,
    txn: Option<TxnId>,
    isolation: IsolationLevel,
    /// Transaction snapshot timestamp, taken at `begin` for MVCC levels.
    snapshot: u64,
}

impl Session {
    /// The owning database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// This session's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Begin a transaction. Under an MVCC isolation level the transaction
    /// snapshot is taken here and the transaction registers with the
    /// anomaly tracker.
    pub fn begin(&mut self) {
        assert!(self.txn.is_none(), "transaction already open");
        let id = TxnId(self.db.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        self.txn = Some(id);
        if self.isolation.uses_snapshots() {
            self.snapshot = self.db.inner.storage.lock().mvcc.current_ts();
            self.db.inner.tracker.begin(id, self.snapshot);
        }
    }

    fn mvcc_ctx(&self) -> MvccCtx<'_> {
        MvccCtx {
            iso: self.isolation,
            txn_snapshot: self.snapshot,
            tracker: &self.db.inner.tracker,
        }
    }

    /// The open transaction's id, if any.
    pub fn txn_id(&self) -> Option<TxnId> {
        self.txn
    }

    /// Execute one statement in the open transaction.
    ///
    /// On [`DbError::Deadlock`] / [`DbError::LockWaitTimeout`] the
    /// transaction is rolled back before returning (MySQL victim
    /// recovery).
    pub fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<ExecData, DbError> {
        let txn = self.txn.ok_or(DbError::NoTransaction)?;
        self.db
            .inner
            .counters
            .statements
            .fetch_add(1, Ordering::Relaxed);
        let delay = self.db.inner.statement_delay_ns.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(Duration::from_nanos(delay));
        }
        match exec::execute(
            &self.db.inner.storage,
            &self.db.inner.locks,
            txn,
            stmt,
            params,
            self.mvcc_ctx(),
        ) {
            Ok(data) => Ok(data),
            Err(e) => {
                self.abort_on(&e);
                Err(e)
            }
        }
    }

    /// Execute one statement without ever sleeping (the replay engine's
    /// step function): the statement either completes, reports whom it
    /// waits on ([`exec::StepResult::Blocked`], waits-for edge recorded),
    /// or closes a waits-for cycle — in which case the transaction is
    /// rolled back and [`DbError::Deadlock`] carries the concrete cycle.
    pub fn execute_nowait(
        &mut self,
        stmt: &Statement,
        params: &[Value],
    ) -> Result<exec::StepResult, DbError> {
        let txn = self.txn.ok_or(DbError::NoTransaction)?;
        self.db
            .inner
            .counters
            .statements
            .fetch_add(1, Ordering::Relaxed);
        match exec::execute_nowait(
            &self.db.inner.storage,
            &self.db.inner.locks,
            txn,
            stmt,
            params,
            self.mvcc_ctx(),
        ) {
            Ok(step) => Ok(step),
            Err(e) => {
                self.abort_on(&e);
                Err(e)
            }
        }
    }

    /// Count and roll back an engine-initiated abort.
    fn abort_on(&mut self, e: &DbError) {
        if e.aborts_txn() {
            match e {
                DbError::Deadlock { .. } => {
                    self.db
                        .inner
                        .counters
                        .deadlock_aborts
                        .fetch_add(1, Ordering::Relaxed);
                }
                DbError::LockWaitTimeout => {
                    self.db
                        .inner
                        .counters
                        .timeout_aborts
                        .fetch_add(1, Ordering::Relaxed);
                }
                DbError::WriteConflict { .. } => {
                    self.db
                        .inner
                        .counters
                        .write_conflict_aborts
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            self.rollback();
        }
    }

    /// Commit the open transaction. Under an MVCC isolation level the
    /// commit installs the transaction's net row effects as versions and
    /// reports the commit to the anomaly tracker.
    pub fn commit(&mut self) -> Result<(), DbError> {
        let txn = self.txn.take().ok_or(DbError::NoTransaction)?;
        let commit_ts = {
            let mut st = self.db.inner.storage.lock();
            st.commit(txn)
        };
        if self.isolation.uses_snapshots() {
            self.db.inner.tracker.commit(txn, commit_ts);
        }
        self.db.inner.locks.release_all(txn);
        self.db
            .inner
            .counters
            .commits
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Roll back the open transaction (no-op without one).
    pub fn rollback(&mut self) {
        if let Some(txn) = self.txn.take() {
            {
                let mut st = self.db.inner.storage.lock();
                st.rollback(txn);
            }
            if self.isolation.uses_snapshots() {
                self.db.inner.tracker.rollback(txn);
            }
            self.db.inner.locks.release_all(txn);
            self.db
                .inner
                .counters
                .rollbacks
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.rollback();
    }
}

impl SqlBackend for Session {
    fn begin(&mut self) {
        Session::begin(self);
    }

    fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<ExecResult, BackendError> {
        Session::execute(self, stmt, params)
            .map(|d| ExecResult {
                rows: d.rows,
                affected: d.affected,
            })
            .map_err(|e| BackendError {
                message: e.to_string(),
                deadlock_victim: e.aborts_txn(),
            })
    }

    fn commit(&mut self) -> Result<(), BackendError> {
        Session::commit(self).map_err(|e| BackendError {
            message: e.to_string(),
            deadlock_victim: false,
        })
    }

    fn rollback(&mut self) {
        Session::rollback(self);
    }
}

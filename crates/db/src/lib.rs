//! # weseer-db
//!
//! An in-memory, multi-threaded storage engine with InnoDB-style locking —
//! the MySQL 5.7 stand-in for the WeSEER reproduction.
//!
//! Features relevant to the paper:
//!
//! * strict two-phase locking with **row**, **gap**, **next-key**,
//!   **insert-intention**, and **table** locks acquired during index
//!   traversal (Sec. V-C's lock model, executed for real);
//! * **detect-and-recover** deadlock handling: waits-for cycle detection on
//!   every blocking lock request, victim abort with full transaction
//!   rollback (Sec. II-A) plus a lock-wait timeout backstop;
//! * B-tree primary and secondary indexes with PK-suffixed secondary keys;
//! * abort/commit/lock-wait statistics for the Fig. 10/11 throughput and
//!   aborts-per-second experiments.
//!
//! * **MVCC version chains with selectable isolation levels**
//!   ([`mvcc`]): every commit installs the transaction's net row effects
//!   as timestamped versions, and sessions opened at `read-committed`,
//!   `repeatable-read`, or `snapshot` turn plain SELECTs into lock-free
//!   snapshot reads (writes stay current reads under 2PL, like InnoDB).
//!   A runtime oracle ([`anomaly`]) reports the weak-isolation anomalies
//!   this enables — lost updates, write skew, read fractures — and
//!   snapshot isolation aborts stale overwrites with
//!   [`DbError::WriteConflict`] (first-updater-wins).
//!
//! The default isolation level is **serializable**: strict 2PL with shared
//! locks on plain SELECTs, matching the locking model WeSEER's analyzer
//! assumes (Alg. 2) and making the 18 Table-II deadlock patterns actually
//! reproducible in-process. Every pre-MVCC behavior, report, and witness
//! is byte-identical at the default level.
//!
//! ```
//! use weseer_db::Database;
//! use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};
//!
//! let catalog = Catalog::new(vec![TableBuilder::new("Product")
//!     .col("ID", ColType::Int)
//!     .col("QTY", ColType::Int)
//!     .primary_key(&["ID"])
//!     .build()
//!     .unwrap()])
//! .unwrap();
//! let db = Database::new(catalog);
//! db.seed("Product", vec![vec![Value::Int(1), Value::Int(10)]]);
//!
//! let mut session = db.session();
//! session.begin();
//! let q = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
//! let r = session.execute(&q, &[Value::Int(1)]).unwrap();
//! assert_eq!(r.rows.len(), 1);
//! session.commit().unwrap();
//! ```

pub mod anomaly;
pub mod database;
pub mod exec;
pub mod lock;
pub mod mvcc;
pub mod storage;
pub mod types;

pub use anomaly::{AnomalyEvent, AnomalyKind, AnomalyTracker};
pub use database::{Database, DbStats, Session};
pub use exec::{ExecData, ExplainRow, MvccCtx, StepResult};
pub use lock::{AcquireOutcome, LockManager, LockMode, LockStats, LockTarget};
pub use mvcc::{IsolationLevel, VersionStore, ISOLATION_ENV};
pub use storage::{Row, Storage};
pub use types::{DbError, KeyBound, KeyTuple, RowId, TxnId};

//! # weseer-db
//!
//! An in-memory, multi-threaded storage engine with InnoDB-style locking —
//! the MySQL 5.7 stand-in for the WeSEER reproduction.
//!
//! Features relevant to the paper:
//!
//! * strict two-phase locking with **row**, **gap**, **next-key**,
//!   **insert-intention**, and **table** locks acquired during index
//!   traversal (Sec. V-C's lock model, executed for real);
//! * **detect-and-recover** deadlock handling: waits-for cycle detection on
//!   every blocking lock request, victim abort with full transaction
//!   rollback (Sec. II-A) plus a lock-wait timeout backstop;
//! * B-tree primary and secondary indexes with PK-suffixed secondary keys;
//! * abort/commit/lock-wait statistics for the Fig. 10/11 throughput and
//!   aborts-per-second experiments.
//!
//! Unlike InnoDB the engine has no MVCC: plain SELECTs take shared locks,
//! matching the locking model WeSEER's analyzer assumes (Alg. 2) and making
//! the 18 Table-II deadlock patterns actually reproducible in-process.
//!
//! ```
//! use weseer_db::Database;
//! use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};
//!
//! let catalog = Catalog::new(vec![TableBuilder::new("Product")
//!     .col("ID", ColType::Int)
//!     .col("QTY", ColType::Int)
//!     .primary_key(&["ID"])
//!     .build()
//!     .unwrap()])
//! .unwrap();
//! let db = Database::new(catalog);
//! db.seed("Product", vec![vec![Value::Int(1), Value::Int(10)]]);
//!
//! let mut session = db.session();
//! session.begin();
//! let q = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
//! let r = session.execute(&q, &[Value::Int(1)]).unwrap();
//! assert_eq!(r.rows.len(), 1);
//! session.commit().unwrap();
//! ```

pub mod database;
pub mod exec;
pub mod lock;
pub mod storage;
pub mod types;

pub use database::{Database, DbStats, Session};
pub use exec::{ExecData, ExplainRow, StepResult};
pub use lock::{AcquireOutcome, LockManager, LockMode, LockStats, LockTarget};
pub use storage::{Row, Storage};
pub use types::{DbError, KeyBound, KeyTuple, RowId, TxnId};

//! Multi-version concurrency control: version chains over the heap plus
//! snapshot visibility, layered on [`crate::storage::Storage`].
//!
//! The engine keeps writing *in place* under strict 2PL (writes are
//! "current reads" at every isolation level, exactly like InnoDB UPDATEs),
//! but every commit also installs the transaction's net row effects into a
//! per-row **version chain** stamped with a commit timestamp from a global
//! logical clock. A plain SELECT under a weak isolation level then becomes
//! a lock-free **snapshot read**: the executor materializes a view of the
//! statement's tables as of the session's snapshot timestamp and plans
//! against the view, acquiring no locks at all.
//!
//! Visibility rule: a row's visible version at snapshot `s` is the chain's
//! latest version with `ts <= s` (a `None` row payload marks a committed
//! delete); rows with no chain are bootstrap/seeded rows, implicitly
//! committed at ts 0. A transaction always sees its own uncommitted writes
//! (read-your-own-writes).

use crate::storage::{Row, Storage};
use crate::types::{RowId, TxnId};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::str::FromStr;

/// The isolation level of a session.
///
/// `Serializable` is the default and runs the pre-MVCC engine unchanged:
/// strict 2PL with shared locks on plain SELECTs. The three weak levels
/// turn plain SELECTs into lock-free snapshot reads and differ in when the
/// snapshot is taken and whether stale overwrites abort:
///
/// * `ReadCommitted` — a fresh snapshot per *statement* (MySQL/Postgres
///   READ COMMITTED);
/// * `RepeatableRead` — one snapshot per *transaction*, stale overwrites
///   allowed (MySQL REPEATABLE READ, where lost updates are real);
/// * `Snapshot` — one snapshot per transaction plus first-updater-wins:
///   overwriting a version committed after the snapshot aborts with
///   [`crate::DbError::WriteConflict`] (PostgreSQL REPEATABLE READ / classic SI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum IsolationLevel {
    /// Per-statement snapshot reads; no write-conflict aborts.
    ReadCommitted,
    /// Per-transaction snapshot reads; no write-conflict aborts.
    RepeatableRead,
    /// Per-transaction snapshot reads with first-updater-wins aborts.
    Snapshot,
    /// Strict 2PL (the paper's lock model); plain SELECTs take S locks.
    #[default]
    Serializable,
}

/// Environment variable selecting a default isolation level
/// (mirrors `WESEER_THREADS` / `WESEER_STORE`).
pub const ISOLATION_ENV: &str = "WESEER_ISOLATION";

impl IsolationLevel {
    /// All levels, weakest first.
    pub const ALL: [IsolationLevel; 4] = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::Snapshot,
        IsolationLevel::Serializable,
    ];

    /// Canonical kebab-case name (the `Display`/`FromStr` form).
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "read-committed",
            IsolationLevel::RepeatableRead => "repeatable-read",
            IsolationLevel::Snapshot => "snapshot",
            IsolationLevel::Serializable => "serializable",
        }
    }

    /// Whether plain SELECTs read from an MVCC snapshot instead of
    /// taking shared locks.
    pub fn uses_snapshots(self) -> bool {
        self != IsolationLevel::Serializable
    }

    /// Whether the snapshot is fixed for the whole transaction
    /// (repeatable-read and stronger) rather than per statement.
    pub fn txn_snapshot(self) -> bool {
        matches!(
            self,
            IsolationLevel::RepeatableRead | IsolationLevel::Snapshot
        )
    }

    /// The level selected by `WESEER_ISOLATION`, if set.
    ///
    /// # Panics
    /// Panics with the list of valid names when the variable holds an
    /// unknown level (mirrors `WESEER_THREADS`'s fail-fast parsing).
    pub fn from_env() -> Option<IsolationLevel> {
        let raw = std::env::var(ISOLATION_ENV).ok()?;
        match raw.parse() {
            Ok(level) => Some(level),
            Err(e) => panic!("{ISOLATION_ENV}: {e}"),
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognized isolation-level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIsolationError(String);

impl fmt::Display for ParseIsolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown isolation level {:?} (expected one of: read-committed, \
             repeatable-read, snapshot, serializable)",
            self.0
        )
    }
}

impl std::error::Error for ParseIsolationError {}

impl FromStr for IsolationLevel {
    type Err = ParseIsolationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        match norm.as_str() {
            "read-committed" | "rc" => Ok(IsolationLevel::ReadCommitted),
            "repeatable-read" | "rr" => Ok(IsolationLevel::RepeatableRead),
            "snapshot" | "si" => Ok(IsolationLevel::Snapshot),
            "serializable" | "2pl" => Ok(IsolationLevel::Serializable),
            _ => Err(ParseIsolationError(s.to_string())),
        }
    }
}

/// One committed version of a row.
#[derive(Debug, Clone)]
pub struct Version {
    /// Commit timestamp (logical clock tick); 0 marks the pre-existing
    /// baseline (seeded or committed before version tracking observed it).
    pub ts: u64,
    /// Row payload; `None` records a committed delete.
    pub row: Option<Row>,
}

/// Version chains for every row a committed transaction ever touched,
/// plus the commit-timestamp clock.
///
/// Chains are append-only and strictly increasing in `ts`. Rows that were
/// never rewritten have no chain and are implicitly committed at ts 0.
#[derive(Debug, Clone, Default)]
pub struct VersionStore {
    chains: HashMap<(String, RowId), Vec<Version>>,
    clock: u64,
}

impl VersionStore {
    /// The current logical time: the timestamp of the newest commit.
    /// A snapshot taken "now" is this value — it sees every commit so far.
    pub fn current_ts(&self) -> u64 {
        self.clock
    }

    /// Advance the clock for a writing commit and return its timestamp.
    pub fn next_commit_ts(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Seed a ts-0 baseline version for a row about to be rewritten for
    /// the first time, so older snapshots can still rewind to it.
    /// No-op when the row already has a chain.
    pub fn seed_baseline(&mut self, table: &str, rid: RowId, row: Row) {
        self.chains
            .entry((table.to_string(), rid))
            .or_insert_with(|| {
                vec![Version {
                    ts: 0,
                    row: Some(row),
                }]
            });
    }

    /// Append a committed version.
    pub fn install(&mut self, table: &str, rid: RowId, row: Option<Row>, ts: u64) {
        let chain = self.chains.entry((table.to_string(), rid)).or_default();
        debug_assert!(chain.last().map(|v| v.ts < ts).unwrap_or(true));
        chain.push(Version { ts, row });
        weseer_obs::incr("db.mvcc.version_installs");
        if weseer_obs::timeline::enabled() {
            weseer_obs::timeline::instant(
                "mvcc.version_install",
                "db",
                &[("table", table.to_string()), ("commit_ts", ts.to_string())],
            );
        }
    }

    /// The commit timestamp of the newest version of a row (0 when the
    /// row has no chain, i.e. only the implicit baseline exists).
    pub fn latest_ts(&self, table: &str, rid: RowId) -> u64 {
        self.chains
            .get(&(table.to_string(), rid))
            .and_then(|c| c.last())
            .map(|v| v.ts)
            .unwrap_or(0)
    }

    /// The version of a row visible at `snapshot`: `Some(version)` when a
    /// chain exists, `None` when the row has only its implicit baseline
    /// (visible at every snapshot).
    pub fn visible(&self, table: &str, rid: RowId, snapshot: u64) -> Option<&Version> {
        let chain = self.chains.get(&(table.to_string(), rid))?;
        chain.iter().rev().find(|v| v.ts <= snapshot)
    }

    /// Whether any chain exists for `table` (cheap skip for tables never
    /// rewritten).
    pub fn table_has_chains(&self, table: &str) -> bool {
        self.chains.keys().any(|(t, _)| t == table)
    }

    /// Chain keys for one table, sorted by row id (deterministic rewind
    /// order for [`snapshot_view`]).
    fn chained_rids(&self, table: &str) -> Vec<RowId> {
        let mut rids: Vec<RowId> = self
            .chains
            .keys()
            .filter(|(t, _)| t == table)
            .map(|(_, r)| *r)
            .collect();
        rids.sort_unstable();
        rids
    }
}

/// Materialize the state of `tables` as of `snapshot`, as seen by
/// `reader`: committed versions at or before the snapshot, plus the
/// reader's own uncommitted writes.
///
/// Construction works in three steps on cloned [`crate::storage::TableStore`]s:
///
/// 1. **Un-apply** every *other* active transaction's undo log (newest
///    transaction first — strict 2PL makes active write sets row-disjoint,
///    so the order only matters for determinism). This removes uncommitted
///    data from the view; the reader's own undo is kept, which is what
///    gives read-your-own-writes.
/// 2. **Rewind** every version chain of the view's tables to the latest
///    version with `ts <= snapshot`: too-new inserts disappear, too-new
///    updates roll back to the visible payload, and deletes committed
///    after the snapshot resurrect the visible payload. Rows the reader
///    itself wrote are skipped (step 1 already left the reader's state).
/// 3. Rows without chains are baseline rows, visible unchanged.
pub fn snapshot_view(st: &Storage, reader: TxnId, snapshot: u64, tables: &[String]) -> Storage {
    let _span = weseer_obs::span("db.mvcc.snapshot_view");
    let mut view = Storage {
        tables: tables
            .iter()
            .filter_map(|t| st.tables.get(t).map(|ts| (t.clone(), ts.clone())))
            .collect(),
        undo: HashMap::new(),
        mvcc: VersionStore::default(),
    };

    // Step 1: strip other transactions' uncommitted effects.
    let mut active: Vec<TxnId> = st.undo.keys().copied().filter(|t| *t != reader).collect();
    active.sort_unstable();
    for txn in active.into_iter().rev() {
        for u in st.undo[&txn].iter().rev() {
            use crate::storage::Undo;
            match u {
                Undo::Insert { table, rid } => {
                    if let Some(t) = view.tables.get_mut(table) {
                        t.delete(*rid);
                    }
                }
                Undo::Update { table, rid, old } => {
                    if let Some(t) = view.tables.get_mut(table) {
                        t.update(*rid, old.clone());
                    }
                }
                Undo::Delete { table, rid, old } => {
                    if let Some(t) = view.tables.get_mut(table) {
                        t.restore(*rid, old.clone());
                    }
                }
            }
        }
    }

    // Rows the reader itself wrote: keep as-is (read-your-own-writes).
    let own: HashSet<(String, RowId)> = st
        .undo
        .get(&reader)
        .map(|log| log.iter().map(undo_key).collect())
        .unwrap_or_default();

    // Step 2: rewind chained rows to the snapshot.
    for table in tables {
        if !st.mvcc.table_has_chains(table) {
            continue;
        }
        for rid in st.mvcc.chained_rids(table) {
            if own.contains(&(table.clone(), rid)) {
                continue;
            }
            let visible: Option<Row> = st
                .mvcc
                .visible(table, rid, snapshot)
                .and_then(|v| v.row.clone());
            let Some(t) = view.tables.get_mut(table) else {
                continue;
            };
            let current = t.heap.get(&rid).cloned();
            match (current, visible) {
                (Some(cur), Some(vis)) => {
                    if cur != vis {
                        t.update(rid, vis);
                    }
                }
                (Some(_), None) => {
                    t.delete(rid);
                }
                (None, Some(vis)) => {
                    t.restore(rid, vis);
                }
                (None, None) => {}
            }
        }
    }
    view
}

fn undo_key(u: &crate::storage::Undo) -> (String, RowId) {
    use crate::storage::Undo;
    match u {
        Undo::Insert { table, rid }
        | Undo::Update { table, rid, .. }
        | Undo::Delete { table, rid, .. } => (table.clone(), *rid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_round_trips() {
        for level in IsolationLevel::ALL {
            assert_eq!(level.name().parse::<IsolationLevel>().unwrap(), level);
            assert_eq!(level.to_string(), level.name());
        }
        assert_eq!(
            "REPEATABLE_READ".parse::<IsolationLevel>().unwrap(),
            IsolationLevel::RepeatableRead
        );
        assert_eq!(
            "si".parse::<IsolationLevel>().unwrap(),
            IsolationLevel::Snapshot
        );
        let err = "chaos".parse::<IsolationLevel>().unwrap_err();
        assert!(err.to_string().contains("unknown isolation level"));
        assert!(err.to_string().contains("read-committed"));
    }

    #[test]
    fn default_is_serializable() {
        assert_eq!(IsolationLevel::default(), IsolationLevel::Serializable);
        assert!(!IsolationLevel::Serializable.uses_snapshots());
        assert!(IsolationLevel::ReadCommitted.uses_snapshots());
        assert!(!IsolationLevel::ReadCommitted.txn_snapshot());
        assert!(IsolationLevel::Snapshot.txn_snapshot());
    }

    #[test]
    fn chains_rewind_to_snapshot() {
        let mut vs = VersionStore::default();
        let rid = RowId(0);
        vs.seed_baseline("T", rid, vec![]);
        let t1 = vs.next_commit_ts();
        vs.install("T", rid, Some(vec![weseer_sqlir::Value::Int(1)]), t1);
        let t2 = vs.next_commit_ts();
        vs.install("T", rid, None, t2);
        assert_eq!(vs.latest_ts("T", rid), t2);
        assert_eq!(vs.visible("T", rid, 0).unwrap().row, Some(vec![]));
        assert_eq!(
            vs.visible("T", rid, t1).unwrap().row,
            Some(vec![weseer_sqlir::Value::Int(1)])
        );
        assert_eq!(vs.visible("T", rid, t2).unwrap().row, None);
        assert_eq!(vs.latest_ts("T", RowId(9)), 0);
        assert!(vs.visible("T", RowId(9), t2).is_none());
    }
}

//! Property tests: the locking executor must agree with a naive oracle
//! (full-scan predicate evaluation over an in-memory table image) on
//! every sequential schedule of random statements.

use proptest::prelude::*;
use std::collections::BTreeMap;
use weseer_db::Database;
use weseer_sqlir::ast::{Assignment, Insert, Select, Statement, Update};
use weseer_sqlir::{Catalog, CmpOp, ColType, Cond, Delete, Operand, TableBuilder, TableRef, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("T")
        .col("ID", ColType::Int)
        .col("A", ColType::Int)
        .col("B", ColType::Int)
        .primary_key(&["ID"])
        .index("idx_a", &["A"])
        .build()
        .unwrap()])
    .unwrap()
}

/// The oracle: rows keyed by ID.
type Image = BTreeMap<i64, (i64, i64)>;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, a: i64, b: i64 },
    UpdateByA { a: i64, new_b: i64 },
    DeleteById { id: i64 },
    SelectByA { a: i64 },
    SelectRange { lo: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..30, 0i64..5, 0i64..100).prop_map(|(id, a, b)| Op::Insert { id, a, b }),
        (0i64..5, 0i64..100).prop_map(|(a, new_b)| Op::UpdateByA { a, new_b }),
        (0i64..30).prop_map(|id| Op::DeleteById { id }),
        (0i64..5).prop_map(|a| Op::SelectByA { a }),
        (0i64..30).prop_map(|lo| Op::SelectRange { lo }),
    ]
}

fn apply_oracle(img: &mut Image, op: &Op) -> Vec<(i64, i64, i64)> {
    match op {
        Op::Insert { id, a, b } => {
            // Duplicate key: rejected, no change.
            img.entry(*id).or_insert((*a, *b));
            vec![]
        }
        Op::UpdateByA { a, new_b } => {
            for (_, v) in img.iter_mut() {
                if v.0 == *a {
                    v.1 = *new_b;
                }
            }
            vec![]
        }
        Op::DeleteById { id } => {
            img.remove(id);
            vec![]
        }
        Op::SelectByA { a } => img
            .iter()
            .filter(|(_, v)| v.0 == *a)
            .map(|(id, v)| (*id, v.0, v.1))
            .collect(),
        Op::SelectRange { lo } => img
            .iter()
            .filter(|(id, _)| **id >= *lo)
            .map(|(id, v)| (*id, v.0, v.1))
            .collect(),
    }
}

fn stmt_of(op: &Op) -> (Statement, Vec<Value>) {
    match op {
        Op::Insert { id, a, b } => (
            Statement::Insert(Insert {
                table: "T".into(),
                columns: vec!["ID".into(), "A".into(), "B".into()],
                values: vec![Operand::Param(0), Operand::Param(1), Operand::Param(2)],
                on_duplicate: vec![],
            }),
            vec![Value::Int(*id), Value::Int(*a), Value::Int(*b)],
        ),
        Op::UpdateByA { a, new_b } => (
            Statement::Update(Update {
                table: "T".into(),
                sets: vec![Assignment {
                    column: "B".into(),
                    value: Operand::Param(0),
                }],
                where_clause: Some(Cond::eq(Operand::col("T", "A"), Operand::Param(1))),
            }),
            vec![Value::Int(*new_b), Value::Int(*a)],
        ),
        Op::DeleteById { id } => (
            Statement::Delete(Delete {
                table: "T".into(),
                where_clause: Some(Cond::eq(Operand::col("T", "ID"), Operand::Param(0))),
            }),
            vec![Value::Int(*id)],
        ),
        Op::SelectByA { a } => (
            Statement::Select(Select {
                from: TableRef::aliased("T", "t"),
                joins: vec![],
                where_clause: Some(Cond::eq(Operand::col("t", "A"), Operand::Param(0))),
                for_update: false,
            }),
            vec![Value::Int(*a)],
        ),
        Op::SelectRange { lo } => (
            Statement::Select(Select {
                from: TableRef::aliased("T", "t"),
                joins: vec![],
                where_clause: Some(Cond::cmp(
                    Operand::col("t", "ID"),
                    CmpOp::Ge,
                    Operand::Param(0),
                )),
                for_update: false,
            }),
            vec![Value::Int(*lo)],
        ),
    }
}

fn rows_of(result: &weseer_db::ExecData) -> Vec<(i64, i64, i64)> {
    let mut out: Vec<(i64, i64, i64)> = result
        .rows
        .iter()
        .map(|row| {
            let get = |name: &str| -> i64 {
                row.iter()
                    .find(|(n, _)| n == name)
                    .and_then(|(_, v)| v.as_int())
                    .unwrap()
            };
            (get("t.ID"), get("t.A"), get("t.B"))
        })
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn executor_agrees_with_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let db = Database::new(catalog());
        let mut session = db.session();
        session.begin();
        let mut img = Image::new();
        for op in &ops {
            let expected = apply_oracle(&mut img, op);
            let (stmt, params) = stmt_of(op);
            match session.execute(&stmt, &params) {
                Ok(result) => {
                    if matches!(op, Op::SelectByA { .. } | Op::SelectRange { .. }) {
                        prop_assert_eq!(rows_of(&result), expected, "op {:?}", op);
                    }
                }
                Err(weseer_db::DbError::DuplicateKey { .. }) => {
                    let is_insert = matches!(op, Op::Insert { .. });
                    prop_assert!(is_insert, "dup key from non-insert");
                }
                Err(e) => return Err(TestCaseError::fail(format!("{op:?}: {e}"))),
            }
        }
        session.commit().unwrap();
        // Final table image matches.
        let dumped: Vec<(i64, i64, i64)> = db
            .dump("T")
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap(), r[2].as_int().unwrap()))
            .collect();
        let expected: Vec<(i64, i64, i64)> =
            img.iter().map(|(id, v)| (*id, v.0, v.1)).collect();
        prop_assert_eq!(dumped, expected);
    }

    /// Rollback must restore exactly the pre-transaction image.
    #[test]
    fn rollback_restores_oracle_image(
        seed in proptest::collection::vec((0i64..20, 0i64..5, 0i64..50), 1..10),
        ops in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let db = Database::new(catalog());
        let mut dedup = BTreeMap::new();
        for (id, a, b) in &seed {
            dedup.entry(*id).or_insert((*a, *b));
        }
        db.seed(
            "T",
            dedup.iter().map(|(id, (a, b))| vec![Value::Int(*id), Value::Int(*a), Value::Int(*b)]).collect(),
        );
        let before = db.dump("T");
        let mut session = db.session();
        session.begin();
        for op in &ops {
            let (stmt, params) = stmt_of(op);
            let _ = session.execute(&stmt, &params); // dup errors fine
        }
        session.rollback();
        prop_assert_eq!(db.dump("T"), before);
    }
}

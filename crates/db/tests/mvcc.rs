//! MVCC subsystem integration tests: snapshot visibility per isolation
//! level, first-updater-wins aborts, anomaly tracking through the real
//! engine, fork hygiene, and `WESEER_ISOLATION` parsing.

use weseer_db::{AnomalyKind, Database, DbError, IsolationLevel};
use weseer_sqlir::parser::parse;
use weseer_sqlir::{Catalog, ColType, TableBuilder, Value, Value as V};

fn account_catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BAL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap()
}

fn account_db() -> Database {
    let db = Database::new(account_catalog());
    db.seed("Account", vec![vec![V::Int(1), V::Int(100)]]);
    db
}

fn bal(db: &Database) -> i64 {
    match db.dump("Account")[0][1] {
        Value::Int(i) => i,
        ref v => panic!("unexpected balance {v:?}"),
    }
}

#[test]
fn snapshot_read_skips_uncommitted_and_takes_no_locks() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();

    let mut writer = db.session(); // serializable
    writer.begin();
    writer.execute(&upd, &[V::Int(50), V::Int(1)]).unwrap();

    let mut reader = db.session_at(IsolationLevel::ReadCommitted);
    reader.begin();
    let r = reader.execute(&sel, &[V::Int(1)]).unwrap();
    // Uncommitted write invisible; no locks held, one snapshot read.
    assert_eq!(r.rows[0][1].1, V::Int(100));
    assert!(r.locks.is_empty());
    assert_eq!(r.snapshot_reads.len(), 1);
    assert_eq!(r.snapshot_reads[0].0, "Account");

    writer.commit().unwrap();
    // Read-committed re-snapshots per statement: the commit is visible.
    let r = reader.execute(&sel, &[V::Int(1)]).unwrap();
    assert_eq!(r.rows[0][1].1, V::Int(50));
    reader.rollback();
}

#[test]
fn repeatable_read_pins_the_transaction_snapshot() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();

    let mut reader = db.session_at(IsolationLevel::RepeatableRead);
    reader.begin();
    let r = reader.execute(&sel, &[V::Int(1)]).unwrap();
    assert_eq!(r.rows[0][1].1, V::Int(100));

    let mut writer = db.session();
    writer.begin();
    writer.execute(&upd, &[V::Int(77), V::Int(1)]).unwrap();
    writer.commit().unwrap();
    assert_eq!(bal(&db), 77);

    // The reader still sees its snapshot.
    let r = reader.execute(&sel, &[V::Int(1)]).unwrap();
    assert_eq!(r.rows[0][1].1, V::Int(100));
    reader.rollback();
}

#[test]
fn serializable_plain_select_still_locks() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let mut s = db.session();
    assert_eq!(s.isolation(), IsolationLevel::Serializable);
    s.begin();
    let r = s.execute(&sel, &[V::Int(1)]).unwrap();
    assert!(!r.locks.is_empty(), "2PL SELECT takes shared locks");
    assert!(r.snapshot_reads.is_empty());
    s.rollback();
}

#[test]
fn snapshot_isolation_aborts_stale_overwrite() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();

    let mut a = db.session_at(IsolationLevel::Snapshot);
    let mut b = db.session_at(IsolationLevel::Snapshot);
    a.begin();
    b.begin();
    a.execute(&sel, &[V::Int(1)]).unwrap();
    b.execute(&sel, &[V::Int(1)]).unwrap();
    a.execute(&upd, &[V::Int(90), V::Int(1)]).unwrap();
    a.commit().unwrap();

    // First-updater-wins: b's overwrite of a newer version aborts.
    let err = b.execute(&upd, &[V::Int(95), V::Int(1)]).unwrap_err();
    assert!(matches!(err, DbError::WriteConflict { ref table } if table == "Account"));
    assert!(!b.in_txn(), "write conflict rolls the transaction back");
    assert_eq!(db.stats().write_conflict_aborts, 1);
    assert_eq!(bal(&db), 90);
    // The aborted transaction contributes no anomalies.
    assert!(db.anomaly_events().is_empty());
}

#[test]
fn lost_update_detected_at_read_committed() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();

    let mut a = db.session_at(IsolationLevel::ReadCommitted);
    let mut b = db.session_at(IsolationLevel::ReadCommitted);
    a.begin();
    b.begin();
    a.execute(&sel, &[V::Int(1)]).unwrap();
    b.execute(&sel, &[V::Int(1)]).unwrap();
    a.execute(&upd, &[V::Int(90), V::Int(1)]).unwrap();
    a.commit().unwrap();
    // b overwrites based on its stale read — the classic lost update.
    b.execute(&upd, &[V::Int(95), V::Int(1)]).unwrap();
    assert!(db.anomaly_events().is_empty(), "promoted only at commit");
    b.commit().unwrap();

    let evs = db.anomaly_events();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].kind, AnomalyKind::LostUpdate);
    assert_eq!(evs[0].table, "Account");
    assert_eq!(bal(&db), 95, "a's committed update was lost");
}

#[test]
fn write_skew_detected_at_snapshot_isolation() {
    let catalog = Catalog::new(vec![TableBuilder::new("Doctors")
        .col("ID", ColType::Int)
        .col("ONCALL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let db = Database::new(catalog);
    db.seed(
        "Doctors",
        vec![vec![V::Int(1), V::Int(1)], vec![V::Int(2), V::Int(1)]],
    );
    let sel = parse("SELECT * FROM Doctors d WHERE d.ONCALL = ?").unwrap();
    let upd = parse("UPDATE Doctors SET ONCALL = ? WHERE ID = ?").unwrap();

    let mut a = db.session_at(IsolationLevel::Snapshot);
    let mut b = db.session_at(IsolationLevel::Snapshot);
    a.begin();
    b.begin();
    // Both check "at least two doctors on call", then each signs off a
    // different doctor: disjoint writes, crossed reads.
    assert_eq!(a.execute(&sel, &[V::Int(1)]).unwrap().rows.len(), 2);
    assert_eq!(b.execute(&sel, &[V::Int(1)]).unwrap().rows.len(), 2);
    a.execute(&upd, &[V::Int(0), V::Int(1)]).unwrap();
    b.execute(&upd, &[V::Int(0), V::Int(2)]).unwrap();
    a.commit().unwrap();
    b.commit().unwrap();

    let evs = db.anomaly_events();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].kind, AnomalyKind::WriteSkew);
    // Invariant violated: nobody is on call.
    let on_call = db
        .dump("Doctors")
        .iter()
        .filter(|r| r[1] == V::Int(1))
        .count();
    assert_eq!(on_call, 0);
}

#[test]
fn read_fracture_detected_at_read_committed() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();

    let mut a = db.session_at(IsolationLevel::ReadCommitted);
    a.begin();
    a.execute(&sel, &[V::Int(1)]).unwrap();

    let mut w = db.session();
    w.begin();
    w.execute(&upd, &[V::Int(42), V::Int(1)]).unwrap();
    w.commit().unwrap();

    // Same row, different version within one transaction.
    a.execute(&sel, &[V::Int(1)]).unwrap();
    a.commit().unwrap();
    let evs = db.anomaly_events();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].kind, AnomalyKind::ReadFracture);
}

#[test]
fn fork_rolls_back_in_flight_transactions() {
    let db = account_db();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();
    let ins = parse("INSERT INTO Account (ID, BAL) VALUES (?, ?)").unwrap();

    let mut open = db.session();
    open.begin();
    open.execute(&upd, &[V::Int(1), V::Int(1)]).unwrap();
    open.execute(&ins, &[V::Int(2), V::Int(5)]).unwrap();

    // The fork must contain only committed state: no dirty balance, no
    // phantom row, no undo log left to roll back.
    let fork = db.fork();
    assert_eq!(fork.count("Account"), 1);
    assert_eq!(bal(&fork), 100);

    // A full transaction on the fork works from the clean state.
    let mut s = fork.session();
    s.begin();
    s.execute(&upd, &[V::Int(60), V::Int(1)]).unwrap();
    s.commit().unwrap();
    assert_eq!(bal(&fork), 60);

    // The source's open transaction is untouched and still rolls back.
    open.rollback();
    assert_eq!(bal(&db), 100);
    assert_eq!(db.count("Account"), 1);
}

#[test]
fn fork_inherits_default_isolation() {
    let db = account_db();
    db.set_default_isolation(IsolationLevel::ReadCommitted);
    let fork = db.fork();
    assert_eq!(fork.default_isolation(), IsolationLevel::ReadCommitted);
    assert_eq!(fork.session().isolation(), IsolationLevel::ReadCommitted);
}

#[test]
fn isolation_env_parsing() {
    const ENV: &str = weseer_db::ISOLATION_ENV;
    // Unset: no override.
    std::env::remove_var(ENV);
    assert_eq!(IsolationLevel::from_env(), None);

    std::env::set_var(ENV, "repeatable-read");
    assert_eq!(
        IsolationLevel::from_env(),
        Some(IsolationLevel::RepeatableRead)
    );
    std::env::set_var(ENV, "SNAPSHOT");
    assert_eq!(IsolationLevel::from_env(), Some(IsolationLevel::Snapshot));

    std::env::set_var(ENV, "chaos-monkey");
    let panic = std::panic::catch_unwind(IsolationLevel::from_env).unwrap_err();
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("WESEER_ISOLATION"), "got: {msg}");
    assert!(msg.contains("unknown isolation level"), "got: {msg}");
    assert!(msg.contains("serializable"), "got: {msg}");
    std::env::remove_var(ENV);
}

#[test]
fn serial_weak_history_is_anomaly_free() {
    let db = account_db();
    let sel = parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap();
    let upd = parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap();
    for level in IsolationLevel::ALL {
        for bal in [10, 20] {
            let mut s = db.session_at(level);
            s.begin();
            s.execute(&sel, &[V::Int(1)]).unwrap();
            s.execute(&upd, &[V::Int(bal), V::Int(1)]).unwrap();
            s.commit().unwrap();
        }
    }
    assert!(db.anomaly_events().is_empty());
}

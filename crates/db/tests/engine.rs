//! End-to-end storage-engine tests: SQL execution, join plans, locking
//! semantics, and concurrent deadlock reproduction (the Fig. 1
//! `finishOrder` pattern).

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;
use weseer_db::{Database, DbError};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn fig1_catalog() -> Catalog {
    Catalog::new(vec![
        TableBuilder::new("Order")
            .col("ID", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("Product")
            .col("ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("OrderItem")
            .col("ID", ColType::Int)
            .col("O_ID", ColType::Int)
            .col("P_ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .foreign_key("O_ID", "Order", "ID")
            .foreign_key("P_ID", "Product", "ID")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn seeded() -> Database {
    let db = Database::with_timeout(fig1_catalog(), Duration::from_secs(2));
    db.seed("Order", vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    db.seed(
        "Product",
        vec![
            vec![Value::Int(10), Value::Int(100)],
            vec![Value::Int(11), Value::Int(50)],
        ],
    );
    db.seed(
        "OrderItem",
        vec![
            vec![
                Value::Int(100),
                Value::Int(1),
                Value::Int(10),
                Value::Int(3),
            ],
            vec![
                Value::Int(101),
                Value::Int(2),
                Value::Int(11),
                Value::Int(5),
            ],
        ],
    );
    db
}

#[test]
fn point_select_by_primary_key() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let q = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
    let r = s.execute(&q, &[Value::Int(10)]).unwrap();
    assert_eq!(r.rows.len(), 1);
    let row = &r.rows[0];
    assert!(row.contains(&("p.ID".to_string(), Value::Int(10))));
    assert!(row.contains(&("p.QTY".to_string(), Value::Int(100))));
    s.commit().unwrap();
}

#[test]
fn three_way_join_matches_fig1_q4() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let q4 = parse(
        "SELECT * FROM OrderItem oi \
         JOIN Order o ON o.ID = oi.O_ID \
         JOIN Product p ON p.ID = oi.P_ID \
         WHERE oi.O_ID = ?",
    )
    .unwrap();
    let r = s.execute(&q4, &[Value::Int(1)]).unwrap();
    assert_eq!(r.rows.len(), 1);
    let row = &r.rows[0];
    assert!(row.contains(&("oi.ID".to_string(), Value::Int(100))));
    assert!(row.contains(&("o.ID".to_string(), Value::Int(1))));
    assert!(row.contains(&("p.ID".to_string(), Value::Int(10))));
    assert!(row.contains(&("p.QTY".to_string(), Value::Int(100))));
    s.commit().unwrap();
}

#[test]
fn update_then_read_back() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let q6 = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
    let r = s.execute(&q6, &[Value::Int(97), Value::Int(10)]).unwrap();
    assert_eq!(r.affected, 1);
    s.commit().unwrap();
    let rows = db.dump("Product");
    assert_eq!(rows[0], vec![Value::Int(10), Value::Int(97)]);
}

#[test]
fn delete_and_range_select() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let del = parse("DELETE FROM OrderItem WHERE O_ID = ?").unwrap();
    let r = s.execute(&del, &[Value::Int(1)]).unwrap();
    assert_eq!(r.affected, 1);
    let q = parse("SELECT * FROM OrderItem oi WHERE oi.ID >= ?").unwrap();
    let r = s.execute(&q, &[Value::Int(0)]).unwrap();
    assert_eq!(r.rows.len(), 1);
    s.commit().unwrap();
    assert_eq!(db.count("OrderItem"), 1);
}

#[test]
fn insert_visible_after_commit_gone_after_rollback() {
    let db = seeded();
    let ins = parse("INSERT INTO Order (ID) VALUES (?)").unwrap();

    let mut s = db.session();
    s.begin();
    s.execute(&ins, &[Value::Int(50)]).unwrap();
    s.rollback();
    assert_eq!(db.count("Order"), 2);

    let mut s = db.session();
    s.begin();
    s.execute(&ins, &[Value::Int(50)]).unwrap();
    s.commit().unwrap();
    assert_eq!(db.count("Order"), 3);
}

#[test]
fn duplicate_key_rejected_but_txn_survives() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let ins = parse("INSERT INTO Order (ID) VALUES (?)").unwrap();
    let err = s.execute(&ins, &[Value::Int(1)]).unwrap_err();
    assert!(matches!(err, DbError::DuplicateKey { .. }));
    assert!(!err.aborts_txn());
    // The transaction is still usable.
    let q = parse("SELECT * FROM Order o WHERE o.ID = ?").unwrap();
    assert_eq!(s.execute(&q, &[Value::Int(1)]).unwrap().rows.len(), 1);
    s.commit().unwrap();
}

#[test]
fn upsert_updates_on_duplicate() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let up = parse("INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?")
        .unwrap();
    let r = s
        .execute(&up, &[Value::Int(10), Value::Int(1), Value::Int(42)])
        .unwrap();
    assert_eq!(r.affected, 2);
    s.commit().unwrap();
    assert_eq!(db.dump("Product")[0], vec![Value::Int(10), Value::Int(42)]);

    // Non-duplicate path inserts.
    let mut s = db.session();
    s.begin();
    let r = s
        .execute(&up, &[Value::Int(99), Value::Int(7), Value::Int(0)])
        .unwrap();
    assert_eq!(r.affected, 1);
    s.commit().unwrap();
    assert_eq!(db.count("Product"), 3);
}

#[test]
fn secondary_index_scan_uses_fk_index() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let q = parse("SELECT * FROM OrderItem oi WHERE oi.P_ID = ?").unwrap();
    let r = s.execute(&q, &[Value::Int(11)]).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0].contains(&("oi.ID".to_string(), Value::Int(101))));
    s.commit().unwrap();
}

#[test]
fn empty_select_blocks_insert_in_gap() {
    // A range lock from an empty SELECT must block another transaction's
    // INSERT into that gap (the d3/d7 ingredient).
    let db = seeded();
    let mut s1 = db.session();
    s1.begin();
    let q = parse("SELECT * FROM OrderItem oi WHERE oi.O_ID = ?").unwrap();
    let r = s1.execute(&q, &[Value::Int(77)]).unwrap();
    assert!(r.rows.is_empty());

    let db2 = db.clone();
    let h = thread::spawn(move || {
        let mut s2 = db2.session();
        s2.begin();
        let ins = parse("INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)").unwrap();
        let started = std::time::Instant::now();
        let r = s2.execute(
            &ins,
            &[
                Value::Int(300),
                Value::Int(77),
                Value::Int(10),
                Value::Int(1),
            ],
        );
        let waited = started.elapsed();
        if r.is_ok() {
            s2.commit().unwrap();
        }
        (r.map(|d| d.affected), waited)
    });
    // Give the inserter time to block, then release.
    thread::sleep(Duration::from_millis(150));
    s1.commit().unwrap();
    let (res, waited) = h.join().unwrap();
    assert_eq!(res.unwrap(), 1);
    assert!(
        waited >= Duration::from_millis(100),
        "insert should have blocked on the gap lock, waited {waited:?}"
    );
    assert!(db.stats().locks.waits >= 1);
}

#[test]
fn reader_writer_row_conflict_blocks() {
    let db = seeded();
    let mut s1 = db.session();
    s1.begin();
    let q = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
    s1.execute(&q, &[Value::Int(10)]).unwrap();

    let db2 = db.clone();
    let h = thread::spawn(move || {
        let mut s2 = db2.session();
        s2.begin();
        let u = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
        let r = s2.execute(&u, &[Value::Int(0), Value::Int(10)]);
        if r.is_ok() {
            s2.commit().unwrap();
        }
        r.map(|d| d.affected)
    });
    thread::sleep(Duration::from_millis(100));
    // Reader still sees the old value (no dirty write happened).
    let r = s1.execute(&q, &[Value::Int(10)]).unwrap();
    assert!(r.rows[0].contains(&("p.QTY".to_string(), Value::Int(100))));
    s1.commit().unwrap();
    assert_eq!(h.join().unwrap().unwrap(), 1);
}

#[test]
fn finish_order_style_deadlock_detected_and_recovered() {
    // Two transactions each SELECT (S lock) the same Product row, then both
    // UPDATE it — the Fig. 4 deadlock cycle. One must be chosen as victim;
    // the other must commit.
    let db = Arc::new(seeded());
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let db = db.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            let mut s = db.session();
            s.begin();
            let q4 = parse(
                "SELECT * FROM OrderItem oi \
                 JOIN Order o ON o.ID = oi.O_ID \
                 JOIN Product p ON p.ID = oi.P_ID \
                 WHERE oi.O_ID = ?",
            )
            .unwrap();
            s.execute(&q4, &[Value::Int(1)]).unwrap();
            barrier.wait(); // both hold S locks on Product row 10 now
            let q6 = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
            match s.execute(&q6, &[Value::Int(97), Value::Int(10)]) {
                Ok(_) => {
                    s.commit().unwrap();
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }));
    }
    let results: Vec<Result<(), DbError>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let oks = results.iter().filter(|r| r.is_ok()).count();
    let victims = results
        .iter()
        .filter(|r| matches!(r, Err(DbError::Deadlock { .. })))
        .count();
    assert_eq!(oks, 1, "exactly one transaction should commit: {results:?}");
    assert_eq!(victims, 1, "exactly one deadlock victim: {results:?}");
    let stats = db.stats();
    assert_eq!(stats.deadlock_aborts, 1);
    assert_eq!(db.dump("Product")[0][1], Value::Int(97));
}

#[test]
fn check_then_insert_gap_deadlock() {
    // The d2 pattern: both check a missing row (gap S locks), then both try
    // to insert it — mutual insert-intention blocking forms a deadlock.
    let db = Arc::new(seeded());
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for i in 0..2 {
        let db = db.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            let mut s = db.session();
            s.begin();
            let q = parse("SELECT * FROM Order o WHERE o.ID = ?").unwrap();
            let r = s.execute(&q, &[Value::Int(500)]).unwrap();
            assert!(r.rows.is_empty());
            barrier.wait();
            let ins = parse("INSERT INTO Order (ID) VALUES (?)").unwrap();
            match s.execute(&ins, &[Value::Int(500 + i)]) {
                Ok(_) => {
                    s.commit().unwrap();
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }));
    }
    let results: Vec<Result<(), DbError>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let oks = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(oks, 1, "exactly one inserter should win: {results:?}");
    assert!(db.stats().deadlock_aborts >= 1);
}

#[test]
fn upsert_avoids_check_then_insert_deadlock() {
    // Fix f2: the UPSERT path takes no gap lock on the hit path and the
    // check-free insert races resolve by ordinary lock waits, not
    // deadlocks.
    let db = Arc::new(seeded());
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let db = db.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            let mut s = db.session();
            s.begin();
            barrier.wait();
            let up = parse(
                "INSERT INTO Product (ID, QTY) VALUES (?, ?) \
                 ON DUPLICATE KEY UPDATE QTY = ?",
            )
            .unwrap();
            let r = s.execute(&up, &[Value::Int(10), Value::Int(1), Value::Int(5)]);
            if r.is_ok() {
                s.commit().unwrap();
            }
            r.map(|d| d.affected)
        }));
    }
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_eq!(db.stats().deadlock_aborts, 0);
}

#[test]
fn stats_track_commits_and_statements() {
    let db = seeded();
    let mut s = db.session();
    s.begin();
    let q = parse("SELECT * FROM Order o WHERE o.ID = ?").unwrap();
    s.execute(&q, &[Value::Int(1)]).unwrap();
    s.execute(&q, &[Value::Int(2)]).unwrap();
    s.commit().unwrap();
    let st = db.stats();
    assert_eq!(st.commits, 1);
    assert_eq!(st.statements, 2);
    assert_eq!(st.rollbacks, 0);
}

#[test]
fn session_drop_rolls_back() {
    let db = seeded();
    {
        let mut s = db.session();
        s.begin();
        let ins = parse("INSERT INTO Order (ID) VALUES (?)").unwrap();
        s.execute(&ins, &[Value::Int(50)]).unwrap();
        // dropped without commit
    }
    assert_eq!(db.count("Order"), 2);
    assert_eq!(db.stats().rollbacks, 1);
}

#[test]
fn next_id_sequences() {
    let db = seeded();
    assert_eq!(db.next_id("Order"), 1);
    assert_eq!(db.next_id("Order"), 2);
    db.bump_id("Order", 100);
    assert_eq!(db.next_id("Order"), 101);
    assert_eq!(db.next_id("Product"), 1);
}

#[test]
fn full_scan_without_index_takes_table_lock_path() {
    // QTY has no index → full scan; concurrent write to the same table
    // must conflict at table level... our model locks the whole table, so
    // the write blocks until the reader commits.
    let db = seeded();
    let mut s1 = db.session();
    s1.begin();
    let q = parse("SELECT * FROM Product p WHERE p.QTY > ?").unwrap();
    let r = s1.execute(&q, &[Value::Int(60)]).unwrap();
    assert_eq!(r.rows.len(), 1);

    let db2 = db.clone();
    let h = thread::spawn(move || {
        let mut s2 = db2.session();
        s2.begin();
        let u = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
        let started = std::time::Instant::now();
        let r = s2.execute(&u, &[Value::Int(0), Value::Int(11)]);
        if r.is_ok() {
            s2.commit().unwrap();
        }
        started.elapsed()
    });
    thread::sleep(Duration::from_millis(120));
    s1.commit().unwrap();
    let waited = h.join().unwrap();
    assert!(
        waited >= Duration::from_millis(80),
        "writer should wait, got {waited:?}"
    );
}

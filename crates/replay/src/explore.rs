//! Deterministic DFS over statement-level interleavings with sleep-set
//! (DPOR-style) pruning.
//!
//! Every explored schedule runs from the root against a fresh
//! [`Database::fork`], so runs are fully independent and bit-identical
//! regardless of exploration order or thread count. Statements execute in
//! nowait mode ([`weseer_db::Session::execute_nowait`]): a lock conflict
//! records a persistent wait-for edge and returns control instead of
//! parking a thread, which gives the explorer instant, deterministic
//! deadlock detection from the lock manager's wait-for graph.
//!
//! Pruning uses sleep sets keyed on table-level lock footprints: after
//! exploring instance `i`'s move at a branch point, sibling branches
//! inherit that move in their sleep set as long as their own first move is
//! independent of it, and any node whose chosen move is asleep is skipped —
//! the schedule it leads to is a reordering of one already explored. A
//! sleeping move is woken (dropped from the set) as soon as a dependent
//! move executes. This is the classic sound formulation; a naive "skip if
//! independent of all earlier moves" check misses required interleavings.

use crate::concretize::ConcreteStmt;
use crate::witness::{render_lock, WitnessStep};
use weseer_db::{Database, DbError, StepResult, TxnId};

/// Budget limits for schedule exploration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Maximum schedules run to completion (deadlock or all-terminated).
    pub max_schedules: usize,
    /// Maximum total runs, including prefix re-executions that stop at a
    /// frontier (defensive cap on DFS work).
    pub max_runs: usize,
    /// Maximum steps within one schedule (defensive; schedules are short).
    pub max_steps: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            max_schedules: 256,
            max_runs: 4096,
            max_steps: 512,
        }
    }
}

/// One transaction instance to interleave: a name (`A1`) and its
/// concretized statements.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Display name, used in witness steps and cycles.
    pub name: String,
    /// Statements, executed in order inside one transaction.
    pub stmts: Vec<ConcreteStmt>,
}

/// A scheduling decision: `(instance index, statement position)`.
pub(crate) type Move = (usize, usize);

/// Result of exploring all schedules within budget.
#[derive(Debug)]
pub enum ExploreOutcome {
    /// A schedule deadlocked; first one found in DFS order.
    Deadlock {
        /// The witness schedule.
        steps: Vec<WitnessStep>,
        /// Final wait-for cycle (instance names, victim first).
        cycle: Vec<String>,
        /// Schedules completed up to and including this one.
        explored: usize,
        /// Branches pruned by sleep sets.
        pruned: usize,
    },
    /// No schedule within budget deadlocked.
    Exhausted {
        /// Schedules completed.
        explored: usize,
        /// Branches pruned by sleep sets.
        pruned: usize,
    },
}

/// Table-level read/write footprint of one move.
#[derive(Debug, Clone)]
struct Footprint {
    reads: Vec<String>,
    writes: Vec<String>,
}

impl Footprint {
    fn conflicts(&self, other: &Footprint) -> bool {
        let wr = |a: &Footprint, b: &Footprint| {
            a.writes
                .iter()
                .any(|t| b.writes.contains(t) || b.reads.contains(t))
        };
        wr(self, other) || wr(other, self)
    }
}

/// Per-instance, per-statement footprints. The *last* statement's footprint
/// is widened to every table the transaction touches, as writes: its
/// completion commits, and the commit releases every lock the transaction
/// holds — reordering it past any conflicting move changes behavior.
pub(crate) struct Footprints(Vec<Vec<Footprint>>);

impl Footprints {
    pub(crate) fn new(instances: &[Instance]) -> Footprints {
        let per_instance = instances
            .iter()
            .map(|inst| {
                let mut fps: Vec<Footprint> = inst
                    .stmts
                    .iter()
                    .map(|s| Footprint {
                        reads: s.reads.clone(),
                        writes: s.writes.clone(),
                    })
                    .collect();
                if let Some(last) = fps.last_mut() {
                    let mut all: Vec<String> = Vec::new();
                    for s in &inst.stmts {
                        for t in s.reads.iter().chain(s.writes.iter()) {
                            if !all.contains(t) {
                                all.push(t.clone());
                            }
                        }
                    }
                    last.writes = all;
                    last.reads.clear();
                }
                fps
            })
            .collect();
        Footprints(per_instance)
    }

    /// Whether two moves are dependent: same instance (program order), or
    /// overlapping table footprints with at least one write. Out-of-range
    /// positions are conservatively dependent.
    pub(crate) fn dependent(&self, a: Move, b: Move) -> bool {
        if a.0 == b.0 {
            return true;
        }
        match (self.0[a.0].get(a.1), self.0[b.0].get(b.1)) {
            (Some(fa), Some(fb)) => fa.conflicts(fb),
            _ => true,
        }
    }
}

/// What one schedule run produced.
enum RunResult {
    /// The lock manager reported a wait-for cycle.
    Deadlock {
        steps: Vec<WitnessStep>,
        cycle: Vec<String>,
    },
    /// Every instance committed or failed; no deadlock on this path.
    Terminal,
    /// A forced move past the decided prefix was in the sleep set: the
    /// whole continuation reorders an already-explored schedule.
    Redundant,
    /// Reached a branch point past the decided prefix: `choices` are the
    /// runnable instances, `positions` their next statement positions, and
    /// `sleep` the sleep set as evolved by the moves executed since the
    /// node's parent frontier.
    Frontier {
        choices: Vec<usize>,
        positions: Vec<usize>,
        sleep: Vec<Move>,
    },
}

/// Explore interleavings of `instances` over forks of `base`, depth first,
/// until a schedule deadlocks or budgets are exhausted.
pub fn explore(base: &Database, instances: &[Instance], config: &ReplayConfig) -> ExploreOutcome {
    let _span = weseer_obs::span("replay.explore");
    let fps = Footprints::new(instances);
    let mut explored = 0usize;
    let mut pruned = 0usize;
    let mut runs = 0usize;
    // DFS stack of (decided prefix, sleep set at the node).
    let mut stack: Vec<(Vec<usize>, Vec<Move>)> = vec![(Vec::new(), Vec::new())];

    let outcome = loop {
        let Some((decisions, sleep)) = stack.pop() else {
            break ExploreOutcome::Exhausted { explored, pruned };
        };
        if explored >= config.max_schedules || runs >= config.max_runs {
            break ExploreOutcome::Exhausted { explored, pruned };
        }
        runs += 1;
        let result = run(base, instances, &fps, &decisions, sleep, config.max_steps);
        if weseer_obs::timeline::enabled() {
            let outcome = match &result {
                RunResult::Deadlock { .. } => "deadlock",
                RunResult::Terminal => "terminal",
                RunResult::Redundant => "redundant",
                RunResult::Frontier { .. } => "frontier",
            };
            weseer_obs::timeline::instant(
                "replay.schedule",
                "replay",
                &[
                    ("run", runs.to_string()),
                    ("depth", decisions.len().to_string()),
                    ("outcome", outcome.to_string()),
                ],
            );
        }
        match result {
            RunResult::Deadlock { steps, cycle } => {
                explored += 1;
                break ExploreOutcome::Deadlock {
                    steps,
                    cycle,
                    explored,
                    pruned,
                };
            }
            RunResult::Terminal => {
                explored += 1;
            }
            RunResult::Redundant => {
                pruned += 1;
            }
            RunResult::Frontier {
                choices,
                positions,
                sleep,
            } => {
                // Expand children; push in reverse so the lowest instance
                // index is explored first (deterministic DFS order).
                let mut children: Vec<(Vec<usize>, Vec<Move>)> = Vec::new();
                let mut explored_here: Vec<Move> = Vec::new();
                for &choice in &choices {
                    let mv: Move = (choice, positions[choice]);
                    if sleep.contains(&mv) {
                        pruned += 1;
                        continue;
                    }
                    let mut child_dec = decisions.clone();
                    child_dec.push(choice);
                    let mut child_sleep: Vec<Move> = sleep
                        .iter()
                        .chain(explored_here.iter())
                        .filter(|m| !fps.dependent(**m, mv))
                        .copied()
                        .collect();
                    child_sleep.sort_unstable();
                    child_sleep.dedup();
                    children.push((child_dec, child_sleep));
                    explored_here.push(mv);
                }
                for child in children.into_iter().rev() {
                    stack.push(child);
                }
            }
        }
    };
    weseer_obs::add("replay.schedules_explored", explored as u64);
    weseer_obs::add("replay.schedules_pruned", pruned as u64);
    outcome
}

/// Execute one schedule from the root on a fresh fork of `base`, following
/// `decisions` at branch points, then stopping at the next branch point (or
/// running to termination/deadlock when none remains).
fn run(
    base: &Database,
    instances: &[Instance],
    fps: &Footprints,
    decisions: &[usize],
    mut sleep: Vec<Move>,
    max_steps: usize,
) -> RunResult {
    let db = base.fork();
    let n = instances.len();
    let mut sessions: Vec<_> = (0..n).map(|_| db.session()).collect();
    for s in &mut sessions {
        s.begin();
    }
    let txn_ids: Vec<TxnId> = sessions
        .iter()
        .map(|s| s.txn_id().expect("begun transaction has an id"))
        .collect();
    let name_of = |t: TxnId| -> String {
        txn_ids
            .iter()
            .position(|x| *x == t)
            .map(|i| instances[i].name.clone())
            .unwrap_or_else(|| t.to_string())
    };

    let mut pos = vec![0usize; n];
    let mut done = vec![false; n];
    let mut failed = vec![false; n];
    let mut blocked = vec![false; n];
    let mut steps_rec: Vec<WitnessStep> = Vec::new();
    let mut di = 0usize;

    for _ in 0..max_steps {
        let runnable: Vec<usize> = (0..n)
            .filter(|&i| !done[i] && !failed[i] && !blocked[i] && pos[i] < instances[i].stmts.len())
            .collect();
        if runnable.is_empty() {
            // Blocked instances cannot persist here: a closing cycle errors
            // out at acquire time, and a finished instance wakes everyone.
            return RunResult::Terminal;
        }
        let choice = if runnable.len() == 1 {
            runnable[0]
        } else if di < decisions.len() {
            let c = decisions[di];
            di += 1;
            if !runnable.contains(&c) {
                // Divergence from the recorded prefix; deterministic
                // execution makes this unreachable, but fail safe.
                return RunResult::Terminal;
            }
            c
        } else {
            return RunResult::Frontier {
                choices: runnable,
                positions: pos,
                sleep,
            };
        };

        let mv: Move = (choice, pos[choice]);
        if di >= decisions.len() {
            // Past the parent frontier. A forced move that is asleep means
            // this continuation only reorders an explored schedule.
            // (Decided moves can't be asleep: the driver filters them.)
            if sleep.contains(&mv) {
                return RunResult::Redundant;
            }
            // Executed moves wake dependent sleeping moves. (The decided
            // prefix's wakes are already reflected in the inherited set.)
            sleep.retain(|m| !fps.dependent(*m, mv));
        }

        let inst = &instances[choice];
        let cs = &inst.stmts[pos[choice]];
        let mut step = WitnessStep {
            instance: inst.name.clone(),
            label: cs.label.clone(),
            sql: cs.sql.clone(),
            locks: Vec::new(),
            outcome: String::new(),
            waits_on: Vec::new(),
        };
        match sessions[choice].execute_nowait(&cs.stmt, &cs.params) {
            Ok(StepResult::Done(data)) => {
                step.locks = data.locks.iter().map(|(t, m)| render_lock(t, *m)).collect();
                step.outcome = "ok".into();
                steps_rec.push(step);
                pos[choice] += 1;
                if pos[choice] == inst.stmts.len() {
                    let _ = sessions[choice].commit();
                    done[choice] = true;
                    // Released locks may unblock anyone; let them retry.
                    for b in blocked.iter_mut() {
                        *b = false;
                    }
                }
            }
            Ok(StepResult::Blocked { on, target, mode }) => {
                step.locks = vec![render_lock(&target, mode)];
                step.outcome = "blocked".into();
                step.waits_on = on.iter().map(|t| name_of(*t)).collect();
                steps_rec.push(step);
                blocked[choice] = true;
            }
            Err(DbError::Deadlock { cycle }) => {
                let cycle_names: Vec<String> = cycle.iter().map(|t| name_of(*t)).collect();
                step.outcome = "deadlock".into();
                step.waits_on = cycle_names.clone();
                steps_rec.push(step);
                return RunResult::Deadlock {
                    steps: steps_rec,
                    cycle: cycle_names,
                };
            }
            Err(e) => {
                step.outcome = format!("error: {e}");
                steps_rec.push(step);
                // `execute_nowait` already rolled back aborting errors;
                // roll back statement-level ones (e.g. duplicate key) too —
                // partial replays cannot meaningfully continue.
                sessions[choice].rollback();
                failed[choice] = true;
                for b in blocked.iter_mut() {
                    *b = false;
                }
            }
        }
    }
    RunResult::Terminal
}

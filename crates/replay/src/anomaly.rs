//! Weak-isolation anomaly exploration: the deadlock explorer's DFS, run
//! at a chosen MVCC isolation level, confirming the anomalies the storage
//! engine's runtime oracle ([`weseer_db::AnomalyTracker`]) reports.
//!
//! Where [`crate::explore`] hunts for schedules that *deadlock*,
//! [`explore_anomalies`] hunts for schedules whose committed history
//! exhibits a lost update, write skew, or read fracture under
//! `read-committed`, `repeatable-read`, or `snapshot` isolation. Every
//! schedule runs against a fresh [`Database::fork`] whose default
//! isolation is set to the requested level, so plain SELECTs become
//! lock-free snapshot reads exactly as they would in production. A
//! deadlock or write-conflict abort inside a schedule fails that instance
//! and exploration continues — aborted transactions cannot contribute
//! anomalies, which is precisely how snapshot isolation kills lost
//! updates.
//!
//! As a semantic backstop, every terminal schedule's final table state is
//! digested and compared against the states reachable by *serial*
//! executions of the same instances; a committed interleaving that lands
//! outside that set is reported as a `non-serializable-state` finding
//! even when the tracker saw nothing. At the default serializable level
//! strict 2PL makes this check provably quiet — the property the replay
//! proptests pin down.

use crate::explore::{Footprints, Instance, Move, ReplayConfig};
use crate::witness::{join_json_strings, json_escape, render_lock, WitnessInstance, WitnessStep};
use std::fmt::Write as _;
use weseer_db::{Database, DbError, IsolationLevel, StepResult, TxnId};

/// One confirmed anomaly in a witness schedule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnomalyFinding {
    /// Kebab-case anomaly kind (`lost-update`, `write-skew`,
    /// `read-fracture`, `non-serializable-state`).
    pub kind: String,
    /// Table of the conflicted row (`*` for whole-state findings).
    pub table: String,
    /// Participating instances, by name.
    pub instances: Vec<String>,
    /// Human-readable explanation with row/version detail.
    pub detail: String,
}

/// A concrete anomaly witness: the first schedule found by the explorer
/// whose committed history exhibits at least one anomaly at the given
/// isolation level. Mirrors [`crate::Witness`]'s canonical JSON shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyWitness {
    /// Kebab-case isolation level the schedule ran under.
    pub isolation: String,
    /// Participating instances in name order.
    pub instances: Vec<WitnessInstance>,
    /// The schedule, in execution order.
    pub steps: Vec<WitnessStep>,
    /// Confirmed anomalies, sorted.
    pub anomalies: Vec<AnomalyFinding>,
    /// Schedules fully explored before (and including) this one.
    pub schedules_explored: usize,
    /// Schedules pruned by the sleep-set check.
    pub schedules_pruned: usize,
}

impl AnomalyWitness {
    /// Canonical single-line JSON rendering (stable field order; byte
    /// identical across runs and thread counts) — the anomaly analogue of
    /// [`crate::Witness::to_json`].
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"isolation\":\"{}\",\"instances\":[",
            json_escape(&self.isolation)
        );
        for (i, inst) in self.instances.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"api\":\"{}\"}}",
                json_escape(&inst.name),
                json_escape(&inst.api)
            );
        }
        s.push_str("],\"steps\":[");
        for (i, st) in self.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"instance\":\"{}\",\"label\":\"{}\",\"sql\":\"{}\",\"locks\":[{}],\"outcome\":\"{}\",\"waits_on\":[{}]}}",
                json_escape(&st.instance),
                json_escape(&st.label),
                json_escape(&st.sql),
                join_json_strings(&st.locks),
                json_escape(&st.outcome),
                join_json_strings(&st.waits_on),
            );
        }
        s.push_str("],\"anomalies\":[");
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"kind\":\"{}\",\"table\":\"{}\",\"instances\":[{}],\"detail\":\"{}\"}}",
                json_escape(&a.kind),
                json_escape(&a.table),
                join_json_strings(&a.instances),
                json_escape(&a.detail),
            );
        }
        let _ = write!(
            s,
            "],\"schedules_explored\":{},\"schedules_pruned\":{}}}",
            self.schedules_explored, self.schedules_pruned
        );
        s
    }

    /// Parse a witness serialized by [`AnomalyWitness::to_json`];
    /// round-trips byte exactly.
    pub fn from_json(s: &str) -> Option<AnomalyWitness> {
        use weseer_store::json::Json;
        let v = Json::parse(s).ok()?;
        let strings = |j: &Json| -> Option<Vec<String>> {
            j.as_arr()?
                .iter()
                .map(|x| x.as_str().map(str::to_string))
                .collect()
        };
        let field =
            |j: &Json, k: &str| -> Option<String> { j.get(k)?.as_str().map(str::to_string) };
        let mut instances = Vec::new();
        for inst in v.get("instances")?.as_arr()? {
            instances.push(WitnessInstance {
                name: field(inst, "name")?,
                api: field(inst, "api")?,
            });
        }
        let mut steps = Vec::new();
        for st in v.get("steps")?.as_arr()? {
            steps.push(WitnessStep {
                instance: field(st, "instance")?,
                label: field(st, "label")?,
                sql: field(st, "sql")?,
                locks: strings(st.get("locks")?)?,
                outcome: field(st, "outcome")?,
                waits_on: strings(st.get("waits_on")?)?,
            });
        }
        let mut anomalies = Vec::new();
        for a in v.get("anomalies")?.as_arr()? {
            anomalies.push(AnomalyFinding {
                kind: field(a, "kind")?,
                table: field(a, "table")?,
                instances: strings(a.get("instances")?)?,
                detail: field(a, "detail")?,
            });
        }
        Some(AnomalyWitness {
            isolation: field(&v, "isolation")?,
            instances,
            steps,
            anomalies,
            schedules_explored: v.get("schedules_explored")?.as_u64()? as usize,
            schedules_pruned: v.get("schedules_pruned")?.as_u64()? as usize,
        })
    }

    /// Human-readable rendering for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "anomaly witness at {} ({} steps; {} schedules explored, {} pruned):",
            self.isolation,
            self.steps.len(),
            self.schedules_explored,
            self.schedules_pruned
        );
        for inst in &self.instances {
            let _ = writeln!(out, "  {} = {}", inst.name, inst.api);
        }
        for st in &self.steps {
            let _ = write!(
                out,
                "  {}.{} [{}] {}",
                st.instance, st.label, st.outcome, st.sql
            );
            if !st.waits_on.is_empty() && st.outcome == "blocked" {
                let _ = write!(out, "  (waits on {})", st.waits_on.join(", "));
            }
            let _ = writeln!(out);
            if !st.locks.is_empty() {
                let _ = writeln!(out, "      locks: {}", st.locks.join(", "));
            }
        }
        for a in &self.anomalies {
            let _ = writeln!(
                out,
                "  anomaly: {} on {} [{}] — {}",
                a.kind,
                a.table,
                a.instances.join(", "),
                a.detail
            );
        }
        out
    }
}

/// Result of exploring interleavings for anomalies within budget.
#[derive(Debug)]
pub enum AnomalyOutcome {
    /// A committed schedule exhibited at least one anomaly; first one
    /// found in DFS order.
    Anomalous(Box<AnomalyWitness>),
    /// No schedule within budget exhibited an anomaly.
    Clean {
        /// Schedules completed.
        explored: usize,
        /// Branches pruned by sleep sets.
        pruned: usize,
    },
}

impl AnomalyOutcome {
    /// The witness, if anomalous.
    pub fn witness(&self) -> Option<&AnomalyWitness> {
        match self {
            AnomalyOutcome::Anomalous(w) => Some(w),
            AnomalyOutcome::Clean { .. } => None,
        }
    }
}

/// Deterministic digest of the database's full committed table state:
/// FNV-1a over every table's primary-order dump, tables in name order.
pub fn state_digest(db: &Database) -> String {
    let mut names: Vec<String> = db.catalog().tables().map(|t| t.name.clone()).collect();
    names.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for name in &names {
        eat(name);
        eat("=");
        for row in db.dump(name) {
            eat(&format!("{row:?};"));
        }
        eat("|");
    }
    format!("{h:016x}")
}

/// State digests reachable by running the instances *serially* at `iso`:
/// all permutations for up to three instances, first and reverse order
/// beyond that. Errors inside a serial run roll that instance back (its
/// effects vanish, matching what the interleaved run would keep).
pub fn serial_state_digests(
    base: &Database,
    instances: &[Instance],
    iso: IsolationLevel,
) -> Vec<String> {
    let n = instances.len();
    let orders: Vec<Vec<usize>> = if n <= 3 {
        permutations(n)
    } else {
        vec![(0..n).collect(), (0..n).rev().collect()]
    };
    let mut digests: Vec<String> = orders
        .iter()
        .map(|order| {
            let db = base.fork();
            db.set_default_isolation(iso);
            for &i in order {
                let mut s = db.session();
                s.begin();
                let mut ok = true;
                for cs in &instances[i].stmts {
                    if s.execute(&cs.stmt, &cs.params).is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let _ = s.commit();
                } else if s.in_txn() {
                    s.rollback();
                }
            }
            state_digest(&db)
        })
        .collect();
    digests.sort();
    digests.dedup();
    digests
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    fn heap(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, cur, out);
            if k.is_multiple_of(2) {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut cur, &mut out);
    out.sort();
    out
}

/// What one anomaly-schedule run produced (mirrors the deadlock
/// explorer's run result, with terminal schedules classified by the
/// oracle instead of by the wait-for graph).
enum AnomalyRun {
    /// Every instance finished and the committed history shows anomalies.
    Anomalous {
        steps: Vec<WitnessStep>,
        findings: Vec<AnomalyFinding>,
    },
    /// Every instance finished; history is clean.
    Terminal,
    /// A forced move past the decided prefix was asleep.
    Redundant,
    /// Reached a branch point past the decided prefix.
    Frontier {
        choices: Vec<usize>,
        positions: Vec<usize>,
        sleep: Vec<Move>,
    },
}

/// Explore interleavings of `instances` over forks of `base` at isolation
/// level `iso`, depth first, until a committed schedule exhibits an
/// anomaly or budgets are exhausted. `apis` names each instance's API for
/// the witness (parallel to `instances`).
pub fn explore_anomalies(
    base: &Database,
    instances: &[Instance],
    apis: &[String],
    iso: IsolationLevel,
    config: &ReplayConfig,
) -> AnomalyOutcome {
    debug_assert_eq!(instances.len(), apis.len());
    let _span = weseer_obs::span("replay.anomaly.explore");
    let fps = Footprints::new(instances);
    let serial = serial_state_digests(base, instances, iso);
    let mut explored = 0usize;
    let mut pruned = 0usize;
    let mut runs = 0usize;
    let mut stack: Vec<(Vec<usize>, Vec<Move>)> = vec![(Vec::new(), Vec::new())];

    let outcome = loop {
        let Some((decisions, sleep)) = stack.pop() else {
            break AnomalyOutcome::Clean { explored, pruned };
        };
        if explored >= config.max_schedules || runs >= config.max_runs {
            break AnomalyOutcome::Clean { explored, pruned };
        }
        runs += 1;
        match run_anomaly(
            base,
            instances,
            &fps,
            iso,
            &serial,
            &decisions,
            sleep,
            config.max_steps,
        ) {
            AnomalyRun::Anomalous { steps, findings } => {
                explored += 1;
                break AnomalyOutcome::Anomalous(Box::new(AnomalyWitness {
                    isolation: iso.name().to_string(),
                    instances: instances
                        .iter()
                        .zip(apis)
                        .map(|(inst, api)| WitnessInstance {
                            name: inst.name.clone(),
                            api: api.clone(),
                        })
                        .collect(),
                    steps,
                    anomalies: findings,
                    schedules_explored: explored,
                    schedules_pruned: pruned,
                }));
            }
            AnomalyRun::Terminal => {
                explored += 1;
            }
            AnomalyRun::Redundant => {
                pruned += 1;
            }
            AnomalyRun::Frontier {
                choices,
                positions,
                sleep,
            } => {
                let mut children: Vec<(Vec<usize>, Vec<Move>)> = Vec::new();
                let mut explored_here: Vec<Move> = Vec::new();
                for &choice in &choices {
                    let mv: Move = (choice, positions[choice]);
                    if sleep.contains(&mv) {
                        pruned += 1;
                        continue;
                    }
                    let mut child_dec = decisions.clone();
                    child_dec.push(choice);
                    let mut child_sleep: Vec<Move> = sleep
                        .iter()
                        .chain(explored_here.iter())
                        .filter(|m| !fps.dependent(**m, mv))
                        .copied()
                        .collect();
                    child_sleep.sort_unstable();
                    child_sleep.dedup();
                    children.push((child_dec, child_sleep));
                    explored_here.push(mv);
                }
                for child in children.into_iter().rev() {
                    stack.push(child);
                }
            }
        }
    };
    weseer_obs::add("replay.anomaly.schedules_explored", explored as u64);
    weseer_obs::add("replay.anomaly.schedules_pruned", pruned as u64);
    weseer_obs::incr(match &outcome {
        AnomalyOutcome::Anomalous(_) => "replay.anomaly.confirmed",
        AnomalyOutcome::Clean { .. } => "replay.anomaly.clean",
    });
    outcome
}

/// Execute one schedule at isolation `iso` from the root on a fresh fork,
/// following `decisions` at branch points. Unlike the deadlock explorer,
/// a deadlock (or write-conflict) abort fails the instance and the
/// schedule continues: the anomaly question is about the history that
/// *commits*.
#[allow(clippy::too_many_arguments)]
fn run_anomaly(
    base: &Database,
    instances: &[Instance],
    fps: &Footprints,
    iso: IsolationLevel,
    serial: &[String],
    decisions: &[usize],
    mut sleep: Vec<Move>,
    max_steps: usize,
) -> AnomalyRun {
    let db = base.fork();
    db.set_default_isolation(iso);
    let n = instances.len();
    let mut sessions: Vec<_> = (0..n).map(|_| db.session()).collect();
    for s in &mut sessions {
        s.begin();
    }
    let txn_ids: Vec<TxnId> = sessions
        .iter()
        .map(|s| s.txn_id().expect("begun transaction has an id"))
        .collect();
    let name_of = |t: TxnId| -> String {
        txn_ids
            .iter()
            .position(|x| *x == t)
            .map(|i| instances[i].name.clone())
            .unwrap_or_else(|| t.to_string())
    };

    let mut pos = vec![0usize; n];
    let mut done = vec![false; n];
    let mut failed = vec![false; n];
    let mut blocked = vec![false; n];
    let mut steps_rec: Vec<WitnessStep> = Vec::new();
    let mut di = 0usize;

    for _ in 0..max_steps {
        let runnable: Vec<usize> = (0..n)
            .filter(|&i| !done[i] && !failed[i] && !blocked[i] && pos[i] < instances[i].stmts.len())
            .collect();
        if runnable.is_empty() {
            return finish_anomaly(&db, serial, instances, &txn_ids, &failed, steps_rec);
        }
        let choice = if runnable.len() == 1 {
            runnable[0]
        } else if di < decisions.len() {
            let c = decisions[di];
            di += 1;
            if !runnable.contains(&c) {
                return AnomalyRun::Terminal;
            }
            c
        } else {
            return AnomalyRun::Frontier {
                choices: runnable,
                positions: pos,
                sleep,
            };
        };

        let mv: Move = (choice, pos[choice]);
        if di >= decisions.len() {
            if sleep.contains(&mv) {
                return AnomalyRun::Redundant;
            }
            sleep.retain(|m| !fps.dependent(*m, mv));
        }

        let inst = &instances[choice];
        let cs = &inst.stmts[pos[choice]];
        let mut step = WitnessStep {
            instance: inst.name.clone(),
            label: cs.label.clone(),
            sql: cs.sql.clone(),
            locks: Vec::new(),
            outcome: String::new(),
            waits_on: Vec::new(),
        };
        match sessions[choice].execute_nowait(&cs.stmt, &cs.params) {
            Ok(StepResult::Done(data)) => {
                step.locks = data.locks.iter().map(|(t, m)| render_lock(t, *m)).collect();
                step.outcome = "ok".into();
                steps_rec.push(step);
                pos[choice] += 1;
                if pos[choice] == inst.stmts.len() {
                    let _ = sessions[choice].commit();
                    done[choice] = true;
                    for b in blocked.iter_mut() {
                        *b = false;
                    }
                }
            }
            Ok(StepResult::Blocked { on, target, mode }) => {
                step.locks = vec![render_lock(&target, mode)];
                step.outcome = "blocked".into();
                step.waits_on = on.iter().map(|t| name_of(*t)).collect();
                steps_rec.push(step);
                blocked[choice] = true;
            }
            Err(DbError::Deadlock { cycle }) => {
                // An abort, not a verdict: the victim's history vanishes
                // and the surviving instances keep running.
                step.outcome = "deadlock".into();
                step.waits_on = cycle.iter().map(|t| name_of(*t)).collect();
                steps_rec.push(step);
                failed[choice] = true;
                for b in blocked.iter_mut() {
                    *b = false;
                }
            }
            Err(e) => {
                step.outcome = format!("error: {e}");
                steps_rec.push(step);
                if sessions[choice].in_txn() {
                    sessions[choice].rollback();
                }
                failed[choice] = true;
                for b in blocked.iter_mut() {
                    *b = false;
                }
            }
        }
    }
    AnomalyRun::Terminal
}

/// Classify a terminal schedule: tracker events first, then the
/// serial-state cross-check (only when every instance committed — an
/// abort legitimately removes effects no serial order would lose).
fn finish_anomaly(
    db: &Database,
    serial: &[String],
    instances: &[Instance],
    txn_ids: &[TxnId],
    failed: &[bool],
    steps: Vec<WitnessStep>,
) -> AnomalyRun {
    let name_of = |t: TxnId| -> String {
        txn_ids
            .iter()
            .position(|x| *x == t)
            .map(|i| instances[i].name.clone())
            .unwrap_or_else(|| t.to_string())
    };
    let mut findings: Vec<AnomalyFinding> = db
        .anomaly_events()
        .into_iter()
        .map(|ev| AnomalyFinding {
            kind: ev.kind.name().to_string(),
            table: ev.table.clone(),
            instances: ev.txns.iter().map(|t| name_of(*t)).collect(),
            detail: ev.detail.clone(),
        })
        .collect();
    if findings.is_empty() && !failed.iter().any(|&f| f) && instances.len() <= 3 {
        let digest = state_digest(db);
        if !serial.contains(&digest) {
            findings.push(AnomalyFinding {
                kind: "non-serializable-state".into(),
                table: "*".into(),
                instances: instances.iter().map(|i| i.name.clone()).collect(),
                detail: format!(
                    "final state {digest} matches none of the {} serial execution(s)",
                    serial.len()
                ),
            });
        }
    }
    if findings.is_empty() {
        return AnomalyRun::Terminal;
    }
    findings.sort();
    findings.dedup();
    AnomalyRun::Anomalous { steps, findings }
}

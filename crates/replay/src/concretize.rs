//! Rendering a traced transaction's statements with concrete parameter
//! values taken from a SAT model.
//!
//! The analyzer proves a cycle satisfiable over symbolic API inputs; the
//! replay engine must then *execute* the two transactions for real. Each
//! traced parameter carries the concrete value observed during trace
//! collection plus (optionally) a symbolic term over API inputs. Where the
//! SAT model assigns every variable the term mentions, we evaluate the term
//! under the model — the deadlock-triggering input chosen by the solver —
//! and fall back to the observed concrete value otherwise (e.g. values
//! derived from array reads the model does not pin down).

use weseer_analyzer::CollectedTrace;
use weseer_smt::{Ctx, Model, ModelValue, TermId, TermKind};
use weseer_sqlir::{Statement, Value};

/// One statement of a transaction, ready to execute: parsed form, concrete
/// parameters, and the rendered SQL shown in the witness.
#[derive(Debug, Clone)]
pub struct ConcreteStmt {
    /// `Q{n}` label matching the trace (1-based trace-wide index).
    pub label: String,
    /// 1-based trace-wide statement index.
    pub index: usize,
    /// Parsed statement, executable against [`weseer_db::Session`].
    pub stmt: Statement,
    /// Concrete parameter values (model-derived where possible).
    pub params: Vec<Value>,
    /// SQL with parameters substituted, for the witness.
    pub sql: String,
    /// Tables read but not written (table-level footprint for DPOR).
    pub reads: Vec<String>,
    /// Tables written (or locked exclusively via `FOR UPDATE`).
    pub writes: Vec<String>,
}

impl ConcreteStmt {
    /// Build from a parsed statement and concrete parameters, deriving the
    /// label, rendered SQL, and table-level footprint.
    pub fn new(index: usize, stmt: Statement, params: Vec<Value>) -> ConcreteStmt {
        let writes: Vec<String> = stmt
            .written_table()
            .map(str::to_string)
            .into_iter()
            .collect();
        let reads = stmt
            .tables()
            .into_iter()
            .filter(|t| !writes.contains(t))
            .collect();
        let sql = render_sql(&stmt.to_string(), &params);
        ConcreteStmt {
            label: format!("Q{index}"),
            index,
            stmt,
            params,
            sql,
            reads,
            writes,
        }
    }
}

/// Concretize the `txn`-th transaction of `trace` under `model` (the SAT
/// model already projected onto this instance's namespace via
/// [`Model::strip_prefix`]).
pub fn concretize_txn(trace: &CollectedTrace, txn: usize, model: &Model) -> Vec<ConcreteStmt> {
    let Some(tt) = trace.trace.txns.get(txn) else {
        return Vec::new();
    };
    trace
        .trace
        .statements_of(tt.id)
        .iter()
        .map(|rec| {
            let params: Vec<Value> = rec
                .params
                .iter()
                .map(|p| match p.sym {
                    Some(t) if term_fully_assigned(&trace.ctx, model, t) => {
                        model_value_to_value(model.eval(&trace.ctx, t))
                    }
                    _ => p.concrete.clone(),
                })
                .collect();
            ConcreteStmt::new(rec.index, rec.stmt.clone(), params)
        })
        .collect()
}

/// Whether every variable `t` mentions is assigned by `model`, so that
/// `model.eval` returns the solver-chosen value rather than a default.
/// Array reads are conservatively treated as unassigned (their value
/// depends on store chains the projection does not track).
fn term_fully_assigned(ctx: &Ctx, model: &Model, t: TermId) -> bool {
    let mut stack = vec![t];
    while let Some(t) = stack.pop() {
        match ctx.kind(t) {
            TermKind::Var(name) => {
                if model.get(name).is_none() {
                    return false;
                }
            }
            TermKind::BoolConst(_) | TermKind::NumConst(_) | TermKind::StrConst(_) => {}
            TermKind::Add(a, b) | TermKind::Sub(a, b) | TermKind::Eq(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            TermKind::Cmp(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            TermKind::Neg(a) | TermKind::MulConst(_, a) | TermKind::Not(a) => stack.push(*a),
            TermKind::And(parts) | TermKind::Or(parts) => stack.extend(parts.iter().copied()),
            TermKind::Select(..) | TermKind::Store(..) => return false,
        }
    }
    true
}

fn model_value_to_value(v: ModelValue) -> Value {
    match v {
        ModelValue::Int(i) => Value::Int(i),
        ModelValue::Real(x) => Value::Float(x),
        ModelValue::Str(s) => Value::Str(s),
        ModelValue::Bool(b) => Value::Bool(b),
    }
}

/// Substitute the `i`-th `?` placeholder with the `i`-th parameter's SQL
/// literal rendering ([`Value`]'s `Display`). Extra placeholders are kept.
pub fn render_sql(template: &str, params: &[Value]) -> String {
    let mut out = String::with_capacity(template.len() + 16 * params.len());
    let mut next = 0;
    for ch in template.chars() {
        if ch == '?' && next < params.len() {
            out.push_str(&params[next].to_string());
            next += 1;
        } else {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_sqlir::parser::parse;

    #[test]
    fn render_sql_substitutes_in_order() {
        let s = render_sql(
            "UPDATE T SET V = ? WHERE ID = ? AND NAME = ?",
            &[Value::Int(3), Value::Int(7), Value::Str("o'k".into())],
        );
        assert_eq!(s, "UPDATE T SET V = 3 WHERE ID = 7 AND NAME = 'o''k'");
    }

    #[test]
    fn footprint_splits_reads_and_writes() {
        let upd = ConcreteStmt::new(
            1,
            parse("UPDATE T SET V = ? WHERE ID = ?").unwrap(),
            vec![Value::Int(1), Value::Int(2)],
        );
        assert!(upd.reads.is_empty());
        assert_eq!(upd.writes, vec!["T".to_string()]);

        let sel = ConcreteStmt::new(
            2,
            parse("SELECT * FROM T t WHERE t.ID = ?").unwrap(),
            vec![Value::Int(2)],
        );
        assert_eq!(sel.reads, vec!["T".to_string()]);
        assert!(sel.writes.is_empty());

        let sfu = ConcreteStmt::new(
            3,
            parse("SELECT * FROM T t WHERE t.ID = ? FOR UPDATE").unwrap(),
            vec![Value::Int(2)],
        );
        assert_eq!(sfu.writes, vec!["T".to_string()]);
        assert!(sfu.reads.is_empty());
    }
}

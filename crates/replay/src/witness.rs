//! Concrete deadlock witnesses: the ordered schedule that provably
//! deadlocks, ready to attach to a diagnosis report or export as JSON.

use std::fmt::Write as _;
use weseer_db::{KeyBound, LockMode, LockTarget};

/// One executed (or attempted) statement in the witness schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// Instance name (`A1` / `A2`).
    pub instance: String,
    /// Statement label within the instance's trace (`Q4`).
    pub label: String,
    /// Concrete SQL as executed.
    pub sql: String,
    /// Locks acquired (rendered), or the lock requested when blocked.
    pub locks: Vec<String>,
    /// `ok`, `blocked`, `deadlock`, or `error: …`.
    pub outcome: String,
    /// Instances this step waits on (blocked) or the abort cycle
    /// (deadlock).
    pub waits_on: Vec<String>,
}

/// An instance participating in the witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessInstance {
    /// Instance name (`A1` / `A2`).
    pub name: String,
    /// The API whose trace the instance replays.
    pub api: String,
}

/// A concrete deadlock witness: the first deadlocking schedule found by the
/// explorer, with every step's SQL and locks plus the final wait-for cycle
/// reported by the lock manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Participating instances in name order.
    pub instances: Vec<WitnessInstance>,
    /// The schedule, in execution order.
    pub steps: Vec<WitnessStep>,
    /// Final wait-for cycle as instance names, victim first
    /// (`[A2, A1]` means A2 waits on A1 waits on A2).
    pub cycle: Vec<String>,
    /// Schedules fully explored before (and including) this one.
    pub schedules_explored: usize,
    /// Schedules pruned by the sleep-set check.
    pub schedules_pruned: usize,
}

impl Witness {
    /// Whether every participating instance appears in the final cycle.
    pub fn cycle_covers_instances(&self) -> bool {
        self.instances.iter().all(|i| self.cycle.contains(&i.name))
    }

    /// Canonical single-line JSON rendering (stable field order; byte
    /// identical across runs and thread counts).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"instances\":[");
        for (i, inst) in self.instances.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"api\":\"{}\"}}",
                json_escape(&inst.name),
                json_escape(&inst.api)
            );
        }
        s.push_str("],\"steps\":[");
        for (i, st) in self.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"instance\":\"{}\",\"label\":\"{}\",\"sql\":\"{}\",\"locks\":[{}],\"outcome\":\"{}\",\"waits_on\":[{}]}}",
                json_escape(&st.instance),
                json_escape(&st.label),
                json_escape(&st.sql),
                join_json_strings(&st.locks),
                json_escape(&st.outcome),
                join_json_strings(&st.waits_on),
            );
        }
        let _ = write!(
            s,
            "],\"cycle\":[{}],\"schedules_explored\":{},\"schedules_pruned\":{}}}",
            join_json_strings(&self.cycle),
            self.schedules_explored,
            self.schedules_pruned
        );
        s
    }

    /// Parse a witness serialized by [`Witness::to_json`]. Round-trips
    /// exactly: `from_json(w.to_json()).unwrap().to_json() == w.to_json()`,
    /// which is what lets the incremental store persist confirmed
    /// witnesses and re-export them byte-identically on warm runs.
    pub fn from_json(s: &str) -> Option<Witness> {
        use weseer_store::json::Json;
        let v = Json::parse(s).ok()?;
        let strings = |j: &Json| -> Option<Vec<String>> {
            j.as_arr()?
                .iter()
                .map(|x| x.as_str().map(str::to_string))
                .collect()
        };
        let field =
            |j: &Json, k: &str| -> Option<String> { j.get(k)?.as_str().map(str::to_string) };
        let mut instances = Vec::new();
        for inst in v.get("instances")?.as_arr()? {
            instances.push(WitnessInstance {
                name: field(inst, "name")?,
                api: field(inst, "api")?,
            });
        }
        let mut steps = Vec::new();
        for st in v.get("steps")?.as_arr()? {
            steps.push(WitnessStep {
                instance: field(st, "instance")?,
                label: field(st, "label")?,
                sql: field(st, "sql")?,
                locks: strings(st.get("locks")?)?,
                outcome: field(st, "outcome")?,
                waits_on: strings(st.get("waits_on")?)?,
            });
        }
        Some(Witness {
            instances,
            steps,
            cycle: strings(v.get("cycle")?)?,
            schedules_explored: v.get("schedules_explored")?.as_u64()? as usize,
            schedules_pruned: v.get("schedules_pruned")?.as_u64()? as usize,
        })
    }

    /// Human-readable rendering for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "witness schedule ({} steps; {} schedules explored, {} pruned):",
            self.steps.len(),
            self.schedules_explored,
            self.schedules_pruned
        );
        for inst in &self.instances {
            let _ = writeln!(out, "  {} = {}", inst.name, inst.api);
        }
        for st in &self.steps {
            let _ = write!(
                out,
                "  {}.{} [{}] {}",
                st.instance, st.label, st.outcome, st.sql
            );
            if !st.waits_on.is_empty() && st.outcome == "blocked" {
                let _ = write!(out, "  (waits on {})", st.waits_on.join(", "));
            }
            let _ = writeln!(out);
            if !st.locks.is_empty() {
                let _ = writeln!(out, "      locks: {}", st.locks.join(", "));
            }
        }
        if !self.cycle.is_empty() {
            let mut c = self.cycle.join(" -> ");
            let _ = write!(c, " -> {}", self.cycle[0]);
            let _ = writeln!(out, "  wait-for cycle: {c}");
        }
        out
    }
}

/// Render a lock grab as a short stable string, e.g. `X row
/// Product.PRIMARY<3>` or `II gap Stock.PRIMARY before <7>`.
pub fn render_lock(target: &LockTarget, mode: LockMode) -> String {
    let m = match mode {
        LockMode::Shared => "S",
        LockMode::Exclusive => "X",
        LockMode::InsertIntention => "II",
        LockMode::IntentionShared => "IS",
        LockMode::IntentionExclusive => "IX",
    };
    match target {
        LockTarget::Table { table } => format!("{m} table {table}"),
        LockTarget::Row { table, index, key } => {
            format!("{m} row {table}.{index}{}", KeyBound::Key(key.clone()))
        }
        LockTarget::Gap {
            table,
            index,
            upper,
        } => format!("{m} gap {table}.{index} before {upper}"),
    }
}

pub(crate) fn join_json_strings(parts: &[String]) -> String {
    let mut s = String::new();
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", json_escape(p));
    }
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Witness {
        Witness {
            instances: vec![
                WitnessInstance {
                    name: "A1".into(),
                    api: "Add2".into(),
                },
                WitnessInstance {
                    name: "A2".into(),
                    api: "Ship".into(),
                },
            ],
            steps: vec![
                WitnessStep {
                    instance: "A1".into(),
                    label: "Q4".into(),
                    sql: "UPDATE T SET V = 1 WHERE ID = 1".into(),
                    locks: vec!["X row T.PRIMARY<1>".into()],
                    outcome: "ok".into(),
                    waits_on: vec![],
                },
                WitnessStep {
                    instance: "A2".into(),
                    label: "Q6".into(),
                    sql: "UPDATE T SET V = 1 WHERE ID = 1".into(),
                    locks: vec![],
                    outcome: "deadlock".into(),
                    waits_on: vec!["A2".into(), "A1".into()],
                },
            ],
            cycle: vec!["A2".into(), "A1".into()],
            schedules_explored: 3,
            schedules_pruned: 1,
        }
    }

    #[test]
    fn json_is_single_line_and_escaped() {
        let mut w = sample();
        w.steps[0].sql = "SELECT 'a\"b'".into();
        let j = w.to_json();
        assert!(!j.contains('\n'));
        assert!(j.contains("\\\"b"));
        assert!(j.starts_with("{\"instances\":"));
        assert!(j.ends_with("\"schedules_explored\":3,\"schedules_pruned\":1}"));
    }

    #[test]
    fn from_json_round_trips_byte_exactly() {
        let mut w = sample();
        w.steps[0].sql = "SELECT 'a\"b\\c\nd'".into();
        let j = w.to_json();
        let parsed = Witness::from_json(&j).expect("parse");
        assert_eq!(parsed, w);
        assert_eq!(parsed.to_json(), j);
        assert!(Witness::from_json("{\"instances\":[]}").is_none());
    }

    #[test]
    fn render_shows_cycle_and_locks() {
        let w = sample();
        let r = w.render();
        assert!(r.contains("A1 = Add2"));
        assert!(r.contains("wait-for cycle: A2 -> A1 -> A2"));
        assert!(r.contains("X row T.PRIMARY<1>"));
    }

    #[test]
    fn cycle_covers_instances_checks_both() {
        let mut w = sample();
        assert!(w.cycle_covers_instances());
        w.cycle = vec!["A1".into()];
        assert!(!w.cycle_covers_instances());
    }
}

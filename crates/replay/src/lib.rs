//! # weseer-replay
//!
//! Concrete deadlock-witness replay: turn the analyzer's SAT verdicts into
//! *executions that actually deadlock*.
//!
//! The analyzer (phases 1–3) proves a lock-order cycle satisfiable over
//! symbolic API inputs and database state. That is a static claim; this
//! crate checks it dynamically, CLOTHO-style:
//!
//! 1. **Concretize** ([`concretize`]) — render each involved transaction's
//!    traced statements with parameter values evaluated under the SAT
//!    model (projected per instance via [`weseer_smt::Model::strip_prefix`]),
//!    so the replayed inputs are exactly the ones the solver chose.
//! 2. **Explore** ([`explore`]) — deterministic DFS over statement-level
//!    interleavings of the two transactions against a fresh
//!    [`weseer_db::Database::fork`], with sleep-set (DPOR-style) pruning
//!    keyed on table-level lock footprints. Statements run in nowait mode,
//!    so the lock manager's wait-for graph yields instant deterministic
//!    cycle detection without threads or timeouts.
//! 3. **Witness** ([`witness`]) — the first deadlocking schedule becomes a
//!    [`Witness`]: ordered steps (instance, statement, concrete SQL, locks
//!    acquired) plus the final wait-for cycle, renderable as text and as
//!    canonical single-line JSON for byte-for-byte reproducibility checks.
//!
//! The driver ([`Replayer`]) wires a [`DeadlockReport`] to the traces it
//! came from and classifies it [`ReplayVerdict::Confirmed`] (a witness
//! exists), [`ReplayVerdict::NotReproduced`] (no schedule in budget
//! deadlocked — e.g. a cycle SAT under the lock model but not reachable in
//! the engine), or [`ReplayVerdict::Skipped`] (missing trace/transaction).

pub mod anomaly;
pub mod concretize;
pub mod explore;
pub mod witness;

pub use anomaly::{
    explore_anomalies, serial_state_digests, state_digest, AnomalyFinding, AnomalyOutcome,
    AnomalyWitness,
};
pub use concretize::{concretize_txn, render_sql, ConcreteStmt};
pub use explore::{explore, ExploreOutcome, Instance, ReplayConfig};
pub use witness::{render_lock, Witness, WitnessInstance, WitnessStep};

use weseer_analyzer::{CollectedTrace, DeadlockReport};
use weseer_db::Database;

/// The outcome of replaying one diagnosed cycle.
#[derive(Debug, Clone)]
pub enum ReplayVerdict {
    /// A concrete schedule deadlocked; here is the witness.
    Confirmed(Box<Witness>),
    /// No schedule within budget deadlocked.
    NotReproduced {
        /// Schedules run to completion.
        schedules_explored: usize,
        /// Branches pruned by sleep sets.
        schedules_pruned: usize,
    },
    /// Replay was not attempted, with the reason.
    Skipped(String),
}

impl ReplayVerdict {
    /// Whether this verdict carries a witness.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, ReplayVerdict::Confirmed(_))
    }

    /// The witness, if confirmed.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            ReplayVerdict::Confirmed(w) => Some(w),
            _ => None,
        }
    }

    /// Short stable tag: `confirmed`, `not_reproduced`, or `skipped`.
    pub fn tag(&self) -> &'static str {
        match self {
            ReplayVerdict::Confirmed(_) => "confirmed",
            ReplayVerdict::NotReproduced { .. } => "not_reproduced",
            ReplayVerdict::Skipped(_) => "skipped",
        }
    }
}

/// Replays diagnosed cycles against a prepared database.
pub struct Replayer<'a> {
    traces: &'a [CollectedTrace],
    config: ReplayConfig,
}

impl<'a> Replayer<'a> {
    /// A replayer over the traces the analyzer diagnosed.
    pub fn new(traces: &'a [CollectedTrace]) -> Replayer<'a> {
        Replayer {
            traces,
            config: ReplayConfig::default(),
        }
    }

    /// Override exploration budgets.
    pub fn with_config(traces: &'a [CollectedTrace], config: ReplayConfig) -> Replayer<'a> {
        Replayer { traces, config }
    }

    /// Replay one report's cycle against `base` (a database in the state
    /// the traces were collected from; the explorer forks it per schedule
    /// and never mutates it).
    pub fn replay_report(&self, report: &DeadlockReport, base: &Database) -> ReplayVerdict {
        let _span = weseer_obs::span("replay.report");
        let verdict = self.replay_report_inner(report, base);
        weseer_obs::incr(match &verdict {
            ReplayVerdict::Confirmed(_) => "replay.confirmed",
            ReplayVerdict::NotReproduced { .. } => "replay.not_reproduced",
            ReplayVerdict::Skipped(_) => "replay.skipped",
        });
        verdict
    }

    fn replay_report_inner(&self, report: &DeadlockReport, base: &Database) -> ReplayVerdict {
        let find = |api: &str| self.traces.iter().find(|t| t.api() == api);
        let Some(ta) = find(&report.cycle.a_api) else {
            return ReplayVerdict::Skipped(format!("no trace for API {}", report.cycle.a_api));
        };
        let Some(tb) = find(&report.cycle.b_api) else {
            return ReplayVerdict::Skipped(format!("no trace for API {}", report.cycle.b_api));
        };
        let concretize = |model_a: &weseer_smt::Model, model_b: &weseer_smt::Model| {
            (
                concretize_txn(ta, report.cycle.a_txn, model_a),
                concretize_txn(tb, report.cycle.b_txn, model_b),
            )
        };
        let (a_stmts, b_stmts) = concretize(
            &report.sat_model.strip_prefix("A1."),
            &report.sat_model.strip_prefix("A2."),
        );
        if a_stmts.is_empty() || b_stmts.is_empty() {
            return ReplayVerdict::Skipped("cycle transaction has no statements".into());
        }

        // Attempt 1: the solver's inputs. Attempt 2 (only if the first
        // exhausts its budget, and only when it differs): the inputs
        // observed during tracing — a partial SAT model can pick
        // degenerate values (e.g. every key equal) that serialize the two
        // transactions even though the traced inputs deadlock.
        let sqls = |a: &[ConcreteStmt], b: &[ConcreteStmt]| -> Vec<String> {
            a.iter().chain(b).map(|s| s.sql.clone()).collect()
        };
        let model_sql = sqls(&a_stmts, &b_stmts);
        let mut total_explored = 0;
        let mut total_pruned = 0;
        let mut attempts = vec![(a_stmts, b_stmts)];
        let empty = weseer_smt::Model::default();
        let (ca, cb) = concretize(&empty, &empty);
        if sqls(&ca, &cb) != model_sql {
            attempts.push((ca, cb));
        }
        for (a_stmts, b_stmts) in attempts {
            let instances = vec![
                Instance {
                    name: "A1".into(),
                    stmts: a_stmts,
                },
                Instance {
                    name: "A2".into(),
                    stmts: b_stmts,
                },
            ];
            match explore(base, &instances, &self.config) {
                ExploreOutcome::Deadlock {
                    steps,
                    cycle,
                    explored,
                    pruned,
                } => {
                    return ReplayVerdict::Confirmed(Box::new(Witness {
                        instances: vec![
                            WitnessInstance {
                                name: "A1".into(),
                                api: report.cycle.a_api.clone(),
                            },
                            WitnessInstance {
                                name: "A2".into(),
                                api: report.cycle.b_api.clone(),
                            },
                        ],
                        steps,
                        cycle,
                        schedules_explored: total_explored + explored,
                        schedules_pruned: total_pruned + pruned,
                    }))
                }
                ExploreOutcome::Exhausted { explored, pruned } => {
                    total_explored += explored;
                    total_pruned += pruned;
                }
            }
        }
        ReplayVerdict::NotReproduced {
            schedules_explored: total_explored,
            schedules_pruned: total_pruned,
        }
    }
}

//! Replay soundness and determinism on randomly generated workloads:
//!
//! 1. every replay-confirmed deadlock corresponds to a statically-SAT
//!    cycle (confirmations never exceed the analyzer's SAT verdicts, and
//!    each one carries a real lock-manager cycle over both instances), and
//! 2. replay is deterministic — the witness JSON bytes are identical
//!    whether the diagnosis ran with 1 or 4 analyzer threads, and across
//!    repeated invocations.

use proptest::prelude::*;
use weseer_analyzer::{diagnose, AnalyzerConfig, CollectedTrace};
use weseer_concolic::{EngineStats, ResultRow, StackTrace, StmtRecord, SymValue, Trace, TxnTrace};
use weseer_db::Database;
use weseer_replay::{ReplayVerdict, Replayer};
use weseer_smt::{Ctx, Sort};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

/// Three small tables; each seeded with IDs 0–2 so point reads hit rows.
fn catalog() -> Catalog {
    Catalog::new(
        (0..3)
            .map(|i| {
                TableBuilder::new(format!("T{i}"))
                    .col("ID", ColType::Int)
                    .col("VAL", ColType::Int)
                    .primary_key(&["ID"])
                    .build()
                    .unwrap()
            })
            .collect(),
    )
    .unwrap()
}

fn base_db() -> Database {
    let db = Database::new(catalog());
    for i in 0..3 {
        db.seed(
            &format!("T{i}"),
            (0..3).map(|k| vec![Value::Int(k), Value::Int(0)]).collect(),
        );
    }
    db
}

#[derive(Debug, Clone)]
struct GenStmt {
    table: usize,
    write: bool,
    key: i64,
}

type GenTrace = Vec<Vec<GenStmt>>;

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    (0usize..3, any::<bool>(), 0i64..3).prop_map(|(table, write, key)| GenStmt {
        table,
        write,
        key,
    })
}

fn trace_strategy() -> impl Strategy<Value = GenTrace> {
    proptest::collection::vec(proptest::collection::vec(stmt_strategy(), 1..4), 1..3)
}

/// Materialize a generated trace as a real `CollectedTrace` with symbolic
/// parameters, following the engine's record layout (same shape as the
/// analyzer's own determinism property test).
fn build_trace(api: usize, gen: &GenTrace) -> CollectedTrace {
    let mut ctx = Ctx::new();
    let mut statements = Vec::new();
    let mut txns = Vec::new();
    let mut seq = 0u64;
    for (txn_id, stmts) in gen.iter().enumerate() {
        let mut stmt_indexes = Vec::new();
        for g in stmts {
            let index = statements.len() + 1;
            let t = format!("T{}", g.table);
            let (sql, params) = if g.write {
                let v = ctx.var(format!("p{api}_{index}v"), Sort::Int);
                let k = ctx.var(format!("p{api}_{index}k"), Sort::Int);
                (
                    format!("UPDATE {t} SET VAL = ? WHERE ID = ?"),
                    vec![
                        SymValue::with_sym(Value::Int(g.key + 10), v),
                        SymValue::with_sym(Value::Int(g.key), k),
                    ],
                )
            } else {
                let k = ctx.var(format!("p{api}_{index}k"), Sort::Int);
                (
                    format!("SELECT * FROM {t} x WHERE x.ID = ?"),
                    vec![SymValue::with_sym(Value::Int(g.key), k)],
                )
            };
            let rows = if g.write {
                vec![]
            } else {
                vec![ResultRow {
                    cols: vec![
                        ("x.ID".to_string(), SymValue::concrete(Value::Int(g.key))),
                        ("x.VAL".to_string(), SymValue::concrete(Value::Int(0))),
                    ],
                }]
            };
            seq += 1;
            let is_empty = rows.is_empty();
            stmt_indexes.push(statements.len());
            statements.push(StmtRecord {
                index,
                seq,
                txn: txn_id,
                stmt: parse(&sql).unwrap(),
                params,
                rows,
                is_empty,
                trigger: StackTrace::new(),
                sent_at: StackTrace::new(),
            });
        }
        txns.push(TxnTrace {
            id: txn_id,
            stmt_indexes,
            committed: true,
        });
    }
    CollectedTrace::new(
        Trace {
            api: format!("Api{api}"),
            statements,
            txns,
            path_conds: vec![],
            unique_ids: vec![],
            stats: EngineStats::default(),
        },
        ctx,
    )
}

/// Diagnose with the given thread count and replay every report; returns
/// `(smt_sat, verdict tags, witness JSON lines)`.
fn diagnose_and_replay(
    traces: &[CollectedTrace],
    threads: usize,
) -> (usize, Vec<&'static str>, Vec<String>) {
    let diagnosis = diagnose(
        &catalog(),
        traces,
        &AnalyzerConfig {
            threads,
            ..AnalyzerConfig::default()
        },
    );
    let base = base_db();
    let replayer = Replayer::new(traces);
    let mut tags = Vec::new();
    let mut jsons = Vec::new();
    for report in &diagnosis.deadlocks {
        let verdict = replayer.replay_report(report, &base);
        if let ReplayVerdict::Confirmed(w) = &verdict {
            assert!(!w.steps.is_empty());
            assert!(
                w.cycle_covers_instances(),
                "cycle {:?} must involve both instances",
                w.cycle
            );
            assert_eq!(w.steps.last().unwrap().outcome, "deadlock");
            jsons.push(w.to_json());
        }
        tags.push(verdict.tag());
    }
    (diagnosis.stats.smt_sat, tags, jsons)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn confirmed_deadlocks_are_statically_sat_and_deterministic(
        gens in proptest::collection::vec(trace_strategy(), 1..3)
    ) {
        let traces: Vec<CollectedTrace> = gens
            .iter()
            .enumerate()
            .map(|(i, g)| build_trace(i, g))
            .collect();
        let (sat, tags, jsons) = diagnose_and_replay(&traces, 1);
        // Replay only ever runs on reports the SMT phase proved SAT, so
        // confirmations are bounded by (and correspond to) SAT cycles.
        let confirmed = tags.iter().filter(|t| **t == "confirmed").count();
        prop_assert!(confirmed <= sat);
        prop_assert_eq!(tags.len(), sat);

        // Determinism: a 4-thread diagnosis plus fresh replay yields the
        // exact same verdicts and witness bytes.
        let (sat4, tags4, jsons4) = diagnose_and_replay(&traces, 4);
        prop_assert_eq!(sat, sat4);
        prop_assert_eq!(tags, tags4);
        prop_assert_eq!(jsons, jsons4);
    }
}

/// Non-vacuity: the classic cross-order update workload must be diagnosed
/// SAT and replay-confirmed.
#[test]
fn cross_order_updates_confirm() {
    let a = vec![vec![
        GenStmt {
            table: 0,
            write: true,
            key: 0,
        },
        GenStmt {
            table: 0,
            write: true,
            key: 1,
        },
    ]];
    let b = vec![vec![
        GenStmt {
            table: 0,
            write: true,
            key: 1,
        },
        GenStmt {
            table: 0,
            write: true,
            key: 0,
        },
    ]];
    let traces = vec![build_trace(0, &a), build_trace(1, &b)];
    let (sat, tags, jsons) = diagnose_and_replay(&traces, 1);
    assert!(sat >= 1, "cross-order updates must be SAT");
    assert!(
        tags.contains(&"confirmed"),
        "cross-order updates must replay-confirm, got {tags:?}"
    );
    assert!(!jsons.is_empty());
}

//! Explorer behavior on hand-built workloads: deadlock discovery,
//! sleep-set pruning, wake-on-commit, and witness determinism.

use weseer_db::Database;
use weseer_replay::{explore, ConcreteStmt, ExploreOutcome, Instance, ReplayConfig};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn db() -> Database {
    let catalog = Catalog::new(vec![
        TableBuilder::new("T")
            .col("ID", ColType::Int)
            .col("V", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("U")
            .col("ID", ColType::Int)
            .col("V", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
    ])
    .unwrap();
    let db = Database::new(catalog);
    db.seed(
        "T",
        vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(2), Value::Int(0)],
        ],
    );
    db.seed("U", vec![vec![Value::Int(1), Value::Int(0)]]);
    db
}

fn inst(name: &str, stmts: &[(&str, &[i64])]) -> Instance {
    Instance {
        name: name.into(),
        stmts: stmts
            .iter()
            .enumerate()
            .map(|(i, (sql, ps))| {
                ConcreteStmt::new(
                    i + 1,
                    parse(sql).unwrap(),
                    ps.iter().map(|&v| Value::Int(v)).collect(),
                )
            })
            .collect(),
    }
}

fn cross_update_instances() -> Vec<Instance> {
    vec![
        inst(
            "A1",
            &[
                ("UPDATE T SET V = ? WHERE ID = ?", &[1, 1]),
                ("UPDATE T SET V = ? WHERE ID = ?", &[1, 2]),
            ],
        ),
        inst(
            "A2",
            &[
                ("UPDATE T SET V = ? WHERE ID = ?", &[2, 2]),
                ("UPDATE T SET V = ? WHERE ID = ?", &[2, 1]),
            ],
        ),
    ]
}

#[test]
fn cross_update_deadlock_confirmed() {
    let base = db();
    let instances = cross_update_instances();
    match explore(&base, &instances, &ReplayConfig::default()) {
        ExploreOutcome::Deadlock { steps, cycle, .. } => {
            assert!(!steps.is_empty());
            assert!(cycle.contains(&"A1".to_string()), "cycle: {cycle:?}");
            assert!(cycle.contains(&"A2".to_string()), "cycle: {cycle:?}");
            let last = steps.last().unwrap();
            assert_eq!(last.outcome, "deadlock");
            // Every step before the deadlock executed or blocked for real.
            assert!(steps
                .iter()
                .all(|s| ["ok", "blocked", "deadlock"].contains(&s.outcome.as_str())));
            // The schedule shows concrete SQL, not placeholders.
            assert!(steps.iter().all(|s| !s.sql.contains('?')));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn exploration_is_deterministic() {
    let render = || {
        let base = db();
        let instances = cross_update_instances();
        match explore(&base, &instances, &ReplayConfig::default()) {
            ExploreOutcome::Deadlock {
                steps,
                cycle,
                explored,
                pruned,
            } => format!("{steps:?}|{cycle:?}|{explored}|{pruned}"),
            other => panic!("expected deadlock, got {other:?}"),
        }
    };
    assert_eq!(render(), render());
}

#[test]
fn disjoint_tables_prune_and_terminate() {
    let base = db();
    let instances = vec![
        inst(
            "A1",
            &[
                ("UPDATE T SET V = ? WHERE ID = ?", &[1, 1]),
                ("UPDATE T SET V = ? WHERE ID = ?", &[1, 2]),
            ],
        ),
        inst("A2", &[("UPDATE U SET V = ? WHERE ID = ?", &[2, 1])]),
    ];
    match explore(&base, &instances, &ReplayConfig::default()) {
        ExploreOutcome::Exhausted { explored, pruned } => {
            assert!(explored >= 1);
            assert!(pruned >= 1, "independent moves should be pruned");
        }
        other => panic!("expected exhausted, got {other:?}"),
    }
}

#[test]
fn same_lock_order_never_deadlocks_and_blocked_txn_resumes() {
    let base = db();
    let instances = vec![
        inst(
            "A1",
            &[
                ("UPDATE T SET V = ? WHERE ID = ?", &[1, 1]),
                ("UPDATE T SET V = ? WHERE ID = ?", &[1, 2]),
            ],
        ),
        inst(
            "A2",
            &[
                ("UPDATE T SET V = ? WHERE ID = ?", &[2, 1]),
                ("UPDATE T SET V = ? WHERE ID = ?", &[2, 2]),
            ],
        ),
    ];
    match explore(&base, &instances, &ReplayConfig::default()) {
        ExploreOutcome::Exhausted { explored, .. } => assert!(explored >= 2),
        other => panic!("same lock order cannot deadlock, got {other:?}"),
    }
}

#[test]
fn budget_caps_exploration() {
    let base = db();
    let instances = cross_update_instances();
    let config = ReplayConfig {
        max_schedules: 1,
        max_runs: 1,
        max_steps: 512,
    };
    // With a single run the DFS cannot reach the deadlocking interleaving.
    match explore(&base, &instances, &config) {
        ExploreOutcome::Exhausted { explored, .. } => assert!(explored <= 1),
        ExploreOutcome::Deadlock { explored, .. } => assert!(explored <= 1),
    }
}

//! Anomaly-oracle soundness properties on randomly generated workloads:
//!
//! 1. histories with a single writer (and single-read readers) are
//!    anomaly-free at *every* isolation level — the oracle never invents
//!    an anomaly where no write-write or repeated-read structure exists;
//! 2. at the default serializable level no generated two-instance
//!    workload ever produces an anomaly witness, and every committed
//!    terminal state matches some serial execution (2PL serializability,
//!    checked for real via the explorer's serial-digest cross-check).

use proptest::prelude::*;
use weseer_db::{Database, IsolationLevel};
use weseer_replay::{explore_anomalies, AnomalyOutcome, ConcreteStmt, Instance, ReplayConfig};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn catalog() -> Catalog {
    Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BAL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap()
}

fn base_db() -> Database {
    let db = Database::new(catalog());
    db.seed(
        "Account",
        (0..3)
            .map(|k| vec![Value::Int(k), Value::Int(100)])
            .collect(),
    );
    db
}

fn update(i: usize, val: i64, key: i64) -> ConcreteStmt {
    ConcreteStmt::new(
        i,
        parse("UPDATE Account SET BAL = ? WHERE ID = ?").unwrap(),
        vec![Value::Int(val), Value::Int(key)],
    )
}

fn select(i: usize, key: i64) -> ConcreteStmt {
    ConcreteStmt::new(
        i,
        parse("SELECT * FROM Account a WHERE a.ID = ?").unwrap(),
        vec![Value::Int(key)],
    )
}

/// One writer doing a random select/update sequence.
fn writer_strategy() -> impl Strategy<Value = Vec<(bool, i64, i64)>> {
    proptest::collection::vec((any::<bool>(), 0i64..3, 0i64..200), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-writer histories: one writer, up to two readers that each
    /// perform exactly one snapshot read. No level can report an anomaly —
    /// lost updates and write skew need two writers, read fractures need
    /// a repeated read.
    #[test]
    fn single_writer_histories_are_anomaly_free_at_every_level(
        writer in writer_strategy(),
        reader_keys in proptest::collection::vec(0i64..3, 0..3),
    ) {
        let base = base_db();
        let mut instances = vec![Instance {
            name: "W".into(),
            stmts: writer
                .iter()
                .enumerate()
                .map(|(i, &(is_sel, key, val))| {
                    if is_sel {
                        select(i + 1, key)
                    } else {
                        update(i + 1, val, key)
                    }
                })
                .collect(),
        }];
        for (r, &key) in reader_keys.iter().enumerate() {
            instances.push(Instance {
                name: format!("R{r}"),
                stmts: vec![select(1, key)],
            });
        }
        let apis: Vec<String> = instances.iter().map(|i| format!("{}Api", i.name)).collect();
        for level in IsolationLevel::ALL {
            match explore_anomalies(&base, &instances, &apis, level, &ReplayConfig::default()) {
                AnomalyOutcome::Clean { .. } => {}
                AnomalyOutcome::Anomalous(w) => prop_assert!(
                    false,
                    "single-writer history reported an anomaly at {}: {}",
                    level.name(),
                    w.render()
                ),
            }
        }
    }

    /// Serializable: two instances with arbitrary select/update mixes.
    /// The explorer must come back clean — the tracker is never engaged
    /// and every committed terminal state digests to a serial execution.
    #[test]
    fn weak_level_anomalies_never_appear_at_serializable(
        a in writer_strategy(),
        b in writer_strategy(),
    ) {
        let build = |name: &str, stmts: &[(bool, i64, i64)]| Instance {
            name: name.into(),
            stmts: stmts
                .iter()
                .enumerate()
                .map(|(i, &(is_sel, key, val))| {
                    if is_sel {
                        select(i + 1, key)
                    } else {
                        update(i + 1, val, key)
                    }
                })
                .collect(),
        };
        let base = base_db();
        let instances = vec![build("A1", &a), build("A2", &b)];
        let apis = vec!["ApiA".to_string(), "ApiB".to_string()];
        match explore_anomalies(
            &base,
            &instances,
            &apis,
            IsolationLevel::Serializable,
            &ReplayConfig::default(),
        ) {
            AnomalyOutcome::Clean { explored, .. } => prop_assert!(explored >= 1),
            AnomalyOutcome::Anomalous(w) => prop_assert!(
                false,
                "serializable run reported an anomaly: {}",
                w.render()
            ),
        }
    }
}

//! Anomaly explorer behavior on planted workloads: lost-update and
//! write-skew confirmation at weak isolation levels, disappearance at
//! serializable, and canonical witness JSON determinism.

use weseer_db::{Database, IsolationLevel};
use weseer_replay::{
    explore_anomalies, serial_state_digests, state_digest, AnomalyOutcome, AnomalyWitness,
    ConcreteStmt, Instance, ReplayConfig,
};
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn account_db() -> Database {
    let catalog = Catalog::new(vec![TableBuilder::new("Account")
        .col("ID", ColType::Int)
        .col("BAL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let db = Database::new(catalog);
    db.seed("Account", vec![vec![Value::Int(1), Value::Int(100)]]);
    db
}

fn doctors_db() -> Database {
    let catalog = Catalog::new(vec![TableBuilder::new("Doctors")
        .col("ID", ColType::Int)
        .col("ONCALL", ColType::Int)
        .primary_key(&["ID"])
        .build()
        .unwrap()])
    .unwrap();
    let db = Database::new(catalog);
    db.seed(
        "Doctors",
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(1)],
        ],
    );
    db
}

fn inst(name: &str, stmts: &[(&str, &[i64])]) -> Instance {
    Instance {
        name: name.into(),
        stmts: stmts
            .iter()
            .enumerate()
            .map(|(i, (sql, ps))| {
                ConcreteStmt::new(
                    i + 1,
                    parse(sql).unwrap(),
                    ps.iter().map(|&v| Value::Int(v)).collect(),
                )
            })
            .collect(),
    }
}

/// Two read-modify-write withdrawals over the same account: the classic
/// lost-update pair.
fn withdraw_instances() -> Vec<Instance> {
    vec![
        inst(
            "A1",
            &[
                ("SELECT * FROM Account a WHERE a.ID = ?", &[1]),
                ("UPDATE Account SET BAL = ? WHERE ID = ?", &[90, 1]),
            ],
        ),
        inst(
            "A2",
            &[
                ("SELECT * FROM Account a WHERE a.ID = ?", &[1]),
                ("UPDATE Account SET BAL = ? WHERE ID = ?", &[95, 1]),
            ],
        ),
    ]
}

/// Both check the on-call roster, then each signs off a different doctor:
/// disjoint writes, crossed reads — write skew.
fn oncall_instances() -> Vec<Instance> {
    vec![
        inst(
            "A1",
            &[
                ("SELECT * FROM Doctors d WHERE d.ONCALL = ?", &[1]),
                ("UPDATE Doctors SET ONCALL = ? WHERE ID = ?", &[0, 1]),
            ],
        ),
        inst(
            "A2",
            &[
                ("SELECT * FROM Doctors d WHERE d.ONCALL = ?", &[1]),
                ("UPDATE Doctors SET ONCALL = ? WHERE ID = ?", &[0, 2]),
            ],
        ),
    ]
}

fn apis() -> Vec<String> {
    vec!["ApiA".into(), "ApiB".into()]
}

#[test]
fn lost_update_confirmed_at_read_committed() {
    let base = account_db();
    let out = explore_anomalies(
        &base,
        &withdraw_instances(),
        &apis(),
        IsolationLevel::ReadCommitted,
        &ReplayConfig::default(),
    );
    let w = out.witness().expect("lost update must be confirmed");
    assert_eq!(w.isolation, "read-committed");
    assert!(w.anomalies.iter().any(|a| a.kind == "lost-update"));
    assert_eq!(w.instances.len(), 2);
    assert_eq!(w.instances[0].api, "ApiA");
    assert!(w.steps.iter().all(|s| !s.sql.contains('?')));
}

#[test]
fn lost_update_vanishes_at_serializable() {
    let base = account_db();
    let out = explore_anomalies(
        &base,
        &withdraw_instances(),
        &apis(),
        IsolationLevel::Serializable,
        &ReplayConfig::default(),
    );
    match out {
        AnomalyOutcome::Clean { explored, .. } => assert!(explored >= 1),
        AnomalyOutcome::Anomalous(w) => {
            panic!("serializable must be clean, got {}", w.render())
        }
    }
}

#[test]
fn lost_update_vanishes_at_snapshot_isolation() {
    // First-updater-wins aborts the stale overwrite, and an aborted
    // transaction contributes no anomalies.
    let base = account_db();
    let out = explore_anomalies(
        &base,
        &withdraw_instances(),
        &apis(),
        IsolationLevel::Snapshot,
        &ReplayConfig::default(),
    );
    assert!(
        out.witness()
            .map(|w| w.anomalies.iter().all(|a| a.kind != "lost-update"))
            .unwrap_or(true),
        "snapshot isolation kills lost updates"
    );
}

#[test]
fn write_skew_confirmed_at_snapshot_but_not_serializable() {
    let base = doctors_db();
    let out = explore_anomalies(
        &base,
        &oncall_instances(),
        &apis(),
        IsolationLevel::Snapshot,
        &ReplayConfig::default(),
    );
    let w = out.witness().expect("write skew must be confirmed at SI");
    assert!(w.anomalies.iter().any(|a| a.kind == "write-skew"));
    assert_eq!(
        w.anomalies
            .iter()
            .find(|a| a.kind == "write-skew")
            .unwrap()
            .table,
        "Doctors"
    );

    let out = explore_anomalies(
        &base,
        &oncall_instances(),
        &apis(),
        IsolationLevel::Serializable,
        &ReplayConfig::default(),
    );
    assert!(out.witness().is_none(), "2PL forbids write skew");
}

#[test]
fn witness_json_is_deterministic_and_round_trips() {
    let render = || {
        let base = account_db();
        match explore_anomalies(
            &base,
            &withdraw_instances(),
            &apis(),
            IsolationLevel::ReadCommitted,
            &ReplayConfig::default(),
        ) {
            AnomalyOutcome::Anomalous(w) => w.to_json(),
            other => panic!("expected anomaly, got {other:?}"),
        }
    };
    let j = render();
    assert_eq!(j, render(), "exploration must be deterministic");
    assert!(!j.contains('\n'));
    assert!(j.starts_with("{\"isolation\":\"read-committed\""));
    let parsed = AnomalyWitness::from_json(&j).expect("parse");
    assert_eq!(parsed.to_json(), j, "byte-exact round trip");
}

#[test]
fn serial_digests_cover_terminal_states_at_serializable() {
    let base = account_db();
    let instances = withdraw_instances();
    let digests = serial_state_digests(&base, &instances, IsolationLevel::Serializable);
    assert!(!digests.is_empty());
    // Running either serial order for real reproduces a listed digest.
    let db = base.fork();
    let mut s = db.session();
    for i in &instances {
        s.begin();
        for cs in &i.stmts {
            s.execute(&cs.stmt, &cs.params).unwrap();
        }
        s.commit().unwrap();
    }
    assert!(digests.contains(&state_digest(&db)));
}

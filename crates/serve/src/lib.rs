//! # weseer-serve
//!
//! The fleet-scale serving plane: a long-lived daemon that ingests trace
//! streams from many application instances concurrently, shards deadlock
//! analysis by entity/table, and streams verdicts back as they land.
//!
//! ## Architecture
//!
//! ```text
//! clients ──bounded MPSC──▶ ingest router ──bounded queue──▶ analysis
//!   (backpressure:            (per-session     (backpressure)  workers
//!    a full channel            trace buffers)                    │
//!    blocks `send`)                                              ▼
//!                                          diagnose_streaming over table-
//!                                          keyed shards  ──▶ verdict events
//!                                                │
//!                                      shared warm Store (live append)
//! ```
//!
//! Every channel is bounded, so pressure propagates backwards: a slow
//! analysis shard fills its queue, which stalls the router, which fills
//! the ingest channel, which blocks the submitting clients — the daemon
//! never buffers unboundedly. Verdicts are **byte-identical to the batch
//! pipeline** by construction: sharding only relocates pure per-pair
//! work, and the in-order merge emits reports in the same canonical
//! order the batch reduce walks (see `weseer-analyzer`'s
//! `diagnose_streaming`).
//!
//! The shared [`weseer_store::Store`] is opened in live-append mode:
//! shards publish verdicts into the common in-memory index as they solve
//! (so concurrent submissions hit each other's work) and every record is
//! persisted immediately, making warm starts survive a killed daemon.

pub mod daemon;
pub mod http;

pub use daemon::{
    app_by_name, AnalysisSummary, Daemon, DaemonConfig, IngestClient, ServeEvent, SubmitResult,
};
pub use http::{routes, serve, shards_json};

use weseer_analyzer::DeadlockReport;
use weseer_store::json::Json;

/// One confirmed deadlock as a canonical single-line JSON record — the
/// daemon's wire format for streamed verdicts. The same function renders
/// the batch pipeline's reports (`reproduce --verdicts-out`), so
/// streaming-vs-batch equality can be checked with a byte `diff`.
pub fn verdict_line(app: &str, report: &DeadlockReport) -> String {
    let c = &report.cycle;
    let record = Json::Obj(vec![
        ("app".into(), Json::str(app)),
        (
            "cycle".into(),
            Json::Obj(vec![
                ("a_api".into(), Json::str(c.a_api.clone())),
                ("b_api".into(), Json::str(c.b_api.clone())),
                ("a_txn".into(), Json::u64(c.a_txn as u64)),
                ("b_txn".into(), Json::u64(c.b_txn as u64)),
                ("a_hold".into(), Json::u64(c.a_hold as u64)),
                ("a_wait".into(), Json::u64(c.a_wait as u64)),
                ("b_hold".into(), Json::u64(c.b_hold as u64)),
                ("b_wait".into(), Json::u64(c.b_wait as u64)),
            ]),
        ),
        (
            "statements".into(),
            Json::Arr(
                report
                    .statements
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("label".into(), Json::str(s.label.clone())),
                            ("table".into(), Json::str(s.table.clone())),
                            ("sql".into(), Json::str(s.sql.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut out = String::new();
    record.write(&mut out);
    out.push('\n');
    out
}

//! Standalone serving daemon: `weseer-serve [--addr HOST:PORT]
//! [--shards N] [--workers N] [--store PATH] [--hold SECS]`.
//!
//! Binds the obs-plane HTTP server with the serving routes and runs
//! until killed (or for `--hold` seconds, for scripted smoke tests).

use std::path::PathBuf;
use std::process::exit;
use weseer_serve::{serve, DaemonConfig};

const USAGE: &str = "\
weseer-serve: long-lived WeSEER analysis daemon

USAGE:
    weseer-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT   bind address (default 127.0.0.1:0, ephemeral port)
    --shards N         analysis shards per submission (default 2)
    --workers N        concurrent analysis workers (default 1)
    --store PATH       shared warm verdict store (live-append JSON lines)
    --hold SECS        exit after SECS seconds instead of serving forever
    --help             print this help

ROUTES:
    GET /analyze/<app>   stream an app's verdicts (broadleaf | shopizer)
    GET /shards          per-shard queue depth, ingest lag, verdicts/sec
    GET /metrics         Prometheus counters, gauges, histograms
    GET /funnel          pipeline funnel JSON
";

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = DaemonConfig::default();
    let mut hold: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => {
                config.shards = value("--shards").parse().unwrap_or_else(|_| {
                    eprintln!("error: --shards expects a number");
                    exit(2);
                })
            }
            "--workers" => {
                config.workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("error: --workers expects a number");
                    exit(2);
                })
            }
            "--store" => config.store_path = Some(PathBuf::from(value("--store"))),
            "--hold" => {
                hold = Some(value("--hold").parse().unwrap_or_else(|_| {
                    eprintln!("error: --hold expects seconds");
                    exit(2);
                }))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{USAGE}");
                exit(2);
            }
        }
    }

    let (daemon, server) = match serve(&addr, config) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: failed to start daemon on {addr}: {e}");
            exit(1);
        }
    };
    println!("serving on http://{}", server.local_addr());
    println!(
        "shards={} workers={} store={}",
        daemon.config().shards,
        daemon.config().workers,
        daemon
            .config()
            .store_path
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "(none)".to_string()),
    );

    match hold {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

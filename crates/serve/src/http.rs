//! The daemon's network surface: the obs plane's HTTP server
//! ([`weseer_obs::http::ObsServer`]) extended with serving routes.
//!
//! * `GET /analyze/<app>` — collect that app's unit-test traces
//!   server-side, stream them through the ingest plane, and return the
//!   verdict lines (one JSON object per line, canonical order);
//! * `GET /shards` — per-shard queue depths and task counts, ingest lag
//!   percentiles, verdicts/sec, and shared-store hit counters;
//! * plus the built-in `/metrics`, `/funnel`, `/waitfor`, `/waitfor.dot`
//!   and the dashboard at `/`.

use crate::daemon::{Daemon, DaemonConfig};
use std::io;
use std::sync::Arc;
use weseer_core::FUNNEL_STAGES;
use weseer_obs::http::{ObsServer, RouteHandler};
use weseer_store::json::Json;

/// Build the daemon's extra-route handler for
/// [`ObsServer::start_with`].
pub fn routes(daemon: Arc<Daemon>) -> Arc<RouteHandler> {
    Arc::new(move |route: &str| {
        if route == "/shards" {
            return Some((
                "application/json; charset=utf-8".to_string(),
                shards_json(&daemon),
            ));
        }
        if let Some(app) = route.strip_prefix("/analyze/") {
            // The submission runs synchronously on the server thread; the
            // client simply holds the connection until verdicts are in.
            return match daemon.submit(app) {
                Ok(result) => Some((
                    "application/x-ndjson; charset=utf-8".to_string(),
                    result.lines.concat(),
                )),
                Err(e) => Some((
                    "application/json; charset=utf-8".to_string(),
                    format!("{{\"error\":{:?}}}\n", e),
                )),
            };
        }
        None
    })
}

/// The `/shards` body: live serving statistics from the obs registry.
pub fn shards_json(daemon: &Daemon) -> String {
    let snap = weseer_obs::snapshot();
    let uptime = daemon.started().elapsed();
    let verdicts = snap.counter("serve.verdicts_served");
    let per_sec = verdicts as f64 / uptime.as_secs_f64().max(1e-9);
    let lag = snap.histogram("serve.ingest_lag_us");
    let shards = daemon.config().shards;
    let per_shard: Vec<Json> = (0..shards)
        .map(|s| {
            Json::Obj(vec![
                ("shard".into(), Json::u64(s as u64)),
                (
                    "queue_depth".into(),
                    Json::i64(
                        snap.gauges
                            .get(&format!("serve.shard{s}.queue_depth"))
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
                (
                    "tasks".into(),
                    Json::u64(snap.counter(&format!("serve.shard{s}.tasks"))),
                ),
            ])
        })
        .collect();
    let store = Json::Obj(vec![
        ("hit".into(), Json::u64(snap.counter("store.hit"))),
        ("stale".into(), Json::u64(snap.counter("store.stale"))),
        ("miss".into(), Json::u64(snap.counter("store.miss"))),
        (
            "entries".into(),
            Json::u64(daemon.store().map(|s| s.len() as u64).unwrap_or(0)),
        ),
        (
            "recovered_truncation".into(),
            Json::u64(snap.counter("store.recovered_truncation")),
        ),
    ]);
    let record = Json::Obj(vec![
        ("shards".into(), Json::u64(shards as u64)),
        ("uptime_ms".into(), Json::u64(uptime.as_millis() as u64)),
        (
            "traces_ingested".into(),
            Json::u64(snap.counter("serve.traces_ingested")),
        ),
        ("verdicts_served".into(), Json::u64(verdicts)),
        ("analyses".into(), Json::u64(snap.counter("serve.analyses"))),
        (
            "verdicts_per_sec".into(),
            Json::Num(format!("{per_sec:.3}")),
        ),
        (
            "ingest_lag_p50_us".into(),
            lag.map(|h| Json::u64(h.p50())).unwrap_or(Json::Null),
        ),
        (
            "ingest_lag_p99_us".into(),
            lag.map(|h| Json::u64(h.p99())).unwrap_or(Json::Null),
        ),
        ("store".into(), store),
        ("per_shard".into(), Json::Arr(per_shard)),
    ]);
    let mut out = String::new();
    record.write(&mut out);
    out.push('\n');
    out
}

/// Start a full serving daemon: enable observability, start the
/// [`Daemon`], and bind the HTTP endpoint with the serving routes.
/// Returns the daemon handle and the bound server (whose `local_addr`
/// resolves an ephemeral `:0` port).
pub fn serve(addr: &str, config: DaemonConfig) -> io::Result<(Arc<Daemon>, ObsServer)> {
    weseer_obs::set_enabled(true);
    let daemon = Arc::new(Daemon::start(config)?);
    let server = ObsServer::start_with(addr, FUNNEL_STAGES, Some(routes(Arc::clone(&daemon))))?;
    Ok((daemon, server))
}

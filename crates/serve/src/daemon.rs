//! The daemon core: bounded-channel ingestion, per-session trace
//! buffering, and analysis workers running the table-sharded streaming
//! diagnosis against the shared warm store.

use crate::verdict_line;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use weseer_analyzer::{diagnose_streaming, AnalyzerConfig, CollectedTrace, StoreCtx};
use weseer_apps::{Broadleaf, ECommerceApp, Fixes, Shopizer};
use weseer_core::Weseer;
use weseer_store::Store;

/// Resolve an application by its registered name.
pub fn app_by_name(name: &str) -> Option<&'static dyn ECommerceApp> {
    match name {
        "broadleaf" => Some(&Broadleaf),
        "shopizer" => Some(&Shopizer),
        _ => None,
    }
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Analysis shards per submission (`run_sharded` worker count).
    pub shards: usize,
    /// Bound of the ingest channel, in messages (traces). A full channel
    /// blocks the submitting client — backpressure, not buffering.
    pub ingest_capacity: usize,
    /// Bound of the router → analysis-worker queue, in whole submissions.
    pub work_capacity: usize,
    /// Concurrent analysis workers (each runs one submission at a time
    /// over its own shard set).
    pub workers: usize,
    /// Shared warm verdict store, opened in live-append mode. `None`
    /// analyzes cold every time.
    pub store_path: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shards: 2,
            ingest_capacity: 256,
            work_capacity: 2,
            workers: 1,
            store_path: None,
        }
    }
}

enum IngestMsg {
    Trace {
        session: u64,
        trace: Box<CollectedTrace>,
        sent_at: Instant,
    },
    Finish {
        session: u64,
        app: String,
        reply: Sender<ServeEvent>,
        sent_at: Instant,
    },
}

/// What the daemon streams back to a submitting client.
#[derive(Debug)]
pub enum ServeEvent {
    /// One confirmed deadlock, rendered by [`verdict_line`] — emitted as
    /// soon as the canonical verdict order reaches it, while later
    /// cycles are still solving.
    Verdict(String),
    /// The submission finished; no further events follow.
    Done(AnalysisSummary),
}

/// Closing summary of one analyzed submission.
#[derive(Debug, Clone)]
pub struct AnalysisSummary {
    /// Application name as submitted.
    pub app: String,
    /// Traces analyzed.
    pub traces: usize,
    /// Verdicts streamed.
    pub verdicts: usize,
    /// Analysis wall time (excluding ingest).
    pub wall: Duration,
    /// `Some` if the submission was rejected (unknown app).
    pub error: Option<String>,
}

struct AnalysisJob {
    app: String,
    traces: Vec<CollectedTrace>,
    reply: Sender<ServeEvent>,
}

/// The long-lived serving daemon. Create with [`Daemon::start`], attach
/// any number of [`IngestClient`]s, and drop (or [`Daemon::shutdown`])
/// to drain and stop.
pub struct Daemon {
    ingest: Option<SyncSender<IngestMsg>>,
    next_session: AtomicU64,
    store: Option<Arc<Store>>,
    started: Instant,
    config: DaemonConfig,
    router: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Start the ingest router and analysis workers (and open the shared
    /// store, when configured).
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let store = match &config.store_path {
            Some(path) => Some(Arc::new(Store::open_live(path)?)),
            None => None,
        };
        let (ingest_tx, ingest_rx) = sync_channel::<IngestMsg>(config.ingest_capacity.max(1));
        let (work_tx, work_rx) = sync_channel::<AnalysisJob>(config.work_capacity.max(1));
        let work_rx = Arc::new(Mutex::new(work_rx));

        let router = std::thread::Builder::new()
            .name("serve.ingest".into())
            .spawn(move || {
                let mut sessions: HashMap<u64, Vec<CollectedTrace>> = HashMap::new();
                while let Ok(msg) = ingest_rx.recv() {
                    match msg {
                        IngestMsg::Trace {
                            session,
                            trace,
                            sent_at,
                        } => {
                            weseer_obs::observe_duration("serve.ingest_lag_us", sent_at.elapsed());
                            weseer_obs::incr("serve.traces_ingested");
                            sessions.entry(session).or_default().push(*trace);
                        }
                        IngestMsg::Finish {
                            session,
                            app,
                            reply,
                            sent_at,
                        } => {
                            weseer_obs::observe_duration("serve.ingest_lag_us", sent_at.elapsed());
                            let traces = sessions.remove(&session).unwrap_or_default();
                            // A full work queue blocks here, which in turn
                            // fills the ingest channel: clients feel it.
                            if work_tx.send(AnalysisJob { app, traces, reply }).is_err() {
                                break;
                            }
                        }
                    }
                }
            })
            .expect("spawn serve.ingest");

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for w in 0..config.workers.max(1) {
            let work_rx = Arc::clone(&work_rx);
            let store = store.clone();
            let shards = config.shards;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve.analysis{w}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = work_rx.lock().unwrap();
                            rx.recv()
                        };
                        match job {
                            Ok(job) => run_analysis(job, store.as_ref(), shards),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn serve.analysis"),
            );
        }

        Ok(Daemon {
            ingest: Some(ingest_tx),
            next_session: AtomicU64::new(0),
            store,
            started: Instant::now(),
            config,
            router: Some(router),
            workers,
        })
    }

    /// The effective configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// When the daemon started (for uptime/throughput reporting).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// The shared store handle, when configured.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Open a new ingest session for `app`. The client streams traces
    /// with [`IngestClient::send`] (which blocks when the daemon is
    /// saturated) and closes with [`IngestClient::finish`] to trigger
    /// analysis.
    pub fn client(&self, app: &str) -> IngestClient {
        let (reply_tx, reply_rx) = channel();
        IngestClient {
            session: self.next_session.fetch_add(1, Ordering::Relaxed),
            app: app.to_string(),
            ingest: self.ingest.as_ref().expect("daemon not shut down").clone(),
            reply_tx,
            reply_rx,
        }
    }

    /// Server-side submission: collect `app`'s unit-test traces locally,
    /// stream them through the ingest plane, and block until every
    /// verdict is in. This is what `GET /analyze/<app>` serves.
    pub fn submit(&self, app_name: &str) -> Result<SubmitResult, String> {
        let app = app_by_name(app_name).ok_or_else(|| format!("unknown app {app_name:?}"))?;
        let (traces, _db) = Weseer::new().collect_traces(app, &Fixes::none());
        let client = self.client(app_name);
        for trace in traces {
            client.send(trace);
        }
        let events = client.finish();
        let mut lines = Vec::new();
        let mut summary = None;
        for event in events {
            match event {
                ServeEvent::Verdict(line) => lines.push(line),
                ServeEvent::Done(s) => summary = Some(s),
            }
        }
        let summary = summary.ok_or_else(|| "daemon dropped the submission".to_string())?;
        if let Some(e) = &summary.error {
            return Err(e.clone());
        }
        Ok(SubmitResult { lines, summary })
    }

    /// Drain in-flight submissions, stop every thread, and flush the
    /// store. Outstanding [`IngestClient`]s keep the ingest channel open;
    /// finish or drop them first.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.ingest.take());
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(store) = &self.store {
            let _ = store.flush();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A completed server-side submission.
#[derive(Debug)]
pub struct SubmitResult {
    /// The streamed verdict lines, in canonical order.
    pub lines: Vec<String>,
    /// The closing summary.
    pub summary: AnalysisSummary,
}

/// One application instance's ingest session.
pub struct IngestClient {
    session: u64,
    app: String,
    ingest: SyncSender<IngestMsg>,
    reply_tx: Sender<ServeEvent>,
    reply_rx: Receiver<ServeEvent>,
}

impl IngestClient {
    /// Stream one collected trace. Blocks while the daemon's ingest
    /// channel is full (backpressure).
    pub fn send(&self, trace: CollectedTrace) {
        self.ingest
            .send(IngestMsg::Trace {
                session: self.session,
                trace: Box::new(trace),
                sent_at: Instant::now(),
            })
            .expect("daemon ingest closed");
    }

    /// Close the session and trigger analysis; the returned receiver
    /// yields [`ServeEvent::Verdict`]s as they land, then one
    /// [`ServeEvent::Done`].
    pub fn finish(self) -> Receiver<ServeEvent> {
        self.ingest
            .send(IngestMsg::Finish {
                session: self.session,
                app: self.app,
                reply: self.reply_tx,
                sent_at: Instant::now(),
            })
            .expect("daemon ingest closed");
        self.reply_rx
    }
}

/// Analyze one submission on an analysis worker, streaming verdicts to
/// the session's reply channel. Uses the batch pipeline's default
/// [`AnalyzerConfig`], so verdict bytes match `Weseer::new().analyze`.
fn run_analysis(job: AnalysisJob, store: Option<&Arc<Store>>, shards: usize) {
    let wall = Instant::now();
    weseer_obs::incr("serve.analyses");
    let Some(app) = app_by_name(&job.app) else {
        let _ = job.reply.send(ServeEvent::Done(AnalysisSummary {
            app: job.app.clone(),
            traces: job.traces.len(),
            verdicts: 0,
            wall: wall.elapsed(),
            error: Some(format!("unknown app {:?}", job.app)),
        }));
        return;
    };
    let catalog = app.catalog();
    let config = AnalyzerConfig::default();
    let fingerprints: Vec<String> = job
        .traces
        .iter()
        .map(|t| t.trace.fingerprint(&t.ctx))
        .collect();
    let store_ctx = store.map(|s| StoreCtx {
        store: s,
        fingerprints: &fingerprints,
        namespace: app.name(),
    });
    let mut verdicts = 0usize;
    diagnose_streaming(
        &catalog,
        &job.traces,
        &config,
        None,
        store_ctx.as_ref(),
        shards,
        &mut |report| {
            verdicts += 1;
            weseer_obs::incr("serve.verdicts_served");
            let _ = job
                .reply
                .send(ServeEvent::Verdict(verdict_line(&job.app, report)));
        },
    );
    let _ = job.reply.send(ServeEvent::Done(AnalysisSummary {
        app: job.app,
        traces: fingerprints.len(),
        verdicts,
        wall: wall.elapsed(),
        error: None,
    }));
}

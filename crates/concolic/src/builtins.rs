//! Modeled built-in classes: `String` and `BigDecimal` (paper Sec. IV-B).
//!
//! Instead of executing library internals concolically, the engine maps
//! `BigDecimal` operations to real-number theory operations and `String`
//! operations to string-theory (dis)equalities. Each helper also carries a
//! *naive* code path (active under [`LibraryMode::Naive`]) that mimics the
//! branch-per-character / branch-per-digit behaviour of real library code,
//! used to reproduce the paper's path-condition pruning measurement
//! (656K → 2.7K for Broadleaf's Ship API).

use crate::engine::{Engine, LibraryMode};
use crate::loc;
use crate::sym::{SymBool, SymValue};
use weseer_sqlir::{CmpOp, Value};

/// Record `n` opaque library-internal branches (bucket probes, character
/// loops). Only does anything under [`LibraryMode::Naive`] — modeled mode
/// counts them as avoided.
pub fn naive_probe_branches(engine: &mut Engine, n: usize) {
    for i in 0..n {
        let out = engine.fresh_output("libbr", Value::Bool(i % 2 == 0));
        let cond = SymBool {
            concrete: i % 2 == 0,
            sym: out.sym,
        };
        engine.enter_library();
        engine.branch(&cond, loc!("library_internal"));
        engine.exit_library();
    }
}

/// `String.equals`: a single string-theory equality in modeled mode; one
/// branch per compared character in naive mode.
pub fn string_equals(engine: &mut Engine, a: &SymValue, b: &SymValue) -> SymBool {
    if engine.tracking()
        && engine.library_mode() == LibraryMode::Naive
        && (a.is_symbolic() || b.is_symbolic())
    {
        let len = a
            .as_str()
            .map(str::len)
            .unwrap_or(0)
            .min(b.as_str().map(str::len).unwrap_or(0))
            .max(1);
        naive_probe_branches(engine, len);
    }
    engine.cmp(CmpOp::Eq, a, b)
}

/// `String.concat`: the result is opaque (no string-concatenation theory),
/// so it becomes a fresh symbolic variable when any input is symbolic —
/// exactly the paper's treatment of ignored functions.
pub fn string_concat(engine: &mut Engine, a: &SymValue, b: &SymValue) -> SymValue {
    let concrete = format!(
        "{}{}",
        a.as_str().unwrap_or_default(),
        b.as_str().unwrap_or_default()
    );
    if engine.tracking() && (a.is_symbolic() || b.is_symbolic()) {
        if engine.library_mode() == LibraryMode::Naive {
            naive_probe_branches(engine, concrete.len().max(1));
        }
        engine.fresh_output("concat", Value::Str(concrete))
    } else {
        SymValue::concrete(Value::Str(concrete))
    }
}

/// `String.isEmpty`.
pub fn string_is_empty(engine: &mut Engine, a: &SymValue) -> SymBool {
    string_equals(engine, a, &SymValue::concrete(""))
}

/// `String.length`: opaque non-negative integer output.
pub fn string_length(engine: &mut Engine, a: &SymValue) -> SymValue {
    let len = a.as_str().map(str::len).unwrap_or(0) as i64;
    if engine.tracking() && a.is_symbolic() {
        if engine.library_mode() == LibraryMode::Naive {
            naive_probe_branches(engine, (len as usize).max(1));
        }
        engine.fresh_output("strlen", Value::Int(len))
    } else {
        SymValue::concrete(len)
    }
}

/// `BigDecimal` — high-precision decimal modeled as a real (paper: Z3
/// floats suffice for the unit tests' numeric ranges).
#[derive(Debug, Clone, PartialEq)]
pub struct BigDecimal(pub SymValue);

impl BigDecimal {
    /// From a concrete decimal.
    pub fn from_f64(v: f64) -> Self {
        BigDecimal(SymValue::concrete(Value::Float(v)))
    }

    /// Wrap an existing concolic numeric (integers widen to reals).
    pub fn from_sym(v: SymValue) -> Self {
        BigDecimal(v)
    }

    /// Concrete value.
    pub fn value(&self) -> f64 {
        self.0.as_float().unwrap_or(0.0)
    }

    fn naive_digits(engine: &mut Engine, a: &SymValue, b: &SymValue) {
        if engine.tracking()
            && engine.library_mode() == LibraryMode::Naive
            && (a.is_symbolic() || b.is_symbolic())
        {
            // Digit-array loops inside BigDecimal arithmetic.
            naive_probe_branches(engine, 6);
        }
    }

    /// `add`.
    pub fn add(&self, engine: &mut Engine, other: &BigDecimal) -> BigDecimal {
        Self::naive_digits(engine, &self.0, &other.0);
        BigDecimal(engine.add(&self.0, &other.0))
    }

    /// `subtract`.
    pub fn sub(&self, engine: &mut Engine, other: &BigDecimal) -> BigDecimal {
        Self::naive_digits(engine, &self.0, &other.0);
        BigDecimal(engine.sub(&self.0, &other.0))
    }

    /// `compareTo(other) ⋈ 0` as a concolic boolean.
    pub fn cmp(&self, engine: &mut Engine, op: CmpOp, other: &BigDecimal) -> SymBool {
        Self::naive_digits(engine, &self.0, &other.0);
        engine.cmp(op, &self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;

    fn engine() -> Engine {
        let mut e = Engine::new(ExecMode::Concolic);
        e.start_concolic();
        e
    }

    #[test]
    fn modeled_string_equals_is_one_theory_atom() {
        let mut e = engine();
        let s = e.make_symbolic("user", Value::str("alice"));
        let t = SymValue::concrete("alice");
        let eq = string_equals(&mut e, &s, &t);
        assert!(eq.concrete);
        assert!(eq.sym.is_some());
        assert_eq!(e.stats().lib_path_conds, 0);
    }

    #[test]
    fn naive_string_equals_branches_per_char() {
        let mut e = engine();
        e.set_library_mode(LibraryMode::Naive);
        let s = e.make_symbolic("user", Value::str("alice"));
        let t = SymValue::concrete("alice");
        let _ = string_equals(&mut e, &s, &t);
        assert_eq!(e.stats().lib_path_conds, 5);
    }

    #[test]
    fn concat_produces_fresh_output() {
        let mut e = engine();
        let s = e.make_symbolic("a", Value::str("foo"));
        let t = SymValue::concrete("bar");
        let c = string_concat(&mut e, &s, &t);
        assert_eq!(c.as_str(), Some("foobar"));
        assert!(c.is_symbolic());
        // Fresh: unrelated to input symbol.
        assert_ne!(c.sym, s.sym);
    }

    #[test]
    fn concrete_concat_stays_concrete() {
        let mut e = engine();
        let c = string_concat(&mut e, &SymValue::concrete("a"), &SymValue::concrete("b"));
        assert!(!c.is_symbolic());
        assert_eq!(c.as_str(), Some("ab"));
    }

    #[test]
    fn bigdecimal_arithmetic_models_reals() {
        let mut e = engine();
        let price = e.make_symbolic("price", Value::Float(10.5));
        let a = BigDecimal::from_sym(price);
        let b = BigDecimal::from_f64(2.5);
        let sum = a.add(&mut e, &b);
        assert_eq!(sum.value(), 13.0);
        assert!(sum.0.is_symbolic());
        let c = sum.cmp(&mut e, CmpOp::Ge, &BigDecimal::from_f64(0.0));
        assert!(c.concrete);
        assert!(c.sym.is_some());
    }

    #[test]
    fn string_length_and_is_empty() {
        let mut e = engine();
        let s = e.make_symbolic("s", Value::str("ab"));
        let l = string_length(&mut e, &s);
        assert_eq!(l.as_int(), Some(2));
        assert!(l.is_symbolic());
        let empty = string_is_empty(&mut e, &SymValue::concrete(""));
        assert!(empty.concrete);
    }
}

//! The database-driver shim (paper Sec. IV-A).
//!
//! Real WeSEER hooks JDBC: it watches (1) transaction begin/commit/abort,
//! (2) statement preparation, (3) statement submission, and (4) result
//! retrieval. [`TraceDriver`] plays that role here: it wraps any
//! [`SqlBackend`] (the in-memory storage engine in production use, or a
//! scripted stub in tests), records templates + symbolic parameters into
//! the trace, and assigns symbolic aliases (`res4.row0.p.ID`) to fetched
//! database state.

use crate::engine::{EngineRef, ExecMode, LibraryMode};
use crate::location::StackTrace;
use crate::sym::SymValue;
use crate::trace::{ResultRow, StmtRecord, Trace, TxnTrace};
use weseer_sqlir::{Statement, Value};

/// Error surfaced by a backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Human-readable cause.
    pub message: String,
    /// Whether the statement's transaction was chosen as a deadlock victim
    /// and rolled back by the database.
    pub deadlock_victim: bool,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if self.deadlock_victim {
            write!(f, " (deadlock victim)")?;
        }
        Ok(())
    }
}

impl std::error::Error for BackendError {}

/// A statement's concrete execution result.
#[derive(Debug, Clone, Default)]
pub struct ExecResult {
    /// Result rows; each row maps `alias.column` to a value. Empty for
    /// writes.
    pub rows: Vec<Vec<(String, Value)>>,
    /// Rows affected by a write.
    pub affected: usize,
}

/// Something that can execute the supported SQL subset concretely.
pub trait SqlBackend {
    /// Begin a transaction.
    fn begin(&mut self);
    /// Execute one statement inside the current transaction.
    fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<ExecResult, BackendError>;
    /// Commit the current transaction.
    fn commit(&mut self) -> Result<(), BackendError>;
    /// Roll back the current transaction.
    fn rollback(&mut self);
}

/// A symbolicized result set handed back to the ORM.
#[derive(Debug, Clone, Default)]
pub struct SymResultSet {
    /// Rows with concolic column values.
    pub rows: Vec<ResultRow>,
}

impl SymResultSet {
    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// The tracing driver.
#[derive(Debug)]
pub struct TraceDriver<B> {
    backend: B,
    engine: EngineRef,
    statements: Vec<StmtRecord>,
    txns: Vec<TxnTrace>,
    current_txn: Option<usize>,
    next_stmt_index: usize,
}

impl<B: SqlBackend> TraceDriver<B> {
    /// Wrap a backend.
    pub fn new(engine: EngineRef, backend: B) -> Self {
        TraceDriver {
            backend,
            engine,
            statements: Vec::new(),
            txns: Vec::new(),
            current_txn: None,
            next_stmt_index: 1,
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the wrapped backend (test setup).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The engine handle.
    pub fn engine(&self) -> &EngineRef {
        &self.engine
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.current_txn.is_some()
    }

    /// Driver function kind 1: transaction begin.
    pub fn begin(&mut self) {
        assert!(
            self.current_txn.is_none(),
            "nested transactions are not supported"
        );
        self.backend.begin();
        let id = self.txns.len();
        self.txns.push(TxnTrace {
            id,
            stmt_indexes: Vec::new(),
            committed: false,
        });
        self.current_txn = Some(id);
    }

    /// Driver function kind 1: commit.
    pub fn commit(&mut self) -> Result<(), BackendError> {
        let id = self.current_txn.take().expect("commit without begin");
        let r = self.backend.commit();
        if r.is_ok() {
            self.txns[id].committed = true;
        }
        r
    }

    /// Driver function kind 1: rollback.
    pub fn rollback(&mut self) {
        let _ = self.current_txn.take().expect("rollback without begin");
        self.backend.rollback();
    }

    /// Driver function kinds 2–4: prepare, submit, and symbolicize results.
    ///
    /// `trigger` is the triggering-code stack (Sec. VI); pass `None` to use
    /// the current stack (eager operations). The ORM passes the recorded
    /// last-modification stack for write-behind flushes.
    pub fn execute(
        &mut self,
        stmt: &Statement,
        params: &[SymValue],
        trigger: Option<StackTrace>,
    ) -> Result<SymResultSet, BackendError> {
        let txn = self.current_txn.expect("statement outside a transaction");
        let concrete_params: Vec<Value> = params.iter().map(|p| p.concrete.clone()).collect();
        let result = self.backend.execute(stmt, &concrete_params)?;

        let mut engine = self.engine.borrow_mut();
        if engine.mode() == ExecMode::Native {
            // No tracing at all in the baseline mode.
            let rows = result
                .rows
                .into_iter()
                .map(|cols| ResultRow {
                    cols: cols
                        .into_iter()
                        .map(|(n, v)| (n, SymValue::concrete(v)))
                        .collect(),
                })
                .collect();
            return Ok(SymResultSet { rows });
        }

        engine.note_statement();
        let index = self.next_stmt_index;
        self.next_stmt_index += 1;
        let seq = engine.next_seq();
        let sent_at = engine.stack();
        let trigger = trigger.unwrap_or_else(|| sent_at.clone());

        // Kind 2: statement preparation. Interpreted drivers walk the SQL
        // template; unmodeled (naive) ones additionally branch per token.
        let template_len = stmt.to_string().len() as u64;
        engine.dispatch_n(template_len / 4);
        let tracking = engine.tracking();
        let naive = engine.library_mode() == LibraryMode::Naive;
        if naive && tracking {
            drop(engine);
            {
                let mut e = self.engine.borrow_mut();
                crate::builtins::naive_probe_branches(&mut e, (template_len / 4) as usize);
            }
            engine = self.engine.borrow_mut();
        }

        // Kind 4: assign symbolic aliases to fetched database state
        // (res4.row0.p.ID naming from Fig. 3).
        let mut rows = Vec::with_capacity(result.rows.len());
        for (r, cols) in result.rows.into_iter().enumerate() {
            let mut row = ResultRow::default();
            for (name, v) in cols {
                // Result parsing is interpreted library code; naive mode
                // also branches once per parsed character/digit.
                let width = (v.to_string().len() as u64).max(1);
                engine.dispatch_n(width);
                if naive && tracking {
                    drop(engine);
                    {
                        let mut e = self.engine.borrow_mut();
                        crate::builtins::naive_probe_branches(&mut e, width as usize);
                    }
                    engine = self.engine.borrow_mut();
                }
                let sym = if tracking && !v.is_null() {
                    let alias = format!("res{index}.row{r}.{name}");
                    Some(engine.make_symbolic(alias, v.clone()))
                } else {
                    None
                };
                row.cols
                    .push((name, sym.unwrap_or_else(|| SymValue::concrete(v))));
            }
            rows.push(row);
        }

        // Result-consistency conditions: every fetched row satisfies the
        // statement's query condition — the recorded result symbols
        // "reflect the database state" (Sec. III-A), so the analyzer may
        // rely on e.g. `res1.row0.e.ID = pid` for a point SELECT.
        if tracking {
            if let Some(q) = stmt.query_condition() {
                let stack = engine.stack();
                for row in &rows {
                    if let Some(t) = row_condition(&mut engine, &q, params, row) {
                        engine.record_condition(t, stack.clone());
                    }
                }
            }
        }

        let is_empty = rows.is_empty();
        let record = StmtRecord {
            index,
            seq,
            txn,
            stmt: stmt.clone(),
            params: params.to_vec(),
            rows: rows.clone(),
            is_empty,
            trigger,
            sent_at,
        };
        let pos = self.statements.len();
        self.statements.push(record);
        self.txns[txn].stmt_indexes.push(pos);
        Ok(SymResultSet { rows })
    }

    /// Finalize the trace for an API unit test, draining recorded state.
    /// The engine's execution counters are also published to the global
    /// [`weseer_obs`] registry under `concolic.*`.
    pub fn take_trace(&mut self, api: impl Into<String>) -> Trace {
        let engine = self.engine.borrow();
        let stats = engine.stats();
        weseer_obs::incr("concolic.traces");
        weseer_obs::add("concolic.statements", stats.statements as u64);
        weseer_obs::add("concolic.app_path_conds", stats.app_path_conds as u64);
        weseer_obs::add("concolic.lib_path_conds", stats.lib_path_conds as u64);
        weseer_obs::add(
            "concolic.lib_path_conds_avoided",
            stats.lib_path_conds_avoided as u64,
        );
        weseer_obs::add("concolic.sym_ops", stats.sym_ops);
        weseer_obs::add("concolic.interpreted_ops", stats.interpreted_ops);
        Trace {
            api: api.into(),
            statements: std::mem::take(&mut self.statements),
            txns: std::mem::take(&mut self.txns),
            path_conds: engine.path_conds().to_vec(),
            unique_ids: engine.unique_ids().to_vec(),
            stats,
        }
    }
}

/// Encode "this result row satisfies the statement's query condition" as
/// a term. Atoms that cannot be encoded faithfully (NULLs, unresolvable
/// operands, string orderings) make their surrounding disjunction opaque;
/// plain conjunctions simply drop the opaque atom (sound for a fact that
/// is known true).
fn row_condition(
    engine: &mut crate::engine::Engine,
    cond: &weseer_sqlir::Cond,
    params: &[SymValue],
    row: &ResultRow,
) -> Option<weseer_smt::TermId> {
    use weseer_smt::Sort;
    use weseer_sqlir::ast::Term as CondTerm;
    use weseer_sqlir::{CmpOp, Cond, Operand};

    fn operand_term(
        engine: &mut crate::engine::Engine,
        op: &Operand,
        params: &[SymValue],
        row: &ResultRow,
    ) -> Option<weseer_smt::TermId> {
        match op {
            Operand::Param(i) => {
                let p = params.get(*i)?.clone();
                engine.term_of_value(&p)
            }
            Operand::Const(v) => engine.term_of_value(&SymValue::concrete(v.clone())),
            Operand::Column { alias, column } => {
                let v = row.get(&format!("{alias}.{column}"))?.clone();
                engine.term_of_value(&v)
            }
        }
    }

    match cond {
        Cond::And(a, b) => {
            let (ta, tb) = (
                row_condition(engine, a, params, row),
                row_condition(engine, b, params, row),
            );
            match (ta, tb) {
                (Some(x), Some(y)) => Some(engine.ctx.and([x, y])),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            }
        }
        Cond::Or(a, b) => {
            let ta = row_condition(engine, a, params, row)?;
            let tb = row_condition(engine, b, params, row)?;
            Some(engine.ctx.or([ta, tb]))
        }
        Cond::Term(CondTerm::Cmp(p)) => {
            let lhs = operand_term(engine, &p.lhs, params, row)?;
            let rhs = operand_term(engine, &p.rhs, params, row)?;
            let (sl, sr) = (engine.ctx.sort(lhs).clone(), engine.ctx.sort(rhs).clone());
            let compatible = sl == sr || (sl.is_numeric() && sr.is_numeric());
            if !compatible {
                return None;
            }
            if matches!(sl, Sort::Str | Sort::Bool) && !matches!(p.op, CmpOp::Eq | CmpOp::Ne) {
                return None;
            }
            Some(match p.op {
                CmpOp::Eq => engine.ctx.eq(lhs, rhs),
                CmpOp::Ne => engine.ctx.ne(lhs, rhs),
                CmpOp::Lt => engine.ctx.lt(lhs, rhs),
                CmpOp::Le => engine.ctx.le(lhs, rhs),
                CmpOp::Gt => engine.ctx.gt(lhs, rhs),
                CmpOp::Ge => engine.ctx.ge(lhs, rhs),
            })
        }
        Cond::Term(CondTerm::IsNull(_)) | Cond::Term(CondTerm::NotNull(_)) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, ExecMode};
    use weseer_sqlir::parser::parse;

    /// A scripted backend returning canned rows.
    #[derive(Default)]
    struct StubBackend {
        rows: Vec<Vec<(String, Value)>>,
        executed: Vec<(Statement, Vec<Value>)>,
        begun: usize,
        committed: usize,
        rolled_back: usize,
    }

    impl SqlBackend for StubBackend {
        fn begin(&mut self) {
            self.begun += 1;
        }
        fn execute(
            &mut self,
            stmt: &Statement,
            params: &[Value],
        ) -> Result<ExecResult, BackendError> {
            self.executed.push((stmt.clone(), params.to_vec()));
            Ok(ExecResult {
                rows: self.rows.clone(),
                affected: 1,
            })
        }
        fn commit(&mut self) -> Result<(), BackendError> {
            self.committed += 1;
            Ok(())
        }
        fn rollback(&mut self) {
            self.rolled_back += 1;
        }
    }

    fn driver_with_rows(
        mode: ExecMode,
        rows: Vec<Vec<(String, Value)>>,
    ) -> TraceDriver<StubBackend> {
        let e = engine::shared(mode);
        e.borrow_mut().start_concolic();
        TraceDriver::new(
            e,
            StubBackend {
                rows,
                ..Default::default()
            },
        )
    }

    #[test]
    fn records_statement_with_symbolic_params() {
        let mut d = driver_with_rows(ExecMode::Concolic, vec![]);
        let stmt = parse("SELECT * FROM Order o WHERE o.ID = ?").unwrap();
        let p = d
            .engine()
            .borrow_mut()
            .make_symbolic("order_id", Value::Int(7));
        d.begin();
        let rs = d.execute(&stmt, std::slice::from_ref(&p), None).unwrap();
        assert!(rs.is_empty());
        d.commit().unwrap();
        let trace = d.take_trace("Demo");
        assert_eq!(trace.statements.len(), 1);
        let rec = &trace.statements[0];
        assert_eq!(rec.label(), "Q1");
        assert!(rec.is_empty);
        assert!(rec.params[0].is_symbolic());
        assert_eq!(rec.params[0].concrete, Value::Int(7));
        assert!(trace.txns[0].committed);
    }

    #[test]
    fn results_get_symbolic_aliases() {
        let rows = vec![vec![
            ("p.ID".to_string(), Value::Int(3)),
            ("p.QTY".to_string(), Value::Int(10)),
        ]];
        let mut d = driver_with_rows(ExecMode::Concolic, rows);
        let stmt = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        d.begin();
        let rs = d.execute(&stmt, &[SymValue::concrete(3i64)], None).unwrap();
        d.commit().unwrap();
        assert_eq!(rs.len(), 1);
        let v = rs.rows[0].get("p.ID").unwrap();
        assert!(v.is_symbolic());
        let e = d.engine().borrow();
        assert_eq!(e.ctx.display(v.sym.unwrap()), "res1.row0.p.ID");
    }

    #[test]
    fn native_mode_records_nothing() {
        let rows = vec![vec![("p.ID".to_string(), Value::Int(3))]];
        let mut d = driver_with_rows(ExecMode::Native, rows);
        let stmt = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        d.begin();
        let rs = d.execute(&stmt, &[SymValue::concrete(3i64)], None).unwrap();
        d.commit().unwrap();
        assert!(!rs.rows[0].get("p.ID").unwrap().is_symbolic());
        let trace = d.take_trace("Demo");
        assert!(trace.statements.is_empty());
    }

    #[test]
    fn interpretive_mode_records_but_no_symbols() {
        let rows = vec![vec![("p.ID".to_string(), Value::Int(3))]];
        let mut d = driver_with_rows(ExecMode::Interpretive, rows);
        let stmt = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        d.begin();
        let rs = d.execute(&stmt, &[SymValue::concrete(3i64)], None).unwrap();
        d.commit().unwrap();
        assert!(!rs.rows[0].get("p.ID").unwrap().is_symbolic());
        let trace = d.take_trace("Demo");
        assert_eq!(trace.statements.len(), 1);
    }

    #[test]
    fn txn_boundaries_tracked() {
        let mut d = driver_with_rows(ExecMode::Concolic, vec![]);
        let stmt = parse("INSERT INTO T (A) VALUES (?)").unwrap();
        d.begin();
        d.execute(&stmt, &[SymValue::concrete(1i64)], None).unwrap();
        d.commit().unwrap();
        d.begin();
        d.execute(&stmt, &[SymValue::concrete(2i64)], None).unwrap();
        d.rollback();
        let trace = d.take_trace("Demo");
        assert_eq!(trace.txns.len(), 2);
        assert!(trace.txns[0].committed);
        assert!(!trace.txns[1].committed);
        assert_eq!(trace.statements_of(0).len(), 1);
        assert_eq!(trace.statements_of(1).len(), 1);
        assert_eq!(d.backend().begun, 2);
        assert_eq!(d.backend().committed, 1);
        assert_eq!(d.backend().rolled_back, 1);
    }

    #[test]
    #[should_panic(expected = "outside a transaction")]
    fn statement_outside_txn_panics() {
        let mut d = driver_with_rows(ExecMode::Concolic, vec![]);
        let stmt = parse("SELECT * FROM T t WHERE t.A = 1").unwrap();
        let _ = d.execute(&stmt, &[], None);
    }

    #[test]
    fn naive_mode_floods_driver_parse_branches() {
        let rows = vec![
            vec![
                ("p.ID".to_string(), Value::Int(1)),
                ("p.QTY".to_string(), Value::Int(2)),
            ],
            vec![
                ("p.ID".to_string(), Value::Int(2)),
                ("p.QTY".to_string(), Value::Int(3)),
            ],
        ];
        let mut d = driver_with_rows(ExecMode::Concolic, rows);
        d.engine().borrow_mut().set_library_mode(LibraryMode::Naive);
        let stmt = parse("SELECT * FROM Product p WHERE p.QTY > ?").unwrap();
        d.begin();
        d.execute(&stmt, &[SymValue::concrete(0i64)], None).unwrap();
        d.commit().unwrap();
        let stats = d.engine().borrow().stats();
        assert!(
            stats.lib_path_conds >= 4,
            "expected per-column parse branches"
        );
    }
}

//! Source locations and stack traces.
//!
//! WeSEER must report the *triggering code* of every deadlock-prone SQL
//! statement (paper Sec. VI). The concolic runtime therefore maintains an
//! explicit call stack of [`CodeLoc`]s; the ORM snapshots it when a
//! statement is triggered (which, under write-behind caching, is not when
//! it is sent).

use std::fmt;

/// A source code location in the simulated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeLoc {
    /// Source file.
    pub file: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name.
    pub function: &'static str,
}

impl CodeLoc {
    /// Construct a location.
    pub fn new(file: &'static str, line: u32, function: &'static str) -> Self {
        CodeLoc {
            file,
            line,
            function,
        }
    }
}

impl fmt::Display for CodeLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} in {}", self.file, self.line, self.function)
    }
}

/// Capture the current source location.
///
/// `loc!("finishOrder")` expands to a [`CodeLoc`] with the real `file!()`
/// and `line!()` of the call site, tagged with the given function name.
#[macro_export]
macro_rules! loc {
    ($function:expr) => {
        $crate::location::CodeLoc::new(file!(), line!(), $function)
    };
}

/// A snapshot of the simulated call stack, innermost frame last.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StackTrace {
    /// Frames, outermost first.
    pub frames: Vec<CodeLoc>,
}

impl StackTrace {
    /// Empty stack.
    pub fn new() -> Self {
        StackTrace::default()
    }

    /// The innermost frame — the direct trigger site.
    pub fn top(&self) -> Option<&CodeLoc> {
        self.frames.last()
    }

    /// Whether any frame belongs to `function`.
    pub fn mentions(&self, function: &str) -> bool {
        self.frames.iter().any(|f| f.function == function)
    }
}

impl fmt::Display for StackTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frames.is_empty() {
            return write!(f, "<no stack>");
        }
        for (i, frame) in self.frames.iter().rev().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  at {frame}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_macro_captures_position() {
        let l = loc!("test_fn");
        assert!(l.file.ends_with("location.rs"));
        assert_eq!(l.function, "test_fn");
        assert!(l.line > 0);
    }

    #[test]
    fn stack_top_and_mentions() {
        let mut st = StackTrace::new();
        st.frames.push(CodeLoc::new("a.rs", 1, "outer"));
        st.frames.push(CodeLoc::new("b.rs", 2, "inner"));
        assert_eq!(st.top().unwrap().function, "inner");
        assert!(st.mentions("outer"));
        assert!(!st.mentions("nope"));
    }

    #[test]
    fn display_formats() {
        let mut st = StackTrace::new();
        assert_eq!(st.to_string(), "<no stack>");
        st.frames.push(CodeLoc::new("a.rs", 1, "f"));
        assert!(st.to_string().contains("a.rs:1 in f"));
    }
}

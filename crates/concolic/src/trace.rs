//! Runtime traces (paper Fig. 3).
//!
//! A [`Trace`] is the artifact concolic execution hands to the deadlock
//! analyzer: per-transaction SQL templates with symbolic parameters,
//! symbolic database results, path conditions ordered against statement
//! execution, and the triggering-code stack of every statement.

use crate::engine::{EngineStats, PathCond};
use crate::location::StackTrace;
use crate::sym::SymValue;
use std::fmt;
use weseer_sqlir::Statement;

/// One row of a statement's database result; column names are
/// `alias.column` as projected by the SELECT.
#[derive(Debug, Clone, Default)]
pub struct ResultRow {
    /// `(alias.column, concolic value)` pairs.
    pub cols: Vec<(String, SymValue)>,
}

impl ResultRow {
    /// Look up a column by its `alias.column` name.
    pub fn get(&self, name: &str) -> Option<&SymValue> {
        self.cols.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// A recorded SQL statement execution.
#[derive(Debug, Clone)]
pub struct StmtRecord {
    /// 1-based position within the trace (the paper's Q1, Q2, …).
    pub index: usize,
    /// Global event sequence at execution time; path conditions with a
    /// smaller `seq` were recorded before this statement.
    pub seq: u64,
    /// Index of the owning transaction within the trace.
    pub txn: usize,
    /// The SQL template.
    pub stmt: Statement,
    /// Concolic parameter values, in `?` order.
    pub params: Vec<SymValue>,
    /// The (symbolicized) database result rows.
    pub rows: Vec<ResultRow>,
    /// Whether the statement fetched an empty result (drives range-lock
    /// generation, Alg. 2).
    pub is_empty: bool,
    /// The code that *triggered* the statement (Sec. VI) — distinct from
    /// `sent_at` under ORM write-behind.
    pub trigger: StackTrace,
    /// The code that actually sent the statement to the database.
    pub sent_at: StackTrace,
}

impl StmtRecord {
    /// Short label like `Q4`.
    pub fn label(&self) -> String {
        format!("Q{}", self.index)
    }
}

/// A transaction's extent within a trace.
#[derive(Debug, Clone)]
pub struct TxnTrace {
    /// 0-based transaction index within the trace.
    pub id: usize,
    /// Indexes (into [`Trace::statements`]) of this transaction's
    /// statements, in execution order.
    pub stmt_indexes: Vec<usize>,
    /// Whether the transaction committed (vs. rolled back).
    pub committed: bool,
}

/// A full runtime trace of one API unit test.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The API the unit test exercised (e.g. `"Ship"`).
    pub api: String,
    /// All statements, in execution order across transactions.
    pub statements: Vec<StmtRecord>,
    /// Transaction boundaries.
    pub txns: Vec<TxnTrace>,
    /// Path conditions in recording order.
    pub path_conds: Vec<PathCond>,
    /// Database-generated identifiers: `(generator name, variable term)`.
    /// The analyzer asserts pairwise disequality for same-generator ids
    /// across concurrent instances (sequences never collide).
    pub unique_ids: Vec<(String, weseer_smt::TermId)>,
    /// Engine counters at collection time.
    pub stats: EngineStats,
}

impl Trace {
    /// Statements belonging to transaction `txn`.
    pub fn statements_of(&self, txn: usize) -> Vec<&StmtRecord> {
        self.txns
            .get(txn)
            .map(|t| {
                t.stmt_indexes
                    .iter()
                    .map(|&i| &self.statements[i])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Path conditions recorded strictly before sequence `seq`
    /// (the fine-grained phase drops conditions recorded after the last
    /// statement involved in a cycle — paper Sec. V-B).
    pub fn path_conds_before(&self, seq: u64) -> impl Iterator<Item = &PathCond> {
        self.path_conds.iter().filter(move |p| p.seq < seq)
    }

    /// The distinct tables accessed by a transaction.
    pub fn tables_of(&self, txn: usize) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in self.statements_of(txn) {
            for t in s.stmt.tables() {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace of API {} ({} txns)", self.api, self.txns.len())?;
        for txn in &self.txns {
            writeln!(
                f,
                "  txn {} ({}):",
                txn.id,
                if txn.committed {
                    "committed"
                } else {
                    "aborted"
                }
            )?;
            for &i in &txn.stmt_indexes {
                let s = &self.statements[i];
                writeln!(f, "    {}: {}", s.label(), s.stmt)?;
            }
        }
        writeln!(f, "  {} path conditions", self.path_conds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStats;
    use weseer_sqlir::parser::parse;

    fn sample() -> Trace {
        let q1 = parse("SELECT * FROM T t WHERE t.A = ?").unwrap();
        let q2 = parse("UPDATE T SET A = ? WHERE B = ?").unwrap();
        Trace {
            api: "Demo".into(),
            statements: vec![
                StmtRecord {
                    index: 1,
                    seq: 10,
                    txn: 0,
                    stmt: q1,
                    params: vec![],
                    rows: vec![],
                    is_empty: true,
                    trigger: StackTrace::new(),
                    sent_at: StackTrace::new(),
                },
                StmtRecord {
                    index: 2,
                    seq: 20,
                    txn: 0,
                    stmt: q2,
                    params: vec![],
                    rows: vec![],
                    is_empty: false,
                    trigger: StackTrace::new(),
                    sent_at: StackTrace::new(),
                },
            ],
            txns: vec![TxnTrace {
                id: 0,
                stmt_indexes: vec![0, 1],
                committed: true,
            }],
            path_conds: vec![],
            unique_ids: vec![],
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn statements_of_txn() {
        let t = sample();
        let stmts = t.statements_of(0);
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].label(), "Q1");
        assert!(t.statements_of(5).is_empty());
    }

    #[test]
    fn tables_of_txn_dedup() {
        let t = sample();
        assert_eq!(t.tables_of(0), vec!["T"]);
    }

    #[test]
    fn display_mentions_api_and_labels() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("Q1"));
        assert!(s.contains("Q2"));
    }

    #[test]
    fn result_row_lookup() {
        let mut row = ResultRow::default();
        row.cols.push(("p.ID".into(), SymValue::concrete(3i64)));
        assert_eq!(row.get("p.ID").unwrap().as_int(), Some(3));
        assert!(row.get("p.QTY").is_none());
    }
}

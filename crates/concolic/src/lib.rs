//! # weseer-concolic
//!
//! The concolic-execution runtime and trace collector of WeSEER
//! (paper Sec. III-A and IV).
//!
//! The paper implements concolic execution by instrumenting OpenJDK8's
//! HotSpot VM so unmodified Java web applications run concolically. In this
//! Rust reproduction, simulated application code is written against the
//! runtime in this crate instead:
//!
//! * [`engine::Engine`] — symbolic store, path conditions, the
//!   `start_concolic`/`end_concolic`/`make_symbolic` interface, execution
//!   modes (Native / Interpretive / Concolic, Table III), and the
//!   ignored-library mechanism with its Naive counterpart (the 656K→2.7K
//!   path-condition pruning experiment);
//! * [`containers::SymMap`]/[`containers::SymSet`] — Alg. 1 container
//!   modeling over SMT `Array<K, Bool>`;
//! * [`builtins`] — `String`/`BigDecimal` modeling (Sec. IV-B);
//! * [`driver::TraceDriver`] — the JDBC-shim that records transaction life
//!   cycles, SQL templates, symbolic parameters, and symbolicized results
//!   (Sec. IV-A);
//! * [`trace::Trace`] — the Fig. 3 artifact consumed by the analyzer.

pub mod builtins;
pub mod containers;
pub mod driver;
pub mod engine;
pub mod fingerprint;
pub mod location;
pub mod sym;
pub mod trace;

pub use driver::{BackendError, ExecResult, SqlBackend, SymResultSet, TraceDriver};
pub use engine::{
    shared, take_ctx, Engine, EngineRef, EngineStats, ExecMode, LibraryMode, PathCond,
};
pub use fingerprint::FINGERPRINT_SCHEMA;
pub use location::{CodeLoc, StackTrace};
pub use sym::{SymBool, SymValue};
pub use trace::{ResultRow, StmtRecord, Trace, TxnTrace};

//! Concolic values: concrete value + optional symbolic expression.
//!
//! A [`SymValue`] pairs the concrete runtime value (which drives execution)
//! with a symbolic term (which models all values the variable could take on
//! this path — paper Sec. III-A). Values without a symbolic part behave as
//! plain constants.

use weseer_smt::TermId;
use weseer_sqlir::Value;

/// A concolic scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct SymValue {
    /// The concrete value driving this execution.
    pub concrete: Value,
    /// The symbolic expression, if the value depends on symbolic inputs.
    pub sym: Option<TermId>,
}

impl SymValue {
    /// A purely concrete value.
    pub fn concrete(v: impl Into<Value>) -> Self {
        SymValue {
            concrete: v.into(),
            sym: None,
        }
    }

    /// A concolic value with both parts.
    pub fn with_sym(v: impl Into<Value>, sym: TermId) -> Self {
        SymValue {
            concrete: v.into(),
            sym: Some(sym),
        }
    }

    /// Whether the value carries a symbolic part.
    pub fn is_symbolic(&self) -> bool {
        self.sym.is_some()
    }

    /// Concrete integer payload.
    pub fn as_int(&self) -> Option<i64> {
        self.concrete.as_int()
    }

    /// Concrete float payload (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        self.concrete.as_float()
    }

    /// Concrete string payload.
    pub fn as_str(&self) -> Option<&str> {
        self.concrete.as_str()
    }
}

impl From<i64> for SymValue {
    fn from(v: i64) -> Self {
        SymValue::concrete(v)
    }
}

impl From<&str> for SymValue {
    fn from(v: &str) -> Self {
        SymValue::concrete(v)
    }
}

impl From<Value> for SymValue {
    fn from(v: Value) -> Self {
        SymValue::concrete(v)
    }
}

/// A concolic boolean, produced by comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct SymBool {
    /// The concrete truth value on this execution.
    pub concrete: bool,
    /// The symbolic condition, if input-dependent.
    pub sym: Option<TermId>,
}

impl SymBool {
    /// A purely concrete boolean.
    pub fn concrete(b: bool) -> Self {
        SymBool {
            concrete: b,
            sym: None,
        }
    }

    /// A concolic boolean.
    pub fn with_sym(b: bool, sym: TermId) -> Self {
        SymBool {
            concrete: b,
            sym: Some(sym),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_accessors() {
        let v = SymValue::concrete(42i64);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_float(), Some(42.0));
        assert!(!v.is_symbolic());
        let s = SymValue::concrete("hi");
        assert_eq!(s.as_str(), Some("hi"));
    }

    #[test]
    fn conversions() {
        let v: SymValue = 7i64.into();
        assert_eq!(v.concrete, Value::Int(7));
        let v: SymValue = "x".into();
        assert_eq!(v.concrete, Value::str("x"));
    }
}

//! Symbolic container modeling (paper Alg. 1).
//!
//! Containers with one-to-one key/value mappings (ORM identity caches,
//! sets) are encoded as SMT arrays `Array<KeySort, Bool>` recording key
//! *existence*; values ride along concretely. `get`/`put`/`remove` append
//! the path conditions of Alg. 1 instead of executing hash/tree internals
//! concolically.

use crate::engine::{Engine, LibraryMode};
use crate::sym::SymValue;
use weseer_smt::{Sort, TermId};
use weseer_sqlir::Value;

/// A concolic map with symbolic keys and concrete values.
///
/// `V` is the value type (entity handles in the ORM). The paper's `keyOf`
/// inverse mapping is implicit: each entry stores the symbolic key it was
/// inserted under, which is exactly `keyOf[value]`.
#[derive(Debug, Clone)]
pub struct SymMap<V> {
    /// Current symbolic array term (functional updates on put/remove).
    arr: TermId,
    entries: Vec<(SymValue, V)>,
    name: String,
}

impl<V: Clone> SymMap<V> {
    /// Create a map whose existence array has the given key sort.
    pub fn new(engine: &mut Engine, name: impl Into<String>, key_sort: Sort) -> Self {
        let name = name.into();
        let arr = engine.ctx.array_var(format!("map!{name}"), key_sort);
        SymMap {
            arr,
            entries: Vec::new(),
            name,
        }
    }

    /// The map's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &Value) -> Option<usize> {
        self.entries.iter().position(|(k, _)| &k.concrete == key)
    }

    /// Alg. 1 `get`: concrete lookup + path conditions.
    ///
    /// * hit: records `key = keyOf[retValue]` — the symbolic key equals the
    ///   symbolic key the entry was inserted under;
    /// * miss: records `read(arrId, key) = False`.
    pub fn get(&self, engine: &mut Engine, key: &SymValue) -> Option<V> {
        match self.position(&key.concrete) {
            Some(i) => {
                let (stored_key, value) = &self.entries[i];
                self.record_hit(engine, key, stored_key);
                Some(value.clone())
            }
            None => {
                self.record_miss(engine, key);
                None
            }
        }
    }

    fn record_hit(&self, engine: &mut Engine, key: &SymValue, stored: &SymValue) {
        if !engine.tracking() {
            return;
        }
        if engine.library_mode() == LibraryMode::Naive {
            // Unmodeled containers would walk buckets/tree nodes, branching
            // once per probed entry.
            crate::builtins::naive_probe_branches(engine, self.entries.len().max(1));
        }
        if let (Some(k), Some(s)) = (key.sym, stored.sym) {
            if k != s {
                let eq = engine.ctx.eq(k, s);
                let cond = crate::sym::SymBool::with_sym(true, eq);
                engine.branch(&cond, crate::loc!("SymMap::get"));
            }
        }
    }

    fn record_miss(&self, engine: &mut Engine, key: &SymValue) {
        if !engine.tracking() {
            return;
        }
        if engine.library_mode() == LibraryMode::Naive {
            crate::builtins::naive_probe_branches(engine, self.entries.len().max(1));
        }
        if let Some(k) = key.sym {
            let read = engine.ctx.select(self.arr, k);
            let not_read = engine.ctx.not(read);
            let cond = crate::sym::SymBool::with_sym(true, not_read);
            engine.branch(&cond, crate::loc!("SymMap::get"));
        }
    }

    /// Alg. 1 `put`: reuses `get` for the existence condition, then updates
    /// the existence array with `write(arrId, key, True)` and the concrete
    /// entry list.
    pub fn put(&mut self, engine: &mut Engine, key: SymValue, value: V) -> Option<V> {
        match self.position(&key.concrete) {
            Some(i) => {
                let stored_key = self.entries[i].0.clone();
                self.record_hit(engine, &key, &stored_key);
                // keyOf.remove(retValue); keyOf[value] ← key
                let old = std::mem::replace(&mut self.entries[i], (key, value));
                Some(old.1)
            }
            None => {
                self.record_miss(engine, &key);
                if engine.tracking() {
                    if let Some(k) = key.sym {
                        let tt = engine.ctx.bool_const(true);
                        self.arr = engine.ctx.store(self.arr, k, tt);
                    }
                }
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Alg. 1 `remove`.
    pub fn remove(&mut self, engine: &mut Engine, key: &SymValue) -> Option<V> {
        match self.position(&key.concrete) {
            Some(i) => {
                let stored_key = self.entries[i].0.clone();
                self.record_hit(engine, key, &stored_key);
                if engine.tracking() {
                    if let Some(k) = key.sym {
                        let ff = engine.ctx.bool_const(false);
                        self.arr = engine.ctx.store(self.arr, k, ff);
                    }
                }
                Some(self.entries.remove(i).1)
            }
            None => {
                self.record_miss(engine, key);
                None
            }
        }
    }

    /// Iterate entries in insertion order (concrete traversal; lazy ORM
    /// collections iterate this way after loading).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterate `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SymValue, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A concolic set: a [`SymMap`] whose keys and values coincide (Alg. 1's
/// observation that `set`'s key and value are equivalent).
#[derive(Debug, Clone)]
pub struct SymSet {
    map: SymMap<()>,
}

impl SymSet {
    /// Create a set over the given key sort.
    pub fn new(engine: &mut Engine, name: impl Into<String>, key_sort: Sort) -> Self {
        SymSet {
            map: SymMap::new(engine, name, key_sort),
        }
    }

    /// Membership test with Alg. 1 path conditions.
    pub fn contains(&self, engine: &mut Engine, key: &SymValue) -> bool {
        self.map.get(engine, key).is_some()
    }

    /// Insert; returns whether the key was new.
    pub fn insert(&mut self, engine: &mut Engine, key: SymValue) -> bool {
        self.map.put(engine, key, ()).is_none()
    }

    /// Remove; returns whether the key was present.
    pub fn remove(&mut self, engine: &mut Engine, key: &SymValue) -> bool {
        self.map.remove(engine, key).is_some()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;

    fn engine() -> Engine {
        let mut e = Engine::new(ExecMode::Concolic);
        e.start_concolic();
        e
    }

    #[test]
    fn miss_records_negative_existence() {
        let mut e = engine();
        let map: SymMap<i32> = SymMap::new(&mut e, "cache", Sort::Int);
        let k = e.make_symbolic("k", Value::Int(7));
        assert_eq!(map.get(&mut e, &k), None);
        assert_eq!(e.path_conds().len(), 1);
        let pc = &e.path_conds()[0];
        assert!(e.ctx.display(pc.term).contains("read map!cache"));
        assert!(e.ctx.display(pc.term).starts_with("(not"));
    }

    #[test]
    fn hit_records_key_equality() {
        let mut e = engine();
        let mut map: SymMap<i32> = SymMap::new(&mut e, "cache", Sort::Int);
        let k1 = e.make_symbolic("k1", Value::Int(7));
        map.put(&mut e, k1, 10);
        let k2 = e.make_symbolic("k2", Value::Int(7)); // same concrete key
        assert_eq!(map.get(&mut e, &k2), Some(10));
        let last = e.path_conds().last().unwrap();
        assert_eq!(e.ctx.display(last.term), "(k1 = k2)");
    }

    #[test]
    fn put_then_get_same_symbol_adds_no_trivial_condition() {
        let mut e = engine();
        let mut map: SymMap<i32> = SymMap::new(&mut e, "m", Sort::Int);
        let k = e.make_symbolic("k", Value::Int(1));
        map.put(&mut e, k.clone(), 5); // one miss PC
        let before = e.path_conds().len();
        assert_eq!(map.get(&mut e, &k), Some(5)); // same symbolic key: no PC
        assert_eq!(e.path_conds().len(), before);
    }

    #[test]
    fn remove_updates_concrete_state() {
        let mut e = engine();
        let mut map: SymMap<&'static str> = SymMap::new(&mut e, "m", Sort::Int);
        let k = e.make_symbolic("k", Value::Int(1));
        map.put(&mut e, k.clone(), "v");
        assert_eq!(map.remove(&mut e, &k), Some("v"));
        assert_eq!(map.get(&mut e, &k), None);
        assert!(map.is_empty());
    }

    #[test]
    fn put_replaces_value_and_returns_old() {
        let mut e = engine();
        let mut map: SymMap<i32> = SymMap::new(&mut e, "m", Sort::Int);
        let k = e.make_symbolic("k", Value::Int(1));
        assert_eq!(map.put(&mut e, k.clone(), 1), None);
        assert_eq!(map.put(&mut e, k.clone(), 2), Some(1));
        assert_eq!(map.get(&mut e, &k), Some(2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn string_keys_work() {
        let mut e = engine();
        let mut map: SymMap<i32> = SymMap::new(&mut e, "users", Sort::Str);
        let k = e.make_symbolic("username", Value::str("alice"));
        map.put(&mut e, k.clone(), 1);
        assert_eq!(map.get(&mut e, &k), Some(1));
        let other = e.make_symbolic("other", Value::str("bob"));
        assert_eq!(map.get(&mut e, &other), None);
    }

    #[test]
    fn set_semantics() {
        let mut e = engine();
        let mut s = SymSet::new(&mut e, "seen", Sort::Int);
        let k = e.make_symbolic("k", Value::Int(3));
        assert!(!s.contains(&mut e, &k));
        assert!(s.insert(&mut e, k.clone()));
        assert!(!s.insert(&mut e, k.clone()));
        assert!(s.contains(&mut e, &k));
        assert!(s.remove(&mut e, &k));
        assert!(s.is_empty());
    }

    #[test]
    fn concrete_keys_generate_no_conditions() {
        let mut e = engine();
        let mut map: SymMap<i32> = SymMap::new(&mut e, "m", Sort::Int);
        map.put(&mut e, SymValue::concrete(1i64), 1);
        assert_eq!(map.get(&mut e, &SymValue::concrete(1i64)), Some(1));
        assert!(e.path_conds().is_empty());
    }

    #[test]
    fn naive_mode_floods_probe_branches() {
        let mut e = engine();
        e.set_library_mode(LibraryMode::Naive);
        let mut map: SymMap<i32> = SymMap::new(&mut e, "m", Sort::Int);
        for i in 0..8 {
            let k = e.make_symbolic(format!("k{i}"), Value::Int(i));
            map.put(&mut e, k, i as i32);
        }
        let probe = e.make_symbolic("probe", Value::Int(3));
        let _ = map.get(&mut e, &probe);
        assert!(
            e.stats().lib_path_conds > 4,
            "naive probing should branch per entry"
        );
    }
}

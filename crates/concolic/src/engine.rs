//! The concolic execution engine (paper Sec. III-A, IV).
//!
//! The engine owns the SMT term context, the path-condition log, and the
//! simulated call stack. Simulated application code performs all
//! input-dependent computation through engine operations so that symbolic
//! expressions propagate; `branch` records a path condition for every
//! input-dependent branch taken.
//!
//! Three execution modes reproduce the paper's Table III measurement:
//!
//! * [`ExecMode::Native`] — every engine operation returns immediately
//!   (JIT-compiled JDK run),
//! * [`ExecMode::Interpretive`] — per-operation bookkeeping but no symbolic
//!   state (interpretive HotSpot run),
//! * [`ExecMode::Concolic`] — full symbolic propagation and path-condition
//!   recording.
//!
//! Library code (string/decimal/container internals, DB drivers) is
//! normally *modeled*: its internal branches are skipped and outputs become
//! fresh symbolic variables (Sec. IV). [`LibraryMode::Naive`] disables the
//! modeling to reproduce the paper's 656K→2.7K path-condition pruning
//! experiment.

use crate::location::{CodeLoc, StackTrace};
use crate::sym::{SymBool, SymValue};
use std::cell::RefCell;
use std::rc::Rc;
use weseer_smt::{Ctx, Rat, Sort, TermId};
use weseer_sqlir::{CmpOp, Value};

/// How application code is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// No tracing, no symbolic state (baseline JDK).
    Native,
    /// Bookkeeping per operation, no symbolic state (interpretive JDK).
    Interpretive,
    /// Full concolic execution.
    Concolic,
}

/// How library-internal branches are treated under concolic execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibraryMode {
    /// Library semantics are modeled; internal branches are pruned and
    /// outputs become fresh symbolic variables (paper Sec. IV).
    Modeled,
    /// Library internals run concolically, flooding the path-condition log
    /// (the paper's unpruned baseline).
    Naive,
}

/// Execution counters reported alongside traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Application-level path conditions recorded.
    pub app_path_conds: usize,
    /// Library-internal path conditions recorded (Naive mode only).
    pub lib_path_conds: usize,
    /// Library-internal path conditions *avoided* by modeling.
    pub lib_path_conds_avoided: usize,
    /// Symbolic operations performed.
    pub sym_ops: u64,
    /// Operations dispatched by the engine (any mode except Native).
    pub interpreted_ops: u64,
    /// SQL statements recorded.
    pub statements: usize,
}

impl EngineStats {
    /// Total path conditions recorded.
    pub fn total_path_conds(&self) -> usize {
        self.app_path_conds + self.lib_path_conds
    }
}

/// One recorded path condition.
#[derive(Debug, Clone)]
pub struct PathCond {
    /// The condition as taken (already negated when the false branch ran).
    pub term: TermId,
    /// Global sequence number; compare with statement sequence numbers to
    /// find "path conditions recorded before statement k" (Sec. V-B).
    pub seq: u64,
    /// Where the branch was evaluated.
    pub stack: StackTrace,
    /// Whether the branch lies inside modeled library code.
    pub in_library: bool,
}

/// The concolic execution engine.
#[derive(Debug)]
pub struct Engine {
    /// SMT term context. Public so the analyzer can keep building formulas
    /// over the trace's terms.
    pub ctx: Ctx,
    mode: ExecMode,
    lib_mode: LibraryMode,
    active: bool,
    ignored_depth: u32,
    frames: Vec<CodeLoc>,
    path_conds: Vec<PathCond>,
    seq: u64,
    sym_inputs: Vec<(String, Value)>,
    unique_ids: Vec<(String, TermId)>,
    stats: EngineStats,
}

/// Shared handle to an engine; the ORM session, the SQL driver, and the
/// application code all hold one.
pub type EngineRef = Rc<RefCell<Engine>>;

/// Create a shared engine.
pub fn shared(mode: ExecMode) -> EngineRef {
    Rc::new(RefCell::new(Engine::new(mode)))
}

/// Move the term context out of an engine once trace collection is done
/// (the analyzer needs the context to interpret the trace's term ids).
/// The engine is left with a fresh empty context.
pub fn take_ctx(engine: &EngineRef) -> Ctx {
    std::mem::take(&mut engine.borrow_mut().ctx)
}

impl Engine {
    /// New engine in the given mode with modeled libraries.
    pub fn new(mode: ExecMode) -> Self {
        Engine {
            ctx: Ctx::new(),
            mode,
            lib_mode: LibraryMode::Modeled,
            active: false,
            ignored_depth: 0,
            frames: Vec::new(),
            path_conds: Vec::new(),
            seq: 0,
            sym_inputs: Vec::new(),
            unique_ids: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Switch library handling (before execution starts).
    pub fn set_library_mode(&mut self, m: LibraryMode) {
        self.lib_mode = m;
    }

    /// Current library mode.
    pub fn library_mode(&self) -> LibraryMode {
        self.lib_mode
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Begin the concolic section (paper's `start_concolic()`).
    pub fn start_concolic(&mut self) {
        self.active = true;
    }

    /// End the concolic section (paper's `end_concolic()`).
    pub fn end_concolic(&mut self) {
        self.active = false;
    }

    /// Whether symbolic state is being propagated right now.
    pub fn tracking(&self) -> bool {
        self.active && self.mode == ExecMode::Concolic
    }

    /// Whether the engine performs per-operation work at all.
    pub fn dispatching(&self) -> bool {
        self.mode != ExecMode::Native
    }

    /// Next global sequence number (shared between path conditions and
    /// statement records).
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Count a recorded SQL statement (called by the driver).
    pub fn note_statement(&mut self) {
        self.stats.statements += 1;
    }

    // ---- call stack ----------------------------------------------------

    /// Push a stack frame (use [`FrameGuard`] / `frame` for RAII).
    pub fn push_frame(&mut self, loc: CodeLoc) {
        self.frames.push(loc);
    }

    /// Pop the innermost frame.
    pub fn pop_frame(&mut self) {
        self.frames.pop();
    }

    /// Snapshot the current call stack.
    pub fn stack(&self) -> StackTrace {
        StackTrace {
            frames: self.frames.clone(),
        }
    }

    /// Snapshot the stack with one extra frame for a trigger site.
    pub fn stack_at(&self, loc: CodeLoc) -> StackTrace {
        let mut st = self.stack();
        st.frames.push(loc);
        st
    }

    // ---- symbolic inputs -----------------------------------------------

    /// Mark a value as symbolic (paper's `make_symbolic(variable)`).
    pub fn make_symbolic(&mut self, name: impl Into<String>, value: Value) -> SymValue {
        let name = name.into();
        if !self.tracking() {
            return SymValue::concrete(value);
        }
        let sort = match &value {
            Value::Int(_) => Sort::Int,
            Value::Float(_) => Sort::Real,
            Value::Str(_) => Sort::Str,
            Value::Bool(_) => Sort::Bool,
            Value::Null => return SymValue::concrete(value),
        };
        let term = self.ctx.var(name.clone(), sort);
        self.sym_inputs.push((name, value.clone()));
        SymValue::with_sym(value, term)
    }

    /// The symbolic inputs registered so far (name, concrete value).
    pub fn symbolic_inputs(&self) -> &[(String, Value)] {
        &self.sym_inputs
    }

    /// A symbolic value drawn from a database sequence / identifier
    /// generator named `gen`. Values of the same generator are unique
    /// across concurrent executions, so the deadlock analyzer adds
    /// cross-instance disequalities for them (otherwise every pair of
    /// INSERTs with generated keys would look like a key collision).
    pub fn make_unique_id(&mut self, gen: &str, value: Value) -> SymValue {
        if !self.tracking() {
            return SymValue::concrete(value);
        }
        let n = self.unique_ids.len();
        let name = format!("uniq!{gen}!{n}");
        let term = self.ctx.var(name.clone(), Sort::Int);
        self.unique_ids.push((gen.to_string(), term));
        self.sym_inputs.push((name, value.clone()));
        SymValue::with_sym(value, term)
    }

    /// Generated-identifier variables recorded so far: `(generator, term)`.
    pub fn unique_ids(&self) -> &[(String, TermId)] {
        &self.unique_ids
    }

    /// A fresh symbolic variable representing an opaque library output
    /// (Sec. IV: "the engine generates a new symbolic variable to
    /// represent its output").
    pub fn fresh_output(&mut self, hint: &str, concrete: Value) -> SymValue {
        if !self.tracking() {
            return SymValue::concrete(concrete);
        }
        let sort = match &concrete {
            Value::Int(_) => Sort::Int,
            Value::Float(_) => Sort::Real,
            Value::Str(_) => Sort::Str,
            Value::Bool(_) => Sort::Bool,
            Value::Null => return SymValue::concrete(concrete),
        };
        let term = self.ctx.fresh_var(hint, sort);
        SymValue::with_sym(concrete, term)
    }

    // ---- ignored (library) sections --------------------------------------

    /// Enter an ignored library function (concrete-only execution).
    pub fn enter_library(&mut self) {
        self.ignored_depth += 1;
    }

    /// Leave an ignored library function.
    pub fn exit_library(&mut self) {
        debug_assert!(self.ignored_depth > 0, "unbalanced exit_library");
        self.ignored_depth = self.ignored_depth.saturating_sub(1);
    }

    /// Whether execution is inside a modeled library.
    pub fn in_library(&self) -> bool {
        self.ignored_depth > 0
    }

    // ---- operations -------------------------------------------------------

    fn term_of(&mut self, v: &SymValue) -> Option<TermId> {
        if let Some(t) = v.sym {
            return Some(t);
        }
        Some(match &v.concrete {
            Value::Int(i) => self.ctx.int(*i),
            Value::Float(f) => {
                let r = Rat::from_f64(*f);
                self.ctx.real(r)
            }
            Value::Str(s) => self.ctx.str_const(s.clone()),
            Value::Bool(b) => self.ctx.bool_const(*b),
            Value::Null => return None,
        })
    }

    fn dispatch(&mut self) {
        if self.dispatching() {
            // A concolic operation interprets strictly more work than a
            // plain interpretive one (symbolic store lookups, taint
            // propagation) — the Table III gap between the two modes.
            let units = if self.mode == ExecMode::Concolic {
                4
            } else {
                1
            };
            self.dispatch_n(units);
        }
    }

    /// Simulate the interpreter executing `n` operation units. The
    /// paper's Interpretive mode is HotSpot with the JIT disabled, so
    /// every operation pays bytecode-dispatch costs; one engine-level
    /// operation here stands for the surrounding application code of the
    /// real 100K-LoC apps, hence the sizeable opaque loop per unit.
    pub fn dispatch_n(&mut self, n: u64) {
        if !self.dispatching() {
            return;
        }
        self.stats.interpreted_ops += n;
        let mut acc = self.seq;
        for i in 0..n * 600 {
            acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
        }
        std::hint::black_box(acc);
    }

    /// Numeric addition.
    pub fn add(&mut self, a: &SymValue, b: &SymValue) -> SymValue {
        self.dispatch();
        let concrete = num_bin(&a.concrete, &b.concrete, |x, y| x + y, |x, y| x + y);
        self.num_result(a, b, concrete, |ctx, ta, tb| ctx.add(ta, tb))
    }

    /// Numeric subtraction.
    pub fn sub(&mut self, a: &SymValue, b: &SymValue) -> SymValue {
        self.dispatch();
        let concrete = num_bin(&a.concrete, &b.concrete, |x, y| x - y, |x, y| x - y);
        self.num_result(a, b, concrete, |ctx, ta, tb| ctx.sub(ta, tb))
    }

    fn num_result(
        &mut self,
        a: &SymValue,
        b: &SymValue,
        concrete: Value,
        build: impl FnOnce(&mut Ctx, TermId, TermId) -> TermId,
    ) -> SymValue {
        if !self.tracking() || (!a.is_symbolic() && !b.is_symbolic()) {
            return SymValue::concrete(concrete);
        }
        self.stats.sym_ops += 1;
        match (self.term_of(a), self.term_of(b)) {
            (Some(ta), Some(tb)) => {
                let t = build(&mut self.ctx, ta, tb);
                SymValue::with_sym(concrete, t)
            }
            _ => SymValue::concrete(concrete),
        }
    }

    /// Comparison producing a concolic boolean.
    ///
    /// Strings support only `=`/`!=` symbolically (Fig. 7); other string
    /// comparisons fall back to a fresh opaque boolean.
    pub fn cmp(&mut self, op: CmpOp, a: &SymValue, b: &SymValue) -> SymBool {
        self.dispatch();
        let concrete = match a.concrete.sql_cmp(&b.concrete) {
            Some(ord) => op.eval(ord),
            None => false, // NULL comparisons are not-true
        };
        if !self.tracking() || (!a.is_symbolic() && !b.is_symbolic()) {
            return SymBool::concrete(concrete);
        }
        if a.concrete.is_null() || b.concrete.is_null() {
            return SymBool::concrete(concrete);
        }
        self.stats.sym_ops += 1;
        let is_str = matches!(a.concrete, Value::Str(_)) || matches!(b.concrete, Value::Str(_));
        if is_str && !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            let out = self.fresh_output("strcmp", Value::Bool(concrete));
            return SymBool {
                concrete,
                sym: out.sym,
            };
        }
        let (ta, tb) = match (self.term_of(a), self.term_of(b)) {
            (Some(ta), Some(tb)) => (ta, tb),
            _ => return SymBool::concrete(concrete),
        };
        let term = match op {
            CmpOp::Eq => self.ctx.eq(ta, tb),
            CmpOp::Ne => self.ctx.ne(ta, tb),
            CmpOp::Lt => self.ctx.lt(ta, tb),
            CmpOp::Le => self.ctx.le(ta, tb),
            CmpOp::Gt => self.ctx.gt(ta, tb),
            CmpOp::Ge => self.ctx.ge(ta, tb),
        };
        SymBool::with_sym(concrete, term)
    }

    /// Logical conjunction of concolic booleans.
    pub fn bool_and(&mut self, a: &SymBool, b: &SymBool) -> SymBool {
        self.dispatch();
        let concrete = a.concrete && b.concrete;
        match (self.tracking(), a.sym, b.sym) {
            (true, Some(ta), Some(tb)) => {
                let t = self.ctx.and([ta, tb]);
                SymBool::with_sym(concrete, t)
            }
            (true, Some(t), None) | (true, None, Some(t)) => SymBool::with_sym(concrete, t),
            _ => SymBool::concrete(concrete),
        }
    }

    /// Logical negation.
    pub fn bool_not(&mut self, a: &SymBool) -> SymBool {
        self.dispatch();
        match (self.tracking(), a.sym) {
            (true, Some(t)) => {
                let nt = self.ctx.not(t);
                SymBool::with_sym(!a.concrete, nt)
            }
            _ => SymBool::concrete(!a.concrete),
        }
    }

    // ---- branching -------------------------------------------------------

    /// Record a branch on `cond` at `loc` and return the concrete decision.
    ///
    /// Inside modeled library code the condition is *not* recorded (paper
    /// Sec. IV pruning); in [`LibraryMode::Naive`] it is.
    pub fn branch(&mut self, cond: &SymBool, loc: CodeLoc) -> bool {
        self.dispatch();
        let taken = cond.concrete;
        if !self.tracking() {
            return taken;
        }
        let Some(sym) = cond.sym else { return taken };
        let in_lib = self.in_library();
        if in_lib && self.lib_mode == LibraryMode::Modeled {
            self.stats.lib_path_conds_avoided += 1;
            return taken;
        }
        let term = if taken { sym } else { self.ctx.not(sym) };
        let seq = self.next_seq();
        let stack = self.stack_at(loc);
        if in_lib {
            self.stats.lib_path_conds += 1;
        } else {
            self.stats.app_path_conds += 1;
        }
        self.path_conds.push(PathCond {
            term,
            seq,
            stack,
            in_library: in_lib,
        });
        taken
    }

    /// Record an externally constructed condition as a path fact (used by
    /// the driver for result-consistency conditions: fetched rows satisfy
    /// the statement's query condition).
    pub fn record_condition(&mut self, term: TermId, stack: StackTrace) {
        if !self.tracking() {
            return;
        }
        let seq = self.next_seq();
        self.stats.app_path_conds += 1;
        self.path_conds.push(PathCond {
            term,
            seq,
            stack,
            in_library: false,
        });
    }

    /// The symbolic term of a concolic value: its symbolic part, or a
    /// constant term of its concrete value (`None` for NULL).
    pub fn term_of_value(&mut self, v: &SymValue) -> Option<TermId> {
        self.term_of(v)
    }

    /// All recorded path conditions, in order.
    pub fn path_conds(&self) -> &[PathCond] {
        &self.path_conds
    }

    /// Path conditions recorded before the given sequence number.
    pub fn path_conds_before(&self, seq: u64) -> Vec<PathCond> {
        self.path_conds
            .iter()
            .filter(|p| p.seq < seq)
            .cloned()
            .collect()
    }
}

fn num_bin(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> i64,
    float_op: impl Fn(f64, f64) -> f64,
) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(int_op(*x, *y)),
        _ => {
            let (x, y) = (
                a.as_float()
                    .unwrap_or_else(|| panic!("numeric op on {a:?}")),
                b.as_float()
                    .unwrap_or_else(|| panic!("numeric op on {b:?}")),
            );
            Value::Float(float_op(x, y))
        }
    }
}

/// RAII guard that pops a stack frame on drop.
pub struct FrameGuard {
    engine: EngineRef,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.engine.borrow_mut().pop_frame();
    }
}

/// Push `loc` onto the simulated call stack for the guard's lifetime.
pub fn frame(engine: &EngineRef, loc: CodeLoc) -> FrameGuard {
    engine.borrow_mut().push_frame(loc);
    FrameGuard {
        engine: engine.clone(),
    }
}

/// RAII guard marking a modeled library section.
pub struct LibraryGuard {
    engine: EngineRef,
}

impl Drop for LibraryGuard {
    fn drop(&mut self) {
        self.engine.borrow_mut().exit_library();
    }
}

/// Enter a modeled library section for the guard's lifetime.
pub fn library_section(engine: &EngineRef) -> LibraryGuard {
    engine.borrow_mut().enter_library();
    LibraryGuard {
        engine: engine.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc;

    fn concolic() -> Engine {
        let mut e = Engine::new(ExecMode::Concolic);
        e.start_concolic();
        e
    }

    #[test]
    fn symbolic_propagation_through_add() {
        // Paper Sec. III-A: a = 1 symbolic; b = a + 1 → concrete 2,
        // symbolic syma + 1.
        let mut e = concolic();
        let a = e.make_symbolic("syma", Value::Int(1));
        let one = SymValue::concrete(1i64);
        let b = e.add(&a, &one);
        assert_eq!(b.concrete, Value::Int(2));
        assert!(b.is_symbolic());
        assert_eq!(e.ctx.display(b.sym.unwrap()), "(syma + 1)");
    }

    #[test]
    fn branch_records_negated_condition_on_else() {
        // if (b == 8) with else taken records syma + 1 != 8.
        let mut e = concolic();
        let a = e.make_symbolic("syma", Value::Int(1));
        let one = SymValue::concrete(1i64);
        let b = e.add(&a, &one);
        let eight = SymValue::concrete(8i64);
        let cond = e.cmp(CmpOp::Eq, &b, &eight);
        let taken = e.branch(&cond, loc!("test"));
        assert!(!taken);
        assert_eq!(e.path_conds().len(), 1);
        let pc = &e.path_conds()[0];
        assert_eq!(e.ctx.display(pc.term), "(not ((syma + 1) = 8))");
    }

    #[test]
    fn concrete_branches_record_nothing() {
        let mut e = concolic();
        let x = SymValue::concrete(5i64);
        let y = SymValue::concrete(3i64);
        let c = e.cmp(CmpOp::Gt, &x, &y);
        assert!(e.branch(&c, loc!("test")));
        assert!(e.path_conds().is_empty());
    }

    #[test]
    fn native_mode_skips_all_tracking() {
        let mut e = Engine::new(ExecMode::Native);
        e.start_concolic();
        let a = e.make_symbolic("a", Value::Int(1));
        assert!(!a.is_symbolic());
        let b = e.add(&a, &SymValue::concrete(1i64));
        assert_eq!(b.concrete, Value::Int(2));
        assert_eq!(e.stats().interpreted_ops, 0);
        assert_eq!(e.stats().sym_ops, 0);
    }

    #[test]
    fn interpretive_mode_counts_but_no_symbols() {
        let mut e = Engine::new(ExecMode::Interpretive);
        e.start_concolic();
        let a = e.make_symbolic("a", Value::Int(1));
        assert!(!a.is_symbolic());
        let _ = e.add(&a, &SymValue::concrete(1i64));
        assert_eq!(e.stats().interpreted_ops, 1);
        assert_eq!(e.stats().sym_ops, 0);
    }

    #[test]
    fn outside_concolic_section_nothing_is_symbolic() {
        let mut e = Engine::new(ExecMode::Concolic);
        let a = e.make_symbolic("a", Value::Int(1));
        assert!(!a.is_symbolic());
        e.start_concolic();
        let b = e.make_symbolic("b", Value::Int(1));
        assert!(b.is_symbolic());
        e.end_concolic();
        let c = e.make_symbolic("c", Value::Int(1));
        assert!(!c.is_symbolic());
    }

    #[test]
    fn library_branches_pruned_in_modeled_mode() {
        let mut e = concolic();
        let a = e.make_symbolic("a", Value::Int(1));
        let zero = SymValue::concrete(0i64);
        let c = e.cmp(CmpOp::Gt, &a, &zero);
        e.enter_library();
        e.branch(&c, loc!("lib_internal"));
        e.exit_library();
        assert_eq!(e.stats().app_path_conds, 0);
        assert_eq!(e.stats().lib_path_conds_avoided, 1);
        assert!(e.path_conds().is_empty());
    }

    #[test]
    fn library_branches_recorded_in_naive_mode() {
        let mut e = concolic();
        e.set_library_mode(LibraryMode::Naive);
        let a = e.make_symbolic("a", Value::Int(1));
        let zero = SymValue::concrete(0i64);
        let c = e.cmp(CmpOp::Gt, &a, &zero);
        e.enter_library();
        e.branch(&c, loc!("lib_internal"));
        e.exit_library();
        assert_eq!(e.stats().lib_path_conds, 1);
        assert_eq!(e.path_conds().len(), 1);
        assert!(e.path_conds()[0].in_library);
    }

    #[test]
    fn string_equality_is_symbolic_order_is_opaque() {
        let mut e = concolic();
        let s = e.make_symbolic("s", Value::str("abc"));
        let t = SymValue::concrete("abc");
        let eq = e.cmp(CmpOp::Eq, &s, &t);
        assert!(eq.concrete);
        assert!(eq.sym.is_some());
        let lt = e.cmp(CmpOp::Lt, &s, &t);
        assert!(lt.sym.is_some()); // fresh opaque var
        assert!(!lt.concrete);
    }

    #[test]
    fn null_comparisons_stay_concrete() {
        let mut e = concolic();
        let s = e.make_symbolic("s", Value::Int(1));
        let null = SymValue::concrete(Value::Null);
        let c = e.cmp(CmpOp::Eq, &s, &null);
        assert!(!c.concrete);
        assert!(c.sym.is_none());
    }

    #[test]
    fn frame_guard_maintains_stack() {
        let e = shared(ExecMode::Concolic);
        e.borrow_mut().start_concolic();
        {
            let _g1 = frame(&e, loc!("outer"));
            {
                let _g2 = frame(&e, loc!("inner"));
                let st = e.borrow().stack();
                assert_eq!(st.frames.len(), 2);
                assert_eq!(st.top().unwrap().function, "inner");
            }
            assert_eq!(e.borrow().stack().frames.len(), 1);
        }
        assert!(e.borrow().stack().frames.is_empty());
    }

    #[test]
    fn path_conds_before_filters_by_seq() {
        let mut e = concolic();
        let a = e.make_symbolic("a", Value::Int(5));
        let zero = SymValue::concrete(0i64);
        let c = e.cmp(CmpOp::Gt, &a, &zero);
        e.branch(&c, loc!("f"));
        let mid = e.next_seq();
        let c2 = e.cmp(CmpOp::Lt, &a, &SymValue::concrete(100i64));
        e.branch(&c2, loc!("f"));
        assert_eq!(e.path_conds_before(mid).len(), 1);
        assert_eq!(e.path_conds().len(), 2);
    }

    #[test]
    fn float_arithmetic_widens() {
        let mut e = concolic();
        let a = e.make_symbolic("price", Value::Float(2.5));
        let b = SymValue::concrete(Value::Int(1));
        let s = e.add(&a, &b);
        assert_eq!(s.concrete, Value::Float(3.5));
        assert!(s.is_symbolic());
    }
}

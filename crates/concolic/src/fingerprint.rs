//! Stable content fingerprints for traces.
//!
//! The incremental engine keys persisted analysis results by the traces
//! they were computed from, so a fingerprint must capture **everything the
//! analyzer and replayer read** from a [`Trace`] — SQL templates,
//! transaction boundaries, concolic parameter and result values, path
//! conditions with their interleaving against the statements, unique-id
//! generators, and the triggering-code stacks surfaced in reports — while
//! ignoring run-to-run noise:
//!
//! * **symbol names** — symbolic terms are canonicalized through
//!   [`weseer_smt::Canonical::content_keys`] with one alpha assignment
//!   shared across the whole trace, so renaming every symbol (or
//!   re-collecting with a differently-seeded name counter) leaves the
//!   fingerprint unchanged while cross-statement value sharing stays
//!   visible;
//! * **raw sequence counters** — path conditions are positioned by *how
//!   many statements precede them*, not by the engine's global event
//!   counter.
//!
//! The description is hashed (two independent 64-bit FNV-1a lanes) under a
//! versioned schema tag, [`FINGERPRINT_SCHEMA`]; bumping the tag invalidates
//! every stored fingerprint at once when the description format changes.

use crate::location::StackTrace;
use crate::sym::SymValue;
use crate::trace::Trace;
use std::fmt::Write as _;
use weseer_smt::{Canonical, Ctx, TermId};

/// Versioned schema tag mixed into every fingerprint.
pub const FINGERPRINT_SCHEMA: &str = "weseer-fp-v1";

impl Trace {
    /// A stable content fingerprint of this trace: 32 lowercase hex
    /// characters, a pure function of the trace's analyzer-visible content
    /// (see the module docs for what that includes and excludes).
    ///
    /// `ctx` must be the term context the trace's symbolic terms live in.
    pub fn fingerprint(&self, ctx: &Ctx) -> String {
        let desc = self.describe(ctx);
        let h1 = fnv64(desc.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let h2 = fnv64(desc.as_bytes(), 0x6c62_272e_07bb_0142);
        format!("{h1:016x}{h2:016x}")
    }

    /// The canonical description string that gets hashed. Exposed to the
    /// crate's tests so failures show *what* differed, not just that the
    /// hashes did.
    pub(crate) fn describe(&self, ctx: &Ctx) -> String {
        // One shared canonicalization pass over every symbolic term, in a
        // deterministic trace order, so the alpha assignment reflects
        // which statements/conditions share symbols.
        let mut terms: Vec<TermId> = Vec::new();
        for s in &self.statements {
            terms.extend(s.params.iter().filter_map(|p| p.sym));
            for row in &s.rows {
                terms.extend(row.cols.iter().filter_map(|(_, v)| v.sym));
            }
        }
        terms.extend(self.path_conds.iter().map(|c| c.term));
        terms.extend(self.unique_ids.iter().map(|(_, t)| *t));
        let keys = Canonical::content_keys(ctx, &terms);
        let mut next_key = keys.into_iter();

        let mut out = String::new();
        let _ = writeln!(out, "{FINGERPRINT_SCHEMA}");
        let _ = writeln!(out, "api={}", self.api);
        for s in &self.statements {
            let _ = writeln!(
                out,
                "stmt index={} txn={} empty={} sql={}",
                s.index, s.txn, s.is_empty, s.stmt
            );
            let _ = writeln!(out, " trigger={}", stack_line(&s.trigger));
            let _ = writeln!(out, " sent={}", stack_line(&s.sent_at));
            for p in &s.params {
                let _ = writeln!(out, " param={}", sym_desc(p, &mut next_key));
            }
            for row in &s.rows {
                let _ = write!(out, " row");
                for (name, v) in &row.cols {
                    let _ = write!(out, " {name}={}", sym_desc(v, &mut next_key));
                }
                let _ = writeln!(out);
            }
        }
        for t in &self.txns {
            let _ = writeln!(
                out,
                "txn id={} stmts={:?} committed={}",
                t.id, t.stmt_indexes, t.committed
            );
        }
        for c in &self.path_conds {
            // Position = number of statements executed before the branch;
            // stable across engines with different global counters.
            let pos = self.statements.iter().filter(|s| s.seq < c.seq).count();
            let _ = writeln!(
                out,
                "cond pos={pos} lib={} stack={} key={}",
                c.in_library,
                stack_line(&c.stack),
                next_key.next().expect("one key per collected term")
            );
        }
        for (gen, _) in &self.unique_ids {
            let _ = writeln!(
                out,
                "uid gen={gen} key={}",
                next_key.next().expect("one key per collected term")
            );
        }
        debug_assert!(next_key.next().is_none(), "all keys must be consumed");
        out
    }
}

fn sym_desc(v: &SymValue, keys: &mut impl Iterator<Item = String>) -> String {
    let mut s = format!("{:?}", v.concrete);
    if v.sym.is_some() {
        let key = keys.next().expect("one key per collected term");
        let _ = write!(s, "#{key}");
    }
    s
}

fn stack_line(st: &StackTrace) -> String {
    let frames: Vec<String> = st.frames.iter().map(|f| f.to_string()).collect();
    frames.join(";")
}

fn fnv64(data: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineStats, PathCond};
    use crate::trace::{StmtRecord, TxnTrace};
    use weseer_smt::Sort;
    use weseer_sqlir::parser::parse;

    fn trace_with(ctx: &mut Ctx, prefix: &str) -> Trace {
        let x = ctx.var(format!("{prefix}.x"), Sort::Int);
        let zero = ctx.int(0);
        let cond = ctx.gt(x, zero);
        Trace {
            api: "Demo".into(),
            statements: vec![StmtRecord {
                index: 1,
                seq: 10,
                txn: 0,
                stmt: parse("SELECT * FROM T t WHERE t.A = ?").unwrap(),
                params: vec![SymValue::with_sym(3i64, x)],
                rows: vec![],
                is_empty: false,
                trigger: StackTrace::new(),
                sent_at: StackTrace::new(),
            }],
            txns: vec![TxnTrace {
                id: 0,
                stmt_indexes: vec![0],
                committed: true,
            }],
            path_conds: vec![PathCond {
                term: cond,
                seq: 15,
                stack: StackTrace::new(),
                in_library: false,
            }],
            unique_ids: vec![],
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn alpha_renaming_keeps_the_fingerprint() {
        let mut ctx = Ctx::new();
        let a = trace_with(&mut ctx, "run1");
        let b = trace_with(&mut ctx, "zz_run2");
        assert_eq!(a.fingerprint(&ctx), b.fingerprint(&ctx));
    }

    #[test]
    fn sql_template_changes_the_fingerprint() {
        let mut ctx = Ctx::new();
        let a = trace_with(&mut ctx, "p");
        let mut b = trace_with(&mut ctx, "p");
        b.statements[0].stmt = parse("SELECT * FROM T t WHERE t.B = ?").unwrap();
        assert_ne!(a.fingerprint(&ctx), b.fingerprint(&ctx));
    }

    #[test]
    fn txn_boundary_changes_the_fingerprint() {
        let mut ctx = Ctx::new();
        let a = trace_with(&mut ctx, "p");
        let mut b = trace_with(&mut ctx, "p");
        b.txns[0].committed = false;
        assert_ne!(a.fingerprint(&ctx), b.fingerprint(&ctx));
    }

    #[test]
    fn engine_seq_offsets_do_not_matter() {
        // Shifting every sequence number by a constant preserves the
        // statement/condition interleaving, hence the fingerprint.
        let mut ctx = Ctx::new();
        let a = trace_with(&mut ctx, "p");
        let mut b = trace_with(&mut ctx, "p");
        b.statements[0].seq += 1000;
        b.path_conds[0].seq += 1000;
        assert_eq!(a.fingerprint(&ctx), b.fingerprint(&ctx));
        // ...but moving the condition *before* the statement does not.
        let mut c = trace_with(&mut ctx, "p");
        c.path_conds[0].seq = 5;
        assert_ne!(a.fingerprint(&ctx), c.fingerprint(&ctx));
    }
}

//! Property tests for `Trace::fingerprint`: the incremental store keys
//! persisted verdicts by trace fingerprints, so the fingerprint must be
//! invariant under run-to-run noise (symbol renaming, engine sequence
//! offsets) and sensitive to every analyzer-visible content change (SQL
//! templates, path-condition formulas and positions, transaction
//! boundaries).

use proptest::prelude::*;
use weseer_concolic::{PathCond, StackTrace, StmtRecord, SymValue, Trace, TxnTrace};
use weseer_smt::{Ctx, Sort};
use weseer_sqlir::parser::parse;

const SQL_POOL: [&str; 3] = [
    "SELECT * FROM T t WHERE t.A = ?",
    "UPDATE T SET A = 1 WHERE ID = 1",
    "UPDATE T SET B = 2 WHERE ID = 2",
];

/// The content of one synthetic trace: per-statement SQL choice and
/// parameter value, path conditions as (position, bound) pairs, and the
/// transaction's commit flag.
#[derive(Debug, Clone)]
struct Spec {
    stmts: Vec<(usize, i64)>,
    conds: Vec<(usize, i64)>,
    committed: bool,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        proptest::collection::vec((0usize..SQL_POOL.len(), -5i64..5), 1..5),
        proptest::collection::vec((0usize..5, -5i64..5), 0..4),
        any::<bool>(),
    )
        .prop_map(|(stmts, conds, committed)| Spec {
            stmts,
            conds,
            committed,
        })
}

/// Materialize `spec` as a trace whose symbol names all start with
/// `prefix` — two builds of the same spec under different prefixes are
/// alpha-renamings of each other.
fn build(ctx: &mut Ctx, spec: &Spec, prefix: &str) -> Trace {
    let statements: Vec<StmtRecord> = spec
        .stmts
        .iter()
        .enumerate()
        .map(|(i, &(sql, val))| {
            let p = ctx.var(format!("{prefix}p{i}"), Sort::Int);
            StmtRecord {
                index: i + 1,
                seq: (i as u64 + 1) * 10,
                txn: 0,
                stmt: parse(SQL_POOL[sql]).unwrap(),
                params: vec![SymValue::with_sym(val, p)],
                rows: vec![],
                is_empty: false,
                trigger: StackTrace::new(),
                sent_at: StackTrace::new(),
            }
        })
        .collect();
    let path_conds = spec
        .conds
        .iter()
        .enumerate()
        .map(|(j, &(pos, bound))| {
            let v = ctx.var(format!("{prefix}c{j}"), Sort::Int);
            let b = ctx.int(bound);
            let term = ctx.gt(v, b);
            // seq between statement `pos` and `pos + 1` (statements sit
            // at 10, 20, ...), clamped past the last statement.
            let seq = (pos.min(spec.stmts.len()) as u64) * 10 + 5;
            PathCond {
                term,
                seq,
                stack: StackTrace::new(),
                in_library: false,
            }
        })
        .collect();
    Trace {
        api: "Prop".into(),
        statements,
        txns: vec![TxnTrace {
            id: 0,
            stmt_indexes: (0..spec.stmts.len()).collect(),
            committed: spec.committed,
        }],
        path_conds,
        unique_ids: vec![],
        stats: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alpha_renaming_never_changes_the_fingerprint(spec in spec_strategy()) {
        let mut ctx = Ctx::new();
        let a = build(&mut ctx, &spec, "run1.");
        let b = build(&mut ctx, &spec, "zz.other_run.");
        prop_assert_eq!(a.fingerprint(&ctx), b.fingerprint(&ctx));
    }

    #[test]
    fn content_changes_always_change_the_fingerprint(
        spec in spec_strategy(),
        which in 0usize..4,
    ) {
        let mut ctx = Ctx::new();
        let base = build(&mut ctx, &spec, "p.");
        let mut mutated = spec.clone();
        match which {
            // A different SQL template for the first statement.
            0 => mutated.stmts[0].0 = (mutated.stmts[0].0 + 1) % SQL_POOL.len(),
            // A different path-condition formula (falls back to the
            // commit flag when the spec has no conditions).
            1 if !mutated.conds.is_empty() => mutated.conds[0].1 += 100,
            // A condition moved across a statement boundary (needs a
            // position change that survives clamping).
            2 if !mutated.conds.is_empty() && mutated.conds[0].0.min(spec.stmts.len()) != 0 => {
                mutated.conds[0].0 = 0;
            }
            // The transaction boundary itself.
            _ => mutated.committed = !mutated.committed,
        }
        let other = build(&mut ctx, &mutated, "p.");
        prop_assert_ne!(base.fingerprint(&ctx), other.fingerprint(&ctx));
    }
}

//! Property tests for the Alg. 1 container modeling: `SymMap` must behave
//! exactly like an ordinary map at the concrete level, and its recorded
//! path conditions must always be satisfiable together (they describe one
//! real execution).

use proptest::prelude::*;
use std::collections::HashMap;
use weseer_concolic::containers::SymMap;
use weseer_concolic::{Engine, ExecMode};
use weseer_smt::{check_all, SolveResult, SolverConfig, Sort};
use weseer_sqlir::Value;

#[derive(Debug, Clone)]
enum MapOp {
    Get(i64),
    Put(i64, i32),
    Remove(i64),
}

fn op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0i64..4).prop_map(MapOp::Get),
        (0i64..4, any::<i32>()).prop_map(|(k, v)| MapOp::Put(k, v)),
        (0i64..4).prop_map(MapOp::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    // Op count stays ≤ 12: heavy hit/miss mixes over aliased symbolic keys
    // are hard for the learning-free DPLL(T) core (it degrades to Unknown
    // gracefully beyond that — see SolverConfig::sat_decision_budget).
    #[test]
    fn symmap_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let mut engine = Engine::new(ExecMode::Concolic);
        engine.start_concolic();
        let mut sym: SymMap<i32> = SymMap::new(&mut engine, "m", Sort::Int);
        let mut oracle: HashMap<i64, i32> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                MapOp::Get(k) => {
                    let key = engine.make_symbolic(format!("k{i}"), Value::Int(*k));
                    prop_assert_eq!(sym.get(&mut engine, &key), oracle.get(k).copied());
                }
                MapOp::Put(k, v) => {
                    let key = engine.make_symbolic(format!("k{i}"), Value::Int(*k));
                    prop_assert_eq!(
                        sym.put(&mut engine, key, *v),
                        oracle.insert(*k, *v)
                    );
                }
                MapOp::Remove(k) => {
                    let key = engine.make_symbolic(format!("k{i}"), Value::Int(*k));
                    prop_assert_eq!(sym.remove(&mut engine, &key), oracle.remove(k));
                }
            }
            prop_assert_eq!(sym.len(), oracle.len());
        }

        // The recorded path conditions describe this very execution, so
        // their conjunction must be satisfiable.
        let terms: Vec<_> = engine.path_conds().iter().map(|p| p.term).collect();
        if !terms.is_empty() {
            let mut ctx = std::mem::take(&mut engine.ctx);
            let r = check_all(&mut ctx, &terms, &SolverConfig::default());
            prop_assert!(
                matches!(r, SolveResult::Sat(_)),
                "path conditions of a real execution must be SAT, got {r:?}"
            );
        }
    }
}

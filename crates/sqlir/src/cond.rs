//! Query-condition utilities: catalog validation, three-valued evaluation,
//! and the Icond/Ncond split of paper Fig. 7.
//!
//! A predicate is *related to an index* when it constrains a column that the
//! index covers (Sec. V-C1). The index-usage analysis in `weseer-analyzer`
//! and the executor in `weseer-db` both build on these helpers.

use crate::ast::*;
use crate::error::SqlError;
use crate::schema::{Catalog, IndexDef};
use crate::value::Value;

/// Validate a statement against a catalog: every table exists, every alias
/// is introduced, every column exists on its alias's table. For `INSERT`
/// without a column list, fill in the table's full column list.
pub fn validate(stmt: &mut Statement, catalog: &Catalog) -> Result<(), SqlError> {
    let alias_map = stmt.alias_map();
    for (_, table) in &alias_map {
        catalog.require(table)?;
    }
    if let Statement::Insert(ins) = stmt {
        if ins.columns.is_empty() {
            let t = catalog.require(&ins.table)?;
            ins.columns = t.columns.iter().map(|c| c.name.clone()).collect();
        }
        if ins.columns.len() != ins.values.len() {
            return Err(SqlError::Schema(format!(
                "INSERT into {} has {} columns but {} values",
                ins.table,
                ins.columns.len(),
                ins.values.len()
            )));
        }
    }
    let lookup = |alias: &str| -> Option<&str> {
        alias_map
            .iter()
            .find(|(a, _)| a == alias)
            .map(|(_, t)| t.as_str())
    };
    let check = |op: &Operand| -> Result<(), SqlError> {
        if let Operand::Column { alias, column } = op {
            let table = lookup(alias).ok_or_else(|| SqlError::UnknownAlias(alias.clone()))?;
            let t = catalog.require(table)?;
            if t.column(column).is_none() {
                return Err(SqlError::UnknownColumn {
                    table: table.to_string(),
                    column: column.clone(),
                });
            }
        }
        Ok(())
    };
    if let Some(q) = stmt.query_condition() {
        for op in q.operands() {
            check(op)?;
        }
    }
    match stmt {
        Statement::Update(u) => {
            let t = catalog.require(&u.table)?;
            for a in &u.sets {
                if t.column(&a.column).is_none() {
                    return Err(SqlError::UnknownColumn {
                        table: u.table.clone(),
                        column: a.column.clone(),
                    });
                }
            }
        }
        Statement::Insert(i) => {
            let t = catalog.require(&i.table)?;
            for c in &i.columns {
                if t.column(c).is_none() {
                    return Err(SqlError::UnknownColumn {
                        table: i.table.clone(),
                        column: c.clone(),
                    });
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// Resolver giving concrete values for column references during evaluation.
pub trait RowResolver {
    /// The value bound to `alias.column`, or `None` when the alias is not
    /// bound in the current evaluation context.
    fn value(&self, alias: &str, column: &str) -> Option<Value>;
}

impl<F> RowResolver for F
where
    F: Fn(&str, &str) -> Option<Value>,
{
    fn value(&self, alias: &str, column: &str) -> Option<Value> {
        self(alias, column)
    }
}

/// Resolve an operand to a concrete value.
///
/// Returns `None` if a referenced column is unbound (the caller treats this
/// as "cannot evaluate yet", e.g. during join processing).
pub fn resolve_operand(op: &Operand, rows: &dyn RowResolver, params: &[Value]) -> Option<Value> {
    match op {
        Operand::Column { alias, column } => rows.value(alias, column),
        Operand::Param(i) => params.get(*i).cloned(),
        Operand::Const(v) => Some(v.clone()),
    }
}

/// SQL three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// NULL-involved comparison.
    Unknown,
}

impl Truth {
    /// Whether rows satisfying this truth value pass a WHERE filter
    /// (SQL keeps only TRUE).
    pub fn passes(self) -> bool {
        self == Truth::True
    }

    fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }
}

/// Evaluate a condition under SQL three-valued logic.
///
/// Returns `None` when a referenced column is unbound.
pub fn evaluate(cond: &Cond, rows: &dyn RowResolver, params: &[Value]) -> Option<Truth> {
    match cond {
        Cond::Term(Term::Cmp(p)) => {
            let l = resolve_operand(&p.lhs, rows, params)?;
            let r = resolve_operand(&p.rhs, rows, params)?;
            Some(match l.sql_cmp(&r) {
                None => Truth::Unknown,
                Some(ord) => {
                    if p.op.eval(ord) {
                        Truth::True
                    } else {
                        Truth::False
                    }
                }
            })
        }
        Cond::Term(Term::IsNull(o)) => {
            let v = resolve_operand(o, rows, params)?;
            Some(if v.is_null() {
                Truth::True
            } else {
                Truth::False
            })
        }
        Cond::Term(Term::NotNull(o)) => {
            let v = resolve_operand(o, rows, params)?;
            Some(if v.is_null() {
                Truth::False
            } else {
                Truth::True
            })
        }
        Cond::And(a, b) => Some(evaluate(a, rows, params)?.and(evaluate(b, rows, params)?)),
        Cond::Or(a, b) => Some(evaluate(a, rows, params)?.or(evaluate(b, rows, params)?)),
    }
}

/// The top-level predicates of `cond` that are *related to* `index` through
/// table alias `alias`: they compare an indexed column of that alias against
/// something (Fig. 7's `Icond` membership test).
pub fn index_related_predicates(cond: &Cond, index: &IndexDef, alias: &str) -> Vec<Pred> {
    cond.top_predicates()
        .into_iter()
        .filter_map(|p| {
            let o = p.oriented_for(alias);
            match &o.lhs {
                Operand::Column { alias: a, column } if a == alias => {
                    if index.columns.iter().any(|c| c == column) {
                        Some(o)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        })
        .collect()
}

/// Whether `preds` pin every column of a *unique* index with equality to a
/// value available at lookup time — i.e. the access is a point query
/// (Alg. 2 line 9).
pub fn is_point_query(preds: &[Pred], index: &IndexDef) -> bool {
    index.columns.iter().all(|col| {
        preds
            .iter()
            .any(|p| p.op == CmpOp::Eq && p.lhs.column_name() == Some(col))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::schema::{Catalog, ColType, TableBuilder};

    fn catalog() -> Catalog {
        Catalog::new(vec![
            TableBuilder::new("Product")
                .col("ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .build()
                .unwrap(),
            TableBuilder::new("OrderItem")
                .col("ID", ColType::Int)
                .col("O_ID", ColType::Int)
                .col("P_ID", ColType::Int)
                .col("QTY", ColType::Int)
                .primary_key(&["ID"])
                .foreign_key("O_ID", "Order", "ID")
                .foreign_key("P_ID", "Product", "ID")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn validate_accepts_good_statement() {
        let cat = catalog();
        let mut s = parse("SELECT * FROM OrderItem oi WHERE oi.O_ID = ?").unwrap();
        validate(&mut s, &cat).unwrap();
    }

    #[test]
    fn validate_rejects_bad_table_alias_column() {
        let cat = catalog();
        let mut s = parse("SELECT * FROM Nope n WHERE n.X = 1").unwrap();
        assert!(matches!(
            validate(&mut s, &cat),
            Err(SqlError::UnknownTable(_))
        ));

        let mut s = parse("SELECT * FROM Product p WHERE q.ID = 1").unwrap();
        assert!(matches!(
            validate(&mut s, &cat),
            Err(SqlError::UnknownAlias(_))
        ));

        let mut s = parse("SELECT * FROM Product p WHERE p.NOPE = 1").unwrap();
        assert!(matches!(
            validate(&mut s, &cat),
            Err(SqlError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn validate_fills_insert_columns() {
        let cat = catalog();
        let mut s = parse("INSERT INTO Product VALUES (?, ?)").unwrap();
        validate(&mut s, &cat).unwrap();
        match &s {
            Statement::Insert(i) => assert_eq!(i.columns, vec!["ID", "QTY"]),
            _ => panic!(),
        }
        let mut s = parse("INSERT INTO Product VALUES (?)").unwrap();
        assert!(validate(&mut s, &cat).is_err()); // arity mismatch
    }

    #[test]
    fn evaluate_three_valued() {
        let cond = parse("SELECT * FROM Product p WHERE p.QTY >= ?")
            .unwrap()
            .query_condition()
            .unwrap();
        let rows = |_: &str, col: &str| -> Option<Value> {
            match col {
                "QTY" => Some(Value::Int(5)),
                _ => None,
            }
        };
        assert_eq!(evaluate(&cond, &rows, &[Value::Int(3)]), Some(Truth::True));
        assert_eq!(evaluate(&cond, &rows, &[Value::Int(9)]), Some(Truth::False));
        assert_eq!(evaluate(&cond, &rows, &[Value::Null]), Some(Truth::Unknown));
        assert!(!Truth::Unknown.passes());
    }

    #[test]
    fn evaluate_unbound_column_is_none() {
        let cond = parse("SELECT * FROM Product p WHERE p.MISSING = 1")
            .unwrap()
            .query_condition()
            .unwrap();
        let rows = |_: &str, _: &str| -> Option<Value> { None };
        assert_eq!(evaluate(&cond, &rows, &[]), None);
    }

    #[test]
    fn truth_tables() {
        use Truth::*;
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
    }

    #[test]
    fn index_related_split() {
        let cat = catalog();
        let s = parse("SELECT * FROM OrderItem oi WHERE oi.O_ID = ? AND oi.QTY > 2").unwrap();
        let q = s.query_condition().unwrap();
        let t = cat.table("OrderItem").unwrap();
        let o_idx = t.index("idx_orderitem_o_id").unwrap();
        let rel = index_related_predicates(&q, o_idx, "oi");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].lhs, Operand::col("oi", "O_ID"));
        // QTY > 2 is Ncond for this index.
        let pri = t.primary_index();
        assert!(index_related_predicates(&q, pri, "oi").is_empty());
    }

    #[test]
    fn index_related_orients_flipped_predicates() {
        let cat = catalog();
        let s = parse("SELECT * FROM Product p WHERE ? = p.ID").unwrap();
        let q = s.query_condition().unwrap();
        let t = cat.table("Product").unwrap();
        let rel = index_related_predicates(&q, t.primary_index(), "p");
        assert_eq!(rel.len(), 1);
        assert!(rel[0].lhs.is_column_of("p"));
    }

    #[test]
    fn point_query_detection() {
        let cat = catalog();
        let t = cat.table("Product").unwrap();
        let pri = t.primary_index();
        let s = parse("SELECT * FROM Product p WHERE p.ID = ?").unwrap();
        let rel = index_related_predicates(&s.query_condition().unwrap(), pri, "p");
        assert!(is_point_query(&rel, pri));
        let s = parse("SELECT * FROM Product p WHERE p.ID > ?").unwrap();
        let rel = index_related_predicates(&s.query_condition().unwrap(), pri, "p");
        assert!(!is_point_query(&rel, pri));
    }
}

//! A hand-rolled parser for the supported SQL subset (paper Fig. 6/7).
//!
//! The parser is catalog-free: it resolves syntax only. Use
//! [`validate`](crate::cond::validate) to check a parsed statement against a
//! [`Catalog`](crate::schema::Catalog) and to complete `INSERT` statements
//! written without a column list.
//!
//! `?` placeholders are numbered left to right in textual order, matching
//! JDBC prepared-statement semantics.

use crate::ast::*;
use crate::error::SqlError;
use crate::value::Value;

/// Parse a single statement.
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_param: 0,
    };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Question,
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Op(CmpOp),
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Question => write!(f, "?"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Star => write!(f, "*"),
            Tok::Op(op) => write!(f, "{op}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<Tok>, SqlError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '?' => {
                out.push(Tok::Question);
                i += 1;
            }
            '=' => {
                out.push(Tok::Op(CmpOp::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Op(CmpOp::Ne));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::Lex {
                                pos: i,
                                found: '\'',
                            })
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // consume digit or '-'
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    if bytes[i] == '.' {
                        // A trailing dot followed by non-digit is a syntax
                        // error in this subset; treat as part of the float.
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| SqlError::Lex {
                        pos: start,
                        found: c,
                    })?;
                    out.push(Tok::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| SqlError::Lex {
                        pos: start,
                        found: c,
                    })?;
                    out.push(Tok::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(SqlError::Lex {
                    pos: i,
                    found: other,
                })
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
    next_param: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, expected: &str) -> SqlError {
        SqlError::Parse {
            pos: self.pos,
            expected: expected.to_string(),
            found: self.peek().to_string(),
        }
    }

    fn kw(&mut self, word: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), SqlError> {
        if self.kw(word) {
            Ok(())
        } else {
            Err(self.error(word))
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), SqlError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.error("identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.error("end of statement"))
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.kw("SELECT") {
            self.select().map(Statement::Select)
        } else if self.kw("UPDATE") {
            self.update().map(Statement::Update)
        } else if self.kw("INSERT") {
            self.insert().map(Statement::Insert)
        } else if self.kw("DELETE") {
            self.delete().map(Statement::Delete)
        } else {
            Err(self.error("SELECT, UPDATE, INSERT, or DELETE"))
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        // An alias is any identifier that is not a clause keyword.
        if let Tok::Ident(s) = self.peek() {
            let up = s.to_ascii_uppercase();
            if !matches!(
                up.as_str(),
                "JOIN" | "ON" | "WHERE" | "SET" | "VALUES" | "FOR" | "AND" | "OR"
            ) {
                let alias = self.ident()?;
                return Ok(TableRef { table, alias });
            }
        }
        Ok(TableRef {
            alias: table.clone(),
            table,
        })
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect(&Tok::Star, "*")?;
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.kw("JOIN") {
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.cond(None)?;
            joins.push(Join { table, on });
        }
        let where_clause = if self.kw("WHERE") {
            Some(self.cond(None)?)
        } else {
            None
        };
        let for_update = if self.kw("FOR") {
            self.expect_kw("UPDATE")?;
            true
        } else {
            false
        };
        Ok(Select {
            from,
            joins,
            where_clause,
            for_update,
        })
    }

    fn update(&mut self) -> Result<Update, SqlError> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = vec![self.assignment(&table)?];
        while matches!(self.peek(), Tok::Comma) {
            self.bump();
            sets.push(self.assignment(&table)?);
        }
        let where_clause = if self.kw("WHERE") {
            Some(self.cond(Some(&table.clone()))?)
        } else {
            None
        };
        Ok(Update {
            table,
            sets,
            where_clause,
        })
    }

    fn assignment(&mut self, default_alias: &str) -> Result<Assignment, SqlError> {
        let column = self.ident()?;
        match self.peek() {
            Tok::Op(CmpOp::Eq) => {
                self.bump();
            }
            _ => return Err(self.error("=")),
        }
        let value = self.operand(Some(default_alias))?;
        Ok(Assignment { column, value })
    }

    fn insert(&mut self) -> Result<Insert, SqlError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            columns.push(self.ident()?);
            while matches!(self.peek(), Tok::Comma) {
                self.bump();
                columns.push(self.ident()?);
            }
            self.expect(&Tok::RParen, ")")?;
        }
        self.expect_kw("VALUES")?;
        self.expect(&Tok::LParen, "(")?;
        let mut values = vec![self.operand(Some(&table))?];
        while matches!(self.peek(), Tok::Comma) {
            self.bump();
            values.push(self.operand(Some(&table))?);
        }
        self.expect(&Tok::RParen, ")")?;
        let mut on_duplicate = Vec::new();
        if self.kw("ON") {
            self.expect_kw("DUPLICATE")?;
            self.expect_kw("KEY")?;
            self.expect_kw("UPDATE")?;
            on_duplicate.push(self.assignment(&table)?);
            while matches!(self.peek(), Tok::Comma) {
                self.bump();
                on_duplicate.push(self.assignment(&table)?);
            }
        }
        Ok(Insert {
            table,
            columns,
            values,
            on_duplicate,
        })
    }

    fn delete(&mut self) -> Result<Delete, SqlError> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.kw("WHERE") {
            Some(self.cond(Some(&table.clone()))?)
        } else {
            None
        };
        Ok(Delete {
            table,
            where_clause,
        })
    }

    /// `cond := and_expr (OR and_expr)*`
    fn cond(&mut self, default_alias: Option<&str>) -> Result<Cond, SqlError> {
        let mut left = self.and_expr(default_alias)?;
        while self.kw("OR") {
            let right = self.and_expr(default_alias)?;
            left = left.or(right);
        }
        Ok(left)
    }

    /// `and_expr := primary (AND primary)*`
    fn and_expr(&mut self, default_alias: Option<&str>) -> Result<Cond, SqlError> {
        let mut left = self.primary(default_alias)?;
        while self.kw("AND") {
            let right = self.primary(default_alias)?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn primary(&mut self, default_alias: Option<&str>) -> Result<Cond, SqlError> {
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            let c = self.cond(default_alias)?;
            self.expect(&Tok::RParen, ")")?;
            return Ok(c);
        }
        let lhs = self.operand(default_alias)?;
        if self.kw("IS") {
            if self.kw("NOT") {
                self.expect_kw("NULL")?;
                return Ok(Cond::Term(Term::NotNull(lhs)));
            }
            self.expect_kw("NULL")?;
            return Ok(Cond::Term(Term::IsNull(lhs)));
        }
        let op = match self.peek() {
            Tok::Op(op) => *op,
            _ => return Err(self.error("comparison operator")),
        };
        self.bump();
        let rhs = self.operand(default_alias)?;
        Ok(Cond::cmp(lhs, op, rhs))
    }

    fn operand(&mut self, default_alias: Option<&str>) -> Result<Operand, SqlError> {
        match self.peek().clone() {
            Tok::Question => {
                self.bump();
                let idx = self.next_param;
                self.next_param += 1;
                Ok(Operand::Param(idx))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Operand::Const(Value::Int(i)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Operand::Const(Value::Float(x)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Operand::Const(Value::Str(s)))
            }
            Tok::Ident(first) => {
                if first.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Operand::Const(Value::Null));
                }
                if first.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Operand::Const(Value::Bool(true)));
                }
                if first.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Operand::Const(Value::Bool(false)));
                }
                self.bump();
                if matches!(self.peek(), Tok::Dot) {
                    self.bump();
                    let column = self.ident()?;
                    Ok(Operand::Column {
                        alias: first,
                        column,
                    })
                } else if let Some(alias) = default_alias {
                    Ok(Operand::Column {
                        alias: alias.to_string(),
                        column: first,
                    })
                } else {
                    Err(self.error("alias.column (bare column needs a default table)"))
                }
            }
            _ => Err(self.error("operand")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_q4() {
        let s = parse(
            "SELECT * FROM OrderItem oi \
             JOIN Order o ON o.ID = oi.O_ID \
             JOIN Product p ON p.ID = oi.P_ID \
             WHERE oi.O_ID = ?",
        )
        .unwrap();
        match &s {
            Statement::Select(sel) => {
                assert_eq!(sel.from.alias, "oi");
                assert_eq!(sel.joins.len(), 2);
                assert!(sel.where_clause.is_some());
            }
            _ => panic!("expected select"),
        }
        assert_eq!(s.param_count(), 1);
    }

    #[test]
    fn parses_fig1_q6() {
        let s = parse("UPDATE Product SET QTY = ? WHERE ID = ?").unwrap();
        match &s {
            Statement::Update(u) => {
                assert_eq!(u.table, "Product");
                assert_eq!(u.sets.len(), 1);
                assert_eq!(u.sets[0].value, Operand::Param(0));
                let w = u.where_clause.as_ref().unwrap();
                let p = &w.top_predicates()[0];
                assert_eq!(p.lhs, Operand::col("Product", "ID"));
                assert_eq!(p.rhs, Operand::Param(1));
            }
            _ => panic!("expected update"),
        }
    }

    #[test]
    fn parses_insert_with_and_without_columns() {
        let s = parse("INSERT INTO Product (ID, QTY) VALUES (?, ?)").unwrap();
        match &s {
            Statement::Insert(i) => {
                assert_eq!(i.columns, vec!["ID", "QTY"]);
                assert_eq!(i.values.len(), 2);
            }
            _ => panic!(),
        }
        let s = parse("INSERT INTO Product VALUES (?, 5)").unwrap();
        match &s {
            Statement::Insert(i) => {
                assert!(i.columns.is_empty());
                assert_eq!(i.values[1], Operand::Const(Value::Int(5)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_upsert() {
        let s = parse("INSERT INTO Cart (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?")
            .unwrap();
        match &s {
            Statement::Insert(i) => {
                assert_eq!(i.on_duplicate.len(), 1);
                assert_eq!(i.on_duplicate[0].value, Operand::Param(2));
            }
            _ => panic!(),
        }
        assert_eq!(s.param_count(), 3);
    }

    #[test]
    fn parses_delete_and_for_update() {
        let s = parse("DELETE FROM Address WHERE C_ID = ? AND CITY != 'NYC'").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
        let s = parse("SELECT * FROM Product p WHERE p.ID = ? FOR UPDATE").unwrap();
        assert!(s.is_write());
    }

    #[test]
    fn parses_or_and_precedence() {
        let s = parse("SELECT * FROM T t WHERE t.A = 1 AND (t.B = 2 OR t.C = 3)").unwrap();
        let q = s.query_condition().unwrap();
        let conj = q.conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(matches!(conj[1], Cond::Or(..)));
        // Without parens: OR binds loosest.
        let s = parse("SELECT * FROM T t WHERE t.A = 1 AND t.B = 2 OR t.C = 3").unwrap();
        let q = s.query_condition().unwrap();
        assert!(matches!(q, Cond::Or(..)));
    }

    #[test]
    fn parses_is_null_forms() {
        let s = parse("SELECT * FROM T t WHERE t.A IS NULL AND t.B IS NOT NULL").unwrap();
        let q = s.query_condition().unwrap();
        let c = q.conjuncts();
        assert!(matches!(c[0], Cond::Term(Term::IsNull(_))));
        assert!(matches!(c[1], Cond::Term(Term::NotNull(_))));
    }

    #[test]
    fn parses_literals() {
        let s =
            parse("SELECT * FROM T t WHERE t.A = -3 AND t.B = 2.5 AND t.C = 'o''k' AND t.D = TRUE")
                .unwrap();
        let preds = s.query_condition().unwrap().top_predicates().len();
        assert_eq!(preds, 4);
    }

    #[test]
    fn param_numbering_is_textual() {
        let s = parse("UPDATE T SET A = ?, B = ? WHERE C = ?").unwrap();
        match &s {
            Statement::Update(u) => {
                assert_eq!(u.sets[0].value, Operand::Param(0));
                assert_eq!(u.sets[1].value, Operand::Param(1));
            }
            _ => panic!(),
        }
        assert_eq!(s.param_count(), 3);
    }

    #[test]
    fn lex_errors_and_parse_errors() {
        assert!(parse("SELECT * FROM T t WHERE t.A = #").is_err());
        assert!(parse("SELECT FROM T").is_err());
        assert!(parse("UPDATE T WHERE A = 1").is_err());
        assert!(parse("SELECT * FROM T t WHERE A = 1").is_err()); // bare column in SELECT
        assert!(parse("INSERT INTO T VALUES (1, 2").is_err());
        assert!(parse("SELECT * FROM T t WHERE t.A = 'unterminated").is_err());
        assert!(parse("").is_err());
        assert!(parse("SELECT * FROM T t extra garbage = 1").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let samples = [
            "SELECT * FROM OrderItem oi JOIN Order o ON o.ID = oi.O_ID WHERE oi.O_ID = ?",
            "UPDATE Product SET QTY = ? WHERE Product.ID = ?",
            "INSERT INTO Product (ID, QTY) VALUES (?, ?)",
            "DELETE FROM Address WHERE Address.C_ID = ?",
            "SELECT * FROM T t WHERE t.A = 1 AND (t.B = 2 OR t.C >= ?)",
        ];
        for sql in samples {
            let s1 = parse(sql).unwrap();
            let printed = s1.to_string();
            let s2 = parse(&printed).unwrap();
            assert_eq!(s1, s2, "round-trip failed for {sql}: printed as {printed}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;
        use proptest::strategy::ValueTree;

        fn ident() -> impl Strategy<Value = String> {
            "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(|s| s)
        }

        fn value() -> impl Strategy<Value = Value> {
            prop_oneof![
                any::<i32>().prop_map(|i| Value::Int(i as i64)),
                (-1000i32..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
                "[a-z ']{0,8}".prop_map(Value::Str),
                any::<bool>().prop_map(Value::Bool),
            ]
        }

        prop_compose! {
            fn pred(alias: String)(col in ident(), v in value(), op_i in 0usize..6) -> Cond {
                let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
                Cond::cmp(Operand::col(alias.clone(), col), ops[op_i], Operand::Const(v))
            }
        }

        proptest! {
            #[test]
            fn print_parse_roundtrip_select(
                table in ident(),
                alias in ident(),
                n_preds in 1usize..4,
                seed in any::<u64>(),
            ) {
                // Avoid aliases that collide with clause keywords.
                prop_assume!(!["JOIN","ON","WHERE","SET","VALUES","FOR","AND","OR",
                               "IS","NULL","NOT","TRUE","FALSE","FROM","SELECT"]
                    .iter().any(|k| alias.eq_ignore_ascii_case(k) || table.eq_ignore_ascii_case(k)));
                let mut runner = proptest::test_runner::TestRunner::deterministic();
                let mut conds = Vec::new();
                for i in 0..n_preds {
                    let tree = pred(alias.clone())
                        .new_tree(&mut runner).unwrap().current();
                    let _ = seed.wrapping_add(i as u64);
                    conds.push(tree);
                }
                let stmt = Statement::Select(Select {
                    from: TableRef::aliased(table, alias),
                    joins: vec![],
                    where_clause: Cond::conjoin(conds),
                    for_update: false,
                });
                let printed = stmt.to_string();
                let reparsed = parse(&printed).unwrap();
                prop_assert_eq!(stmt, reparsed);
            }
        }
    }
}

//! Error types for the SQL IR layer.

use std::fmt;

/// Errors raised while parsing or validating SQL in the supported subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The tokenizer met a character it cannot start a token with.
    Lex { pos: usize, found: char },
    /// The parser expected one construct and found another.
    Parse {
        pos: usize,
        expected: String,
        found: String,
    },
    /// A statement references a table absent from the catalog.
    UnknownTable(String),
    /// A statement references a column absent from its table.
    UnknownColumn { table: String, column: String },
    /// A table alias is used but never introduced by FROM/JOIN.
    UnknownAlias(String),
    /// Schema construction error (duplicate table/column/index, missing PK).
    Schema(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, found } => {
                write!(f, "lex error at byte {pos}: unexpected character {found:?}")
            }
            SqlError::Parse {
                pos,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parse error at token {pos}: expected {expected}, found {found}"
                )
            }
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            SqlError::UnknownAlias(a) => write!(f, "unknown table alias {a:?}"),
            SqlError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

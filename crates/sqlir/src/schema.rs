//! Database schema model: tables, columns, and indexes.
//!
//! WeSEER's fine-grained lock modeling (paper Sec. V-C) reasons about which
//! *database indexes* a statement can traverse, so the catalog records primary
//! and secondary indexes explicitly. The storage engine (`weseer-db`) builds
//! its physical B-trees from the same definitions, keeping the analyzer's
//! model and the executable substrate in sync.

use crate::error::SqlError;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Column data types in the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// Double-precision float (models `DECIMAL`).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl ColType {
    /// Whether `v` inhabits this column type (NULL inhabits every type).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColType::Int, Value::Int(_))
                | (ColType::Float, Value::Float(_))
                | (ColType::Float, Value::Int(_))
                | (ColType::Str, Value::Str(_))
                | (ColType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColType::Int => "INT",
            ColType::Float => "FLOAT",
            ColType::Str => "VARCHAR",
            ColType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive in this IR).
    pub name: String,
    /// Data type.
    pub ty: ColType,
    /// Whether the column may hold NULL.
    pub nullable: bool,
}

/// Whether an index is the clustered primary index or a secondary index.
///
/// Matches the paper's `index(table, type, columns)` terminology where
/// `type` is `pri` or `sec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Clustered primary index; always unique.
    Primary,
    /// Secondary index over the primary index.
    Secondary,
}

/// An index definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within its table.
    pub name: String,
    /// Owning table.
    pub table: String,
    /// Primary or secondary.
    pub kind: IndexKind,
    /// Whether the key is unique.
    pub unique: bool,
    /// Indexed column names, in key order.
    pub columns: Vec<String>,
}

impl IndexDef {
    /// Whether this is the primary index.
    pub fn is_primary(&self) -> bool {
        self.kind == IndexKind::Primary
    }

    /// Whether this is a secondary index.
    pub fn is_secondary(&self) -> bool {
        self.kind == IndexKind::Secondary
    }
}

/// A foreign-key edge; used by the simulated applications' schemas and the
/// ORM relation mapping (not enforced by the storage engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in the owning table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (its primary key in practice).
    pub ref_column: String,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
    /// All indexes, primary first.
    pub indexes: Vec<IndexDef>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// Position of `column` in the row layout.
    pub fn col_pos(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The primary index (always present after catalog validation).
    pub fn primary_index(&self) -> &IndexDef {
        self.indexes
            .iter()
            .find(|i| i.is_primary())
            .expect("validated table has a primary index")
    }

    /// All secondary indexes.
    pub fn secondary_indexes(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes.iter().filter(|i| i.is_secondary())
    }

    /// The index with the given name.
    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// Indexes whose *leading* column set is covered by `columns`
    /// (a B-tree index is usable when a prefix of its key is constrained).
    pub fn indexes_usable_with(&self, columns: &[&str]) -> Vec<&IndexDef> {
        self.indexes
            .iter()
            .filter(|idx| {
                idx.columns
                    .first()
                    .is_some_and(|lead| columns.contains(&lead.as_str()))
            })
            .collect()
    }
}

/// Builder for a [`TableDef`].
#[derive(Debug)]
pub struct TableBuilder {
    def: TableDef,
}

impl TableBuilder {
    /// Start building a table named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            def: TableDef {
                name: name.into(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                indexes: Vec::new(),
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Add a NOT NULL column.
    pub fn col(mut self, name: impl Into<String>, ty: ColType) -> Self {
        self.def.columns.push(ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    pub fn col_nullable(mut self, name: impl Into<String>, ty: ColType) -> Self {
        self.def.columns.push(ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        });
        self
    }

    /// Declare the primary key.
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.def.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Add a (non-unique) secondary index.
    pub fn index(mut self, name: impl Into<String>, cols: &[&str]) -> Self {
        self.push_index(name.into(), cols, false);
        self
    }

    /// Add a unique secondary index.
    pub fn unique_index(mut self, name: impl Into<String>, cols: &[&str]) -> Self {
        self.push_index(name.into(), cols, true);
        self
    }

    /// Add a foreign key plus the customary secondary index on the
    /// referencing column (mirroring Hibernate's DDL generation).
    pub fn foreign_key(
        mut self,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        let column = column.into();
        let idx_name = format!(
            "idx_{}_{}",
            self.def.name.to_lowercase(),
            column.to_lowercase()
        );
        self.push_index(idx_name, &[column.as_str()], false);
        self.def.foreign_keys.push(ForeignKey {
            column,
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        self
    }

    fn push_index(&mut self, name: String, cols: &[&str], unique: bool) {
        self.def.indexes.push(IndexDef {
            name,
            table: self.def.name.clone(),
            kind: IndexKind::Secondary,
            unique,
            columns: cols.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Validate and finish the table definition.
    pub fn build(mut self) -> Result<TableDef, SqlError> {
        let t = &mut self.def;
        if t.primary_key.is_empty() {
            return Err(SqlError::Schema(format!(
                "table {} has no primary key",
                t.name
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &t.columns {
            if !seen.insert(c.name.clone()) {
                return Err(SqlError::Schema(format!(
                    "duplicate column {} in table {}",
                    c.name, t.name
                )));
            }
        }
        for pk in &t.primary_key {
            if t.col_pos(pk).is_none() {
                return Err(SqlError::Schema(format!(
                    "primary key column {pk} missing from table {}",
                    t.name
                )));
            }
        }
        for idx in &t.indexes {
            for c in &idx.columns {
                if t.col_pos(c).is_none() {
                    return Err(SqlError::Schema(format!(
                        "index {} references missing column {c}",
                        idx.name
                    )));
                }
            }
        }
        // The clustered primary index goes first.
        let primary = IndexDef {
            name: "PRIMARY".to_string(),
            table: t.name.clone(),
            kind: IndexKind::Primary,
            unique: true,
            columns: t.primary_key.clone(),
        };
        t.indexes.insert(0, primary);
        Ok(self.def)
    }
}

/// A set of table definitions.
///
/// Cheap to clone (`Arc` inside) so every layer can hold the catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<BTreeMap<String, Arc<TableDef>>>,
}

impl Catalog {
    /// Build a catalog from finished table definitions.
    pub fn new(tables: Vec<TableDef>) -> Result<Self, SqlError> {
        let mut map = BTreeMap::new();
        for t in tables {
            if map.insert(t.name.clone(), Arc::new(t)).is_some() {
                return Err(SqlError::Schema("duplicate table".to_string()));
            }
        }
        Ok(Catalog {
            tables: Arc::new(map),
        })
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Arc<TableDef>> {
        self.tables.get(name)
    }

    /// Look up a table or error.
    pub fn require(&self, name: &str) -> Result<&Arc<TableDef>, SqlError> {
        self.table(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Iterate all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableDef>> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_item() -> TableDef {
        TableBuilder::new("OrderItem")
            .col("ID", ColType::Int)
            .col("O_ID", ColType::Int)
            .col("P_ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .foreign_key("O_ID", "Order", "ID")
            .foreign_key("P_ID", "Product", "ID")
            .build()
            .unwrap()
    }

    #[test]
    fn primary_index_synthesized_first() {
        let t = order_item();
        assert_eq!(t.indexes[0].name, "PRIMARY");
        assert!(t.indexes[0].unique);
        assert_eq!(t.primary_index().columns, vec!["ID"]);
        assert_eq!(t.secondary_indexes().count(), 2);
    }

    #[test]
    fn foreign_key_gets_secondary_index() {
        let t = order_item();
        let idx = t.index("idx_orderitem_o_id").unwrap();
        assert_eq!(idx.columns, vec!["O_ID"]);
        assert!(idx.is_secondary());
        assert!(!idx.unique);
    }

    #[test]
    fn usable_indexes_by_leading_column() {
        let t = order_item();
        let usable = t.indexes_usable_with(&["O_ID"]);
        assert_eq!(usable.len(), 1);
        assert_eq!(usable[0].name, "idx_orderitem_o_id");
        let usable = t.indexes_usable_with(&["ID", "P_ID"]);
        assert_eq!(usable.len(), 2); // PRIMARY + idx_orderitem_p_id
    }

    #[test]
    fn missing_pk_rejected() {
        let err = TableBuilder::new("T")
            .col("A", ColType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableBuilder::new("T")
            .col("A", ColType::Int)
            .col("A", ColType::Int)
            .primary_key(&["A"])
            .build()
            .unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
    }

    #[test]
    fn pk_column_must_exist() {
        let err = TableBuilder::new("T")
            .col("A", ColType::Int)
            .primary_key(&["B"])
            .build()
            .unwrap_err();
        assert!(matches!(err, SqlError::Schema(_)));
    }

    #[test]
    fn catalog_lookup() {
        let cat = Catalog::new(vec![order_item()]).unwrap();
        assert!(cat.table("OrderItem").is_some());
        assert!(cat.table("Nope").is_none());
        assert!(cat.require("Nope").is_err());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn coltype_admits() {
        assert!(ColType::Int.admits(&Value::Int(1)));
        assert!(ColType::Float.admits(&Value::Int(1)));
        assert!(ColType::Int.admits(&Value::Null));
        assert!(!ColType::Int.admits(&Value::str("x")));
    }
}

//! The statement AST for the SQL subset WeSEER supports (paper Fig. 6):
//!
//! ```text
//! SELECT ... FROM tab alias [JOIN tab alias ON ...]* WHERE ...
//! UPDATE tab SET col = ... [, col = ...]* WHERE ...
//! INSERT INTO tab VALUES (param, ..., param)
//! DELETE FROM tab WHERE ...
//! ```
//!
//! Query conditions follow Fig. 7: conjunctions/disjunctions over comparison
//! terms whose operands are table columns (`alias.col`), SQL parameters
//! (`?`), or literals.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators (`NumOp`/`StrOp` in Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`a < b` ⇔ ¬(`a >= b`)).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluate against a comparison result.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A scalar operand in a condition or assignment (Fig. 7's `var`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// `alias.column` — a table column reference.
    Column {
        /// Table alias introduced in FROM/JOIN (or the table name itself
        /// for UPDATE/DELETE without aliases).
        alias: String,
        /// Column name.
        column: String,
    },
    /// `?` — the n-th SQL parameter of the statement (0-based).
    Param(usize),
    /// A literal constant.
    Const(Value),
}

impl Operand {
    /// Shorthand column constructor.
    pub fn col(alias: impl Into<String>, column: impl Into<String>) -> Self {
        Operand::Column {
            alias: alias.into(),
            column: column.into(),
        }
    }

    /// Whether this operand is a column of the given alias.
    pub fn is_column_of(&self, a: &str) -> bool {
        matches!(self, Operand::Column { alias, .. } if alias == a)
    }

    /// The column name if this operand references a column.
    pub fn column_name(&self) -> Option<&str> {
        match self {
            Operand::Column { column, .. } => Some(column),
            _ => None,
        }
    }
}

/// A binary comparison predicate (`Exp` in Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pred {
    /// Left operand.
    pub lhs: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Pred {
    /// Construct a predicate.
    pub fn new(lhs: Operand, op: CmpOp, rhs: Operand) -> Self {
        Pred { lhs, op, rhs }
    }

    /// Equality shorthand.
    pub fn eq(lhs: Operand, rhs: Operand) -> Self {
        Pred::new(lhs, CmpOp::Eq, rhs)
    }

    /// The predicate normalized so that if exactly one side is a column of
    /// `alias`, it appears on the left.
    pub fn oriented_for(&self, alias: &str) -> Pred {
        if !self.lhs.is_column_of(alias) && self.rhs.is_column_of(alias) {
            Pred {
                lhs: self.rhs.clone(),
                op: self.op.flip(),
                rhs: self.lhs.clone(),
            }
        } else {
            self.clone()
        }
    }
}

/// A leaf term of a query condition (Fig. 7's `Term`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Binary comparison.
    Cmp(Pred),
    /// `id IS NULL`.
    IsNull(Operand),
    /// `id IS NOT NULL`.
    NotNull(Operand),
}

/// A query condition: the boolean combination grammar of Fig. 7.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// A leaf term.
    Term(Term),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
}

impl Cond {
    /// Leaf comparison shorthand.
    pub fn cmp(lhs: Operand, op: CmpOp, rhs: Operand) -> Cond {
        Cond::Term(Term::Cmp(Pred::new(lhs, op, rhs)))
    }

    /// Equality shorthand.
    pub fn eq(lhs: Operand, rhs: Operand) -> Cond {
        Cond::cmp(lhs, CmpOp::Eq, rhs)
    }

    /// `self AND other`.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Box::new(self), Box::new(other))
    }

    /// Conjoin an iterator of conditions; `None` when empty.
    pub fn conjoin(conds: impl IntoIterator<Item = Cond>) -> Option<Cond> {
        conds.into_iter().reduce(Cond::and)
    }

    /// Disjoin an iterator of conditions; `None` when empty.
    pub fn disjoin(conds: impl IntoIterator<Item = Cond>) -> Option<Cond> {
        conds.into_iter().reduce(Cond::or)
    }

    /// Split the top-level conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Cond> {
        let mut out = Vec::new();
        fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Cond>) {
            match c {
                Cond::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// The top-level conjuncts that are plain comparison predicates.
    /// These are the "predicates" the index-usage analysis consumes
    /// (disjunctive conjuncts belong to `Ncond` and never drive an index).
    pub fn top_predicates(&self) -> Vec<&Pred> {
        self.conjuncts()
            .into_iter()
            .filter_map(|c| match c {
                Cond::Term(Term::Cmp(p)) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Every operand mentioned anywhere in the condition.
    pub fn operands(&self) -> Vec<&Operand> {
        let mut out = Vec::new();
        self.visit_terms(&mut |t| match t {
            Term::Cmp(p) => {
                out.push(&p.lhs);
                out.push(&p.rhs);
            }
            Term::IsNull(o) | Term::NotNull(o) => out.push(o),
        });
        out
    }

    /// Visit every leaf term.
    pub fn visit_terms<'a>(&'a self, f: &mut impl FnMut(&'a Term)) {
        match self {
            Cond::Term(t) => f(t),
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.visit_terms(f);
                b.visit_terms(f);
            }
        }
    }

    /// Rewrite every operand with `f`, rebuilding the condition.
    pub fn map_operands(&self, f: &mut impl FnMut(&Operand) -> Operand) -> Cond {
        match self {
            Cond::Term(Term::Cmp(p)) => Cond::Term(Term::Cmp(Pred {
                lhs: f(&p.lhs),
                op: p.op,
                rhs: f(&p.rhs),
            })),
            Cond::Term(Term::IsNull(o)) => Cond::Term(Term::IsNull(f(o))),
            Cond::Term(Term::NotNull(o)) => Cond::Term(Term::NotNull(f(o))),
            Cond::And(a, b) => Cond::And(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Cond::Or(a, b) => Cond::Or(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
        }
    }

    /// The distinct aliases referenced by column operands.
    pub fn aliases(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for op in self.operands() {
            if let Operand::Column { alias, .. } = op {
                if !out.contains(alias) {
                    out.push(alias.clone());
                }
            }
        }
        out
    }
}

/// A table reference with alias (`tab alias` in Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias; equals `table` when none was written.
    pub alias: String,
}

impl TableRef {
    /// A reference with an explicit alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: alias.into(),
        }
    }

    /// A reference whose alias is the table name.
    pub fn bare(table: impl Into<String>) -> Self {
        let table = table.into();
        TableRef {
            alias: table.clone(),
            table,
        }
    }
}

/// A JOIN arm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// ON condition.
    pub on: Cond,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Select {
    /// FROM table.
    pub from: TableRef,
    /// JOIN arms, in order.
    pub joins: Vec<Join>,
    /// WHERE condition.
    pub where_clause: Option<Cond>,
    /// Whether the statement locks rows exclusively (`FOR UPDATE`).
    pub for_update: bool,
}

/// A `SET col = value` assignment in UPDATE.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// Assigned column.
    pub column: String,
    /// New value (parameter or literal).
    pub value: Operand,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Update {
    /// Target table (alias = table name; Fig. 6 has no UPDATE aliases).
    pub table: String,
    /// SET assignments.
    pub sets: Vec<Assignment>,
    /// WHERE condition.
    pub where_clause: Option<Cond>,
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Inserted columns, in VALUES order (all columns when written as
    /// `INSERT INTO tab VALUES (...)`).
    pub columns: Vec<String>,
    /// Inserted values.
    pub values: Vec<Operand>,
    /// MySQL `INSERT ... ON DUPLICATE KEY UPDATE` assignments, if any.
    /// Used by fix f2 (UPSERT) in the paper's Table II.
    pub on_duplicate: Vec<Assignment>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE condition.
    pub where_clause: Option<Cond>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Statement {
    /// SELECT.
    Select(Select),
    /// UPDATE.
    Update(Update),
    /// INSERT.
    Insert(Insert),
    /// DELETE.
    Delete(Delete),
}

impl Statement {
    /// Whether the statement acquires exclusive locks
    /// (writes, or `SELECT ... FOR UPDATE`).
    pub fn is_write(&self) -> bool {
        match self {
            Statement::Select(s) => s.for_update,
            _ => true,
        }
    }

    /// All `(alias, table)` pairs the statement introduces.
    pub fn alias_map(&self) -> Vec<(String, String)> {
        match self {
            Statement::Select(s) => {
                let mut v = vec![(s.from.alias.clone(), s.from.table.clone())];
                v.extend(
                    s.joins
                        .iter()
                        .map(|j| (j.table.alias.clone(), j.table.table.clone())),
                );
                v
            }
            Statement::Update(u) => vec![(u.table.clone(), u.table.clone())],
            Statement::Insert(i) => vec![(i.table.clone(), i.table.clone())],
            Statement::Delete(d) => vec![(d.table.clone(), d.table.clone())],
        }
    }

    /// The distinct table names the statement touches.
    pub fn tables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (_, t) in self.alias_map() {
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Aliases bound to the given table within this statement.
    pub fn aliases_of(&self, table: &str) -> Vec<String> {
        self.alias_map()
            .into_iter()
            .filter(|(_, t)| t == table)
            .map(|(a, _)| a)
            .collect()
    }

    /// The table this statement writes, if it is a write.
    pub fn written_table(&self) -> Option<&str> {
        match self {
            Statement::Select(s) if s.for_update => Some(&s.from.table),
            Statement::Select(_) => None,
            Statement::Update(u) => Some(&u.table),
            Statement::Insert(i) => Some(&i.table),
            Statement::Delete(d) => Some(&d.table),
        }
    }

    /// The full query condition: conjunction of all JOIN ON conditions and
    /// the WHERE clause (paper Sec. V-C1). For INSERT this is the equality
    /// of inserted columns and values (the paper treats INSERT query
    /// conditions as equations on the inserted row's columns).
    pub fn query_condition(&self) -> Option<Cond> {
        match self {
            Statement::Select(s) => {
                let mut conds: Vec<Cond> = s.joins.iter().map(|j| j.on.clone()).collect();
                if let Some(w) = &s.where_clause {
                    conds.push(w.clone());
                }
                Cond::conjoin(conds)
            }
            Statement::Update(u) => u.where_clause.clone(),
            Statement::Delete(d) => d.where_clause.clone(),
            Statement::Insert(i) => Cond::conjoin(
                i.columns
                    .iter()
                    .zip(&i.values)
                    .map(|(c, v)| Cond::eq(Operand::col(&i.table, c), v.clone())),
            ),
        }
    }

    /// Number of `?` parameters (max index + 1).
    pub fn param_count(&self) -> usize {
        let mut max: Option<usize> = None;
        let mut note = |o: &Operand| {
            if let Operand::Param(i) = o {
                max = Some(max.map_or(*i, |m: usize| m.max(*i)));
            }
        };
        if let Some(q) = self.query_condition() {
            for o in q.operands() {
                note(o);
            }
        }
        match self {
            Statement::Update(u) => {
                for a in &u.sets {
                    note(&a.value);
                }
            }
            Statement::Insert(i) => {
                for v in &i.values {
                    note(v);
                }
                for a in &i.on_duplicate {
                    note(&a.value);
                }
            }
            _ => {}
        }
        max.map_or(0, |m| m + 1)
    }

    /// Columns the statement modifies (UPDATE SET / INSERT columns /
    /// all columns for DELETE).
    pub fn written_columns(&self) -> Vec<String> {
        match self {
            Statement::Select(_) => Vec::new(),
            Statement::Update(u) => u.sets.iter().map(|a| a.column.clone()).collect(),
            Statement::Insert(i) => i.columns.clone(),
            Statement::Delete(_) => Vec::new(), // DELETE touches every index anyway
        }
    }
}

impl Statement {
    /// Short tag for display ("SELECT", "UPDATE", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::Select(_) => "SELECT",
            Statement::Update(_) => "UPDATE",
            Statement::Insert(_) => "INSERT",
            Statement::Delete(_) => "DELETE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q4() -> Statement {
        // SELECT * FROM OrderItem oi JOIN Order o ON o.ID = oi.O_ID
        //   JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?
        Statement::Select(Select {
            from: TableRef::aliased("OrderItem", "oi"),
            joins: vec![
                Join {
                    table: TableRef::aliased("Order", "o"),
                    on: Cond::eq(Operand::col("o", "ID"), Operand::col("oi", "O_ID")),
                },
                Join {
                    table: TableRef::aliased("Product", "p"),
                    on: Cond::eq(Operand::col("p", "ID"), Operand::col("oi", "P_ID")),
                },
            ],
            where_clause: Some(Cond::eq(Operand::col("oi", "O_ID"), Operand::Param(0))),
            for_update: false,
        })
    }

    fn q6() -> Statement {
        // UPDATE Product SET QTY = ? WHERE ID = ?
        Statement::Update(Update {
            table: "Product".into(),
            sets: vec![Assignment {
                column: "QTY".into(),
                value: Operand::Param(0),
            }],
            where_clause: Some(Cond::eq(Operand::col("Product", "ID"), Operand::Param(1))),
        })
    }

    #[test]
    fn alias_map_and_tables() {
        let s = q4();
        assert_eq!(
            s.alias_map(),
            vec![
                ("oi".to_string(), "OrderItem".to_string()),
                ("o".to_string(), "Order".to_string()),
                ("p".to_string(), "Product".to_string()),
            ]
        );
        assert_eq!(s.tables(), vec!["OrderItem", "Order", "Product"]);
        assert_eq!(s.aliases_of("Product"), vec!["p"]);
        assert!(!s.is_write());
        assert_eq!(s.written_table(), None);
    }

    #[test]
    fn update_is_write() {
        let s = q6();
        assert!(s.is_write());
        assert_eq!(s.written_table(), Some("Product"));
        assert_eq!(s.written_columns(), vec!["QTY"]);
        assert_eq!(s.param_count(), 2);
    }

    #[test]
    fn query_condition_conjoins_joins_and_where() {
        let s = q4();
        let q = s.query_condition().unwrap();
        let preds = q.top_predicates();
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn insert_condition_is_pk_equations() {
        let s = Statement::Insert(Insert {
            table: "Order".into(),
            columns: vec!["ID".into()],
            values: vec![Operand::Param(0)],
            on_duplicate: vec![],
        });
        let q = s.query_condition().unwrap();
        assert_eq!(q.top_predicates().len(), 1);
        assert_eq!(s.param_count(), 1);
        assert!(s.is_write());
    }

    #[test]
    fn cond_combinators() {
        let a = Cond::eq(Operand::col("t", "A"), Operand::Param(0));
        let b = Cond::cmp(
            Operand::col("t", "B"),
            CmpOp::Gt,
            Operand::Const(Value::Int(3)),
        );
        let c = a.clone().and(b.clone()).and(a.clone().or(b.clone()));
        assert_eq!(c.conjuncts().len(), 3);
        assert_eq!(c.top_predicates().len(), 2);
        assert_eq!(c.aliases(), vec!["t".to_string()]);
    }

    #[test]
    fn oriented_pred_flips() {
        let p = Pred::new(Operand::Param(0), CmpOp::Lt, Operand::col("t", "A"));
        let o = p.oriented_for("t");
        assert!(o.lhs.is_column_of("t"));
        assert_eq!(o.op, CmpOp::Gt);
    }

    #[test]
    fn cmp_op_algebra() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.negate().negate(), op);
        }
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(!CmpOp::Lt.eval(Ordering::Equal));
    }

    #[test]
    fn map_operands_rewrites() {
        let c = Cond::eq(Operand::col("p", "ID"), Operand::Param(0));
        let renamed = c.map_operands(&mut |o| match o {
            Operand::Column { alias, column } if alias == "p" => {
                Operand::col("r.p", column.clone())
            }
            other => other.clone(),
        });
        assert_eq!(renamed.aliases(), vec!["r.p".to_string()]);
    }

    #[test]
    fn select_for_update_is_write() {
        let mut s = match q4() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        s.for_update = true;
        let st = Statement::Select(s);
        assert!(st.is_write());
        assert_eq!(st.written_table(), Some("OrderItem"));
    }
}

//! Runtime SQL values.
//!
//! `Value` is the dynamic value type shared by the storage engine, the ORM,
//! and the concolic driver. Values are totally ordered within a type class
//! so they can serve as B-tree index keys; `NULL` sorts before everything,
//! matching InnoDB index ordering.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (`INT`, `BIGINT`).
    Int(i64),
    /// Double-precision float; stands in for `DECIMAL` the way the paper
    /// models Java `BigDecimal` as Z3 floats (Sec. IV-B).
    Float(f64),
    /// UTF-8 string (`VARCHAR`).
    Str(String),
    /// Boolean (`TINYINT(1)`).
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A coarse type tag used for ordering values of mixed types and for
    /// schema checks.
    pub fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numerics compare with each other
            Value::Str(_) => 3,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }
}

impl Value {
    /// Total order used for index keys: NULL < Bool < numeric < Str.
    /// NaN floats order greater than every other float so the order stays
    /// total (they never arise from the supported workloads).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = [
            Value::Int(3),
            Value::Null,
            Value::str("a"),
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(3));
        assert_eq!(vals[3], Value::str("a"));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn display_escapes_strings() {
        assert_eq!(Value::str("o'neil").to_string(), "'o''neil'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_int(), None);
        assert!(Value::Null.is_null());
    }
}

//! SQL text rendering.
//!
//! Statements render back to the template syntax of paper Fig. 6, with `?`
//! for parameters. The printer and the parser round-trip: for every
//! statement `s` in the subset, `parse(print(s)) == s` (checked by a
//! property test in `parser.rs`).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column { alias, column } => write!(f, "{alias}.{column}"),
            Operand::Param(_) => write!(f, "?"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Cmp(p) => write!(f, "{p}"),
            Term::IsNull(o) => write!(f, "{o} IS NULL"),
            Term::NotNull(o) => write!(f, "{o} IS NOT NULL"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_prec(c: &Cond, parent_or: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Cond::Term(t) => write!(f, "{t}"),
                Cond::And(a, b) => {
                    fmt_and_child(a, f)?;
                    write!(f, " AND ")?;
                    fmt_and_child(b, f)
                }
                Cond::Or(a, b) => {
                    if parent_or {
                        // OR is the lowest precedence; no parens needed when
                        // nested directly under OR, but we keep the flat form.
                    }
                    fmt_prec(a, true, f)?;
                    write!(f, " OR ")?;
                    fmt_prec(b, true, f)
                }
            }
        }
        fn fmt_and_child(c: &Cond, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Cond::Or(..) => {
                    write!(f, "(")?;
                    fmt_prec(c, false, f)?;
                    write!(f, ")")
                }
                _ => fmt_prec(c, false, f),
            }
        }
        fmt_prec(self, false, f)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alias == self.table {
            write!(f, "{}", self.table)
        } else {
            write!(f, "{} {}", self.table, self.alias)
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT * FROM {}", self.from)?;
        for j in &self.joins {
            write!(f, " JOIN {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if self.for_update {
            write!(f, " FOR UPDATE")?;
        }
        Ok(())
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, a) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", a.column, a.value)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {} (", self.table)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ") VALUES (")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")?;
        if !self.on_duplicate.is_empty() {
            write!(f, " ON DUPLICATE KEY UPDATE ")?;
            for (i, a) in self.on_duplicate.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} = {}", a.column, a.value)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
        }
    }
}

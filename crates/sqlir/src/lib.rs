//! # weseer-sqlir
//!
//! SQL intermediate representation for WeSEER (ICDE 2023).
//!
//! This crate defines the statement syntax WeSEER supports (paper Fig. 6),
//! the query-condition grammar (paper Fig. 7), the database schema/catalog
//! model (tables, columns, primary and secondary indexes), runtime values,
//! a hand-rolled SQL parser for the supported subset, and pretty printers
//! that render statements back to SQL text templates.
//!
//! Every other crate in the workspace speaks this IR: the ORM generates it,
//! the storage engine executes it, the concolic trace collector records it,
//! and the deadlock analyzer reasons about it.

pub mod ast;
pub mod cond;
pub mod error;
pub mod parser;
pub mod print;
pub mod schema;
pub mod value;

pub use ast::{
    CmpOp, Cond, Delete, Insert, Operand, Pred, Select, Statement, TableRef, Term, Update,
};
pub use error::SqlError;
pub use schema::{Catalog, ColType, ColumnDef, IndexDef, IndexKind, TableBuilder, TableDef};
pub use value::Value;

//! ORM error type.

use std::fmt;
use weseer_concolic::BackendError;

/// Errors surfaced to application code through the ORM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrmError {
    /// Database-layer failure (lock conflicts, duplicates, …).
    Backend(BackendError),
    /// Application-level abort (e.g. Fig. 1's "No enough products").
    AppAbort(String),
}

impl OrmError {
    /// Whether this error means the transaction was chosen as a deadlock
    /// victim and rolled back by the database.
    pub fn is_deadlock_victim(&self) -> bool {
        matches!(self, OrmError::Backend(b) if b.deadlock_victim)
    }
}

impl From<BackendError> for OrmError {
    fn from(e: BackendError) -> Self {
        OrmError::Backend(e)
    }
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::Backend(b) => write!(f, "database error: {b}"),
            OrmError::AppAbort(m) => write!(f, "application abort: {m}"),
        }
    }
}

impl std::error::Error for OrmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_classification() {
        let dl = OrmError::Backend(BackendError {
            message: "deadlock".into(),
            deadlock_victim: true,
        });
        assert!(dl.is_deadlock_victim());
        let other = OrmError::AppAbort("nope".into());
        assert!(!other.is_deadlock_victim());
        assert!(other.to_string().contains("nope"));
    }
}

//! Persistent entities: in-memory objects mapped to database rows.
//!
//! Entities track a loaded snapshot for dirty checking (the write-behind
//! cache defers an UPDATE until flush) and the stack trace of their *last
//! modification* — the paper's mechanism for mapping implicit lazy writes
//! back to triggering code (Sec. VI).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use weseer_concolic::{CodeLoc, EngineRef, StackTrace, SymValue};

/// Life-cycle state of an entity in a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityStatus {
    /// Scheduled for INSERT at flush.
    New,
    /// Loaded from (or written to) the database.
    Persistent,
    /// Scheduled for DELETE at flush.
    Removed,
}

#[derive(Debug)]
pub(crate) struct EntityData {
    pub table: String,
    /// `(column, value)` in table column order.
    pub fields: Vec<(String, SymValue)>,
    /// Values as of load/last flush (dirty checking baseline).
    pub snapshot: Vec<SymValue>,
    pub status: EntityStatus,
    /// Stack of the most recent `set` — the triggering code of the
    /// eventual UPDATE.
    pub last_modified: Option<StackTrace>,
}

/// A shared handle to a persistent object.
#[derive(Clone)]
pub struct EntityRef {
    pub(crate) inner: Rc<RefCell<EntityData>>,
}

impl fmt::Debug for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.borrow();
        write!(f, "Entity({}", d.table)?;
        for (c, v) in &d.fields {
            write!(f, " {c}={}", v.concrete)?;
        }
        write!(f, ")")
    }
}

impl EntityRef {
    /// Create an entity (used by the session; applications use
    /// `OrmSession::persist`/`find`).
    pub(crate) fn new(
        table: String,
        fields: Vec<(String, SymValue)>,
        status: EntityStatus,
    ) -> EntityRef {
        let snapshot = fields.iter().map(|(_, v)| v.clone()).collect();
        EntityRef {
            inner: Rc::new(RefCell::new(EntityData {
                table,
                fields,
                snapshot,
                status,
                last_modified: None,
            })),
        }
    }

    /// The mapped table.
    pub fn table(&self) -> String {
        self.inner.borrow().table.clone()
    }

    /// Current status.
    pub fn status(&self) -> EntityStatus {
        self.inner.borrow().status
    }

    /// Read a field (object access — no SQL; the read cache already holds
    /// the value).
    pub fn get(&self, column: &str) -> SymValue {
        self.inner
            .borrow()
            .fields
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("entity has no field {column}"))
    }

    /// Write a field. The UPDATE is buffered (write-behind); `loc` is
    /// recorded as the triggering code of the eventual statement.
    pub fn set(&self, engine: &EngineRef, column: &str, value: SymValue, loc: CodeLoc) {
        let stack = engine.borrow().stack_at(loc);
        let mut d = self.inner.borrow_mut();
        let slot = d
            .fields
            .iter_mut()
            .find(|(c, _)| c == column)
            .unwrap_or_else(|| panic!("entity has no field {column}"));
        slot.1 = value;
        d.last_modified = Some(stack);
    }

    /// All `(column, value)` pairs.
    pub fn fields(&self) -> Vec<(String, SymValue)> {
        self.inner.borrow().fields.clone()
    }

    /// Columns whose current value differs concretely from the snapshot.
    pub fn dirty_columns(&self) -> Vec<String> {
        let d = self.inner.borrow();
        d.fields
            .iter()
            .zip(&d.snapshot)
            .filter(|((_, cur), snap)| cur.concrete != snap.concrete)
            .map(|((c, _), _)| c.clone())
            .collect()
    }

    /// Whether a flush would emit an UPDATE for this entity.
    pub fn is_dirty(&self) -> bool {
        !self.dirty_columns().is_empty()
    }

    /// The recorded last-modification stack.
    pub fn last_modified(&self) -> Option<StackTrace> {
        self.inner.borrow().last_modified.clone()
    }

    pub(crate) fn set_status(&self, s: EntityStatus) {
        self.inner.borrow_mut().status = s;
    }

    /// Reset the snapshot to the current values (after flush).
    pub(crate) fn mark_clean(&self) {
        let mut d = self.inner.borrow_mut();
        d.snapshot = d.fields.iter().map(|(_, v)| v.clone()).collect();
        d.last_modified = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_concolic::{loc, shared, ExecMode};
    use weseer_sqlir::Value;

    fn entity() -> EntityRef {
        EntityRef::new(
            "Product".into(),
            vec![
                ("ID".into(), SymValue::concrete(1i64)),
                ("QTY".into(), SymValue::concrete(10i64)),
            ],
            EntityStatus::Persistent,
        )
    }

    #[test]
    fn get_set_and_dirty_tracking() {
        let e = entity();
        let eng = shared(ExecMode::Concolic);
        assert!(!e.is_dirty());
        assert_eq!(e.get("QTY").as_int(), Some(10));
        e.set(
            &eng,
            "QTY",
            SymValue::concrete(7i64),
            loc!("updateQuantity"),
        );
        assert!(e.is_dirty());
        assert_eq!(e.dirty_columns(), vec!["QTY"]);
        assert_eq!(e.get("QTY").as_int(), Some(7));
        let lm = e.last_modified().unwrap();
        assert_eq!(lm.top().unwrap().function, "updateQuantity");
    }

    #[test]
    fn mark_clean_resets_baseline() {
        let e = entity();
        let eng = shared(ExecMode::Concolic);
        e.set(&eng, "QTY", SymValue::concrete(7i64), loc!("f"));
        e.mark_clean();
        assert!(!e.is_dirty());
        assert!(e.last_modified().is_none());
    }

    #[test]
    #[should_panic(expected = "no field")]
    fn unknown_field_panics() {
        entity().get("NOPE");
    }

    #[test]
    fn set_back_to_original_is_clean() {
        let e = entity();
        let eng = shared(ExecMode::Concolic);
        e.set(&eng, "QTY", SymValue::concrete(7i64), loc!("f"));
        e.set(&eng, "QTY", SymValue::concrete(10i64), loc!("f"));
        assert!(!e.is_dirty());
    }

    #[test]
    fn debug_format_shows_fields() {
        let e = entity();
        let s = format!("{e:?}");
        assert!(s.contains("Product"));
        assert!(s.contains("QTY=10"));
        let _ = Value::Int(0);
    }
}

//! The ORM session: identity-map read cache, write-behind cache with flush
//! ordering, eager/lazy statement generation, and triggering-code capture.
//!
//! Models the Hibernate behaviours that defeat static transaction
//! extraction (paper Sec. II-B):
//!
//! 1. **read cache** — `find` on a cached key issues no SQL;
//! 2. **write-behind cache** — `set` on a loaded entity buffers the UPDATE
//!    until `flush`/commit, reordering statements relative to program
//!    order;
//! 3. **lazy loading** — [`LazyCollection`] issues its SELECT at first
//!    *use*, not at construction.

use crate::entity::{EntityRef, EntityStatus};
use crate::error::OrmError;
use std::collections::BTreeMap;
use weseer_concolic::{
    containers::SymMap, CodeLoc, EngineRef, SqlBackend, StackTrace, SymResultSet, SymValue,
    TraceDriver,
};
use weseer_smt::Sort;
use weseer_sqlir::ast::{Assignment, Insert, Select, Update};
use weseer_sqlir::{Catalog, ColType, Cond, Delete, Operand, Statement, TableRef};

/// A Hibernate-style session bound to one backend connection.
pub struct OrmSession<B: SqlBackend> {
    driver: TraceDriver<B>,
    engine: EngineRef,
    catalog: Catalog,
    cache: BTreeMap<String, SymMap<EntityRef>>,
    pending_inserts: Vec<(EntityRef, StackTrace)>,
    pending_deletes: Vec<(EntityRef, StackTrace)>,
}

impl<B: SqlBackend> OrmSession<B> {
    /// Open a session over a backend connection.
    pub fn new(engine: EngineRef, backend: B, catalog: Catalog) -> Self {
        OrmSession {
            driver: TraceDriver::new(engine.clone(), backend),
            engine,
            catalog,
            cache: BTreeMap::new(),
            pending_inserts: Vec::new(),
            pending_deletes: Vec::new(),
        }
    }

    /// The concolic engine handle.
    pub fn engine(&self) -> &EngineRef {
        &self.engine
    }

    /// The wrapped tracing driver.
    pub fn driver_mut(&mut self) -> &mut TraceDriver<B> {
        &mut self.driver
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn pk_column(&self, table: &str) -> String {
        let def = self.catalog.table(table).expect("mapped table exists");
        assert_eq!(def.primary_key.len(), 1, "ORM supports single-column PKs");
        def.primary_key[0].clone()
    }

    fn key_sort(&self, table: &str) -> Sort {
        let def = self.catalog.table(table).expect("mapped table exists");
        let pk = &def.primary_key[0];
        match def.column(pk).expect("pk column").ty {
            ColType::Int => Sort::Int,
            ColType::Float => Sort::Real,
            ColType::Str => Sort::Str,
            ColType::Bool => Sort::Bool,
        }
    }

    fn cache_for(&mut self, table: &str) -> &mut SymMap<EntityRef> {
        if !self.cache.contains_key(table) {
            let sort = self.key_sort(table);
            let mut eng = self.engine.borrow_mut();
            let map = SymMap::new(&mut eng, format!("cache.{table}"), sort);
            drop(eng);
            self.cache.insert(table.to_string(), map);
        }
        self.cache.get_mut(table).expect("just inserted")
    }

    // ---- transaction boundary ------------------------------------------

    /// Begin a transaction (`@Transactional` entry).
    pub fn begin(&mut self) {
        self.driver.begin();
    }

    /// Flush pending writes and commit.
    pub fn commit(&mut self, loc: CodeLoc) -> Result<(), OrmError> {
        self.flush(loc)?;
        self.driver.commit().map_err(|e| {
            self.clear_session_state();
            OrmError::from(e)
        })
    }

    /// Roll back, discarding all pending work and the read cache (its
    /// entries may reflect uncommitted state).
    pub fn rollback(&mut self) {
        if self.driver.in_txn() {
            self.driver.rollback();
        }
        self.clear_session_state();
    }

    fn clear_session_state(&mut self) {
        self.cache.clear();
        self.pending_inserts.clear();
        self.pending_deletes.clear();
    }

    fn run(
        &mut self,
        stmt: &Statement,
        params: &[SymValue],
        trigger: Option<StackTrace>,
    ) -> Result<SymResultSet, OrmError> {
        self.driver.execute(stmt, params, trigger).map_err(|e| {
            // The database rolled the victim back; discard session state so
            // the application sees a clean aborted transaction.
            if e.deadlock_victim {
                if self.driver.in_txn() {
                    self.driver.rollback();
                }
                self.clear_session_state();
            }
            OrmError::from(e)
        })
    }

    // ---- reads -----------------------------------------------------------

    /// `EntityManager.find`: read cache first; on miss, an eager SELECT by
    /// primary key.
    pub fn find(
        &mut self,
        table: &str,
        id: &SymValue,
        loc: CodeLoc,
    ) -> Result<Option<EntityRef>, OrmError> {
        let cached = {
            let engine = self.engine.clone();
            let cache = self.cache_for(table);
            let mut eng = engine.borrow_mut();
            cache.get(&mut eng, id)
        };
        if let Some(e) = cached {
            return Ok(Some(e)); // read cache hit: no SQL (Fig. 1 line 5)
        }
        let pk = self.pk_column(table);
        let stmt = Statement::Select(Select {
            from: TableRef::aliased(table, "e"),
            joins: vec![],
            where_clause: Some(Cond::eq(Operand::col("e", &pk), Operand::Param(0))),
            for_update: false,
        });
        let trigger = Some(self.engine.borrow().stack_at(loc));
        let rs = self.run(&stmt, std::slice::from_ref(id), trigger)?;
        if rs.is_empty() {
            return Ok(None);
        }
        let entity = self.hydrate(table, "e", &rs.rows[0]);
        Ok(Some(entity))
    }

    /// Run a hydrating query: every result row yields one entity per table
    /// alias. Cached entities win over freshly fetched state (first-level
    /// cache identity semantics).
    pub fn query(
        &mut self,
        stmt: &Statement,
        params: &[SymValue],
        loc: CodeLoc,
    ) -> Result<Vec<BTreeMap<String, EntityRef>>, OrmError> {
        let trigger = Some(self.engine.borrow().stack_at(loc));
        let rs = self.run(stmt, params, trigger)?;
        let aliases = stmt.alias_map();
        let mut out = Vec::with_capacity(rs.rows.len());
        for row in &rs.rows {
            let mut per_alias = BTreeMap::new();
            for (alias, table) in &aliases {
                let e = self.hydrate(table, alias, row);
                per_alias.insert(alias.clone(), e);
            }
            out.push(per_alias);
        }
        Ok(out)
    }

    /// Run a non-hydrating statement (projections, existence checks,
    /// native SQL).
    pub fn raw(
        &mut self,
        stmt: &Statement,
        params: &[SymValue],
        loc: CodeLoc,
    ) -> Result<SymResultSet, OrmError> {
        let trigger = Some(self.engine.borrow().stack_at(loc));
        self.run(stmt, params, trigger)
    }

    fn hydrate(&mut self, table: &str, alias: &str, row: &weseer_concolic::ResultRow) -> EntityRef {
        let def = self.catalog.table(table).expect("mapped table").clone();
        let pk_col = self.pk_column(table);
        let pk_val = row
            .get(&format!("{alias}.{pk_col}"))
            .unwrap_or_else(|| panic!("result row missing {alias}.{pk_col}"))
            .clone();
        // Identity-map check (records Alg. 1 conditions).
        let cached = {
            let engine = self.engine.clone();
            let cache = self.cache_for(table);
            let mut eng = engine.borrow_mut();
            cache.get(&mut eng, &pk_val)
        };
        if let Some(e) = cached {
            return e;
        }
        let fields: Vec<(String, SymValue)> = def
            .columns
            .iter()
            .map(|c| {
                let v = row
                    .get(&format!("{alias}.{}", c.name))
                    .cloned()
                    .unwrap_or_else(|| SymValue::concrete(weseer_sqlir::Value::Null));
                (c.name.clone(), v)
            })
            .collect();
        let e = EntityRef::new(table.to_string(), fields, EntityStatus::Persistent);
        let engine = self.engine.clone();
        let cache = self.cache_for(table);
        let mut eng = engine.borrow_mut();
        cache.put(&mut eng, pk_val, e.clone());
        e
    }

    // ---- writes ----------------------------------------------------------

    /// `EntityManager.persist`: register a new entity; its INSERT is
    /// deferred to flush (explicit lazy write, Sec. VI).
    pub fn persist(
        &mut self,
        table: &str,
        fields: Vec<(String, SymValue)>,
        loc: CodeLoc,
    ) -> EntityRef {
        let pk_col = self.pk_column(table);
        let id = fields
            .iter()
            .find(|(c, _)| c == &pk_col)
            .map(|(_, v)| v.clone())
            .expect("persist requires the primary key field");
        let e = EntityRef::new(table.to_string(), fields, EntityStatus::New);
        let trigger = self.engine.borrow().stack_at(loc);
        let engine = self.engine.clone();
        let cache = self.cache_for(table);
        {
            let mut eng = engine.borrow_mut();
            cache.put(&mut eng, id, e.clone());
        }
        self.pending_inserts.push((e.clone(), trigger));
        e
    }

    /// `EntityManager.merge`: an *eager* SELECT by primary key, then either
    /// a buffered UPDATE (row exists) or a buffered INSERT (row missing).
    ///
    /// The SELECT on the missing path acquires a gap lock — the d1
    /// deadlock the paper fixes by replacing `merge` with `persist` (f1).
    pub fn merge(
        &mut self,
        table: &str,
        fields: Vec<(String, SymValue)>,
        loc: CodeLoc,
    ) -> Result<EntityRef, OrmError> {
        let pk_col = self.pk_column(table);
        let id = fields
            .iter()
            .find(|(c, _)| c == &pk_col)
            .map(|(_, v)| v.clone())
            .expect("merge requires the primary key field");
        let stmt = Statement::Select(Select {
            from: TableRef::aliased(table, "e"),
            joins: vec![],
            where_clause: Some(Cond::eq(Operand::col("e", &pk_col), Operand::Param(0))),
            for_update: false,
        });
        let trigger = Some(self.engine.borrow().stack_at(loc));
        let rs = self.run(&stmt, std::slice::from_ref(&id), trigger)?;
        if rs.is_empty() {
            // Missing: behave like persist (INSERT at flush) — but the gap
            // lock from the SELECT above is already held.
            return Ok(self.persist(table, fields, loc));
        }
        let entity = self.hydrate(table, "e", &rs.rows[0]);
        for (c, v) in fields {
            if c != pk_col && entity.get(&c).concrete != v.concrete {
                entity.set(&self.engine, &c, v, loc);
            }
        }
        Ok(entity)
    }

    /// `EntityManager.remove`: schedule a DELETE for flush.
    pub fn remove(&mut self, entity: &EntityRef, loc: CodeLoc) {
        let table = entity.table();
        let pk_col = self.pk_column(&table);
        let id = entity.get(&pk_col);
        entity.set_status(EntityStatus::Removed);
        let engine = self.engine.clone();
        let cache = self.cache_for(&table);
        {
            let mut eng = engine.borrow_mut();
            cache.remove(&mut eng, &id);
        }
        let trigger = self.engine.borrow().stack_at(loc);
        self.pending_deletes.push((entity.clone(), trigger));
    }

    /// MySQL `INSERT ... ON DUPLICATE KEY UPDATE`, issued eagerly
    /// (fix f2 replaces check-then-insert transaction logic with this).
    pub fn upsert(
        &mut self,
        table: &str,
        fields: Vec<(String, SymValue)>,
        update_columns: &[&str],
        loc: CodeLoc,
    ) -> Result<(), OrmError> {
        let columns: Vec<String> = fields.iter().map(|(c, _)| c.clone()).collect();
        let mut params: Vec<SymValue> = fields.iter().map(|(_, v)| v.clone()).collect();
        let values: Vec<Operand> = (0..params.len()).map(Operand::Param).collect();
        let mut on_duplicate = Vec::new();
        for c in update_columns {
            let v = fields
                .iter()
                .find(|(fc, _)| fc == c)
                .map(|(_, v)| v.clone())
                .expect("update column must be among the fields");
            on_duplicate.push(Assignment {
                column: c.to_string(),
                value: Operand::Param(params.len()),
            });
            params.push(v);
        }
        let stmt = Statement::Insert(Insert {
            table: table.to_string(),
            columns,
            values,
            on_duplicate,
        });
        let trigger = Some(self.engine.borrow().stack_at(loc));
        self.run(&stmt, &params, trigger)?;
        Ok(())
    }

    // ---- flush -----------------------------------------------------------

    /// Flush the write-behind cache: INSERTs, then dirty UPDATEs, then
    /// DELETEs (Hibernate's action-queue order). Each statement carries the
    /// triggering-code stack recorded when the write was buffered.
    pub fn flush(&mut self, loc: CodeLoc) -> Result<(), OrmError> {
        let flush_stack = self.engine.borrow().stack_at(loc);
        // 1. INSERTs in registration order.
        let inserts = std::mem::take(&mut self.pending_inserts);
        for (e, trigger) in inserts {
            let fields = e.fields();
            let columns: Vec<String> = fields.iter().map(|(c, _)| c.clone()).collect();
            let params: Vec<SymValue> = fields.iter().map(|(_, v)| v.clone()).collect();
            let stmt = Statement::Insert(Insert {
                table: e.table(),
                columns,
                values: (0..params.len()).map(Operand::Param).collect(),
                on_duplicate: vec![],
            });
            self.run(&stmt, &params, Some(trigger))?;
            e.set_status(EntityStatus::Persistent);
            e.mark_clean();
        }
        // 2. Dirty UPDATEs, per table in name order, entities in load order.
        let dirty: Vec<EntityRef> = self
            .cache
            .values()
            .flat_map(|m| m.values().cloned().collect::<Vec<_>>())
            .filter(|e| e.status() == EntityStatus::Persistent && e.is_dirty())
            .collect();
        for e in dirty {
            let table = e.table();
            let pk_col = self.pk_column(&table);
            let dirty_cols = e.dirty_columns();
            let mut sets = Vec::new();
            let mut params = Vec::new();
            for c in &dirty_cols {
                sets.push(Assignment {
                    column: c.clone(),
                    value: Operand::Param(params.len()),
                });
                params.push(e.get(c));
            }
            let where_clause = Some(Cond::eq(
                Operand::col(&table, &pk_col),
                Operand::Param(params.len()),
            ));
            params.push(e.get(&pk_col));
            let stmt = Statement::Update(Update {
                table: table.clone(),
                sets,
                where_clause,
            });
            let trigger = e.last_modified().unwrap_or_else(|| flush_stack.clone());
            self.run(&stmt, &params, Some(trigger))?;
            e.mark_clean();
        }
        // 3. DELETEs.
        let deletes = std::mem::take(&mut self.pending_deletes);
        for (e, trigger) in deletes {
            let table = e.table();
            let pk_col = self.pk_column(&table);
            let stmt = Statement::Delete(Delete {
                table: table.clone(),
                where_clause: Some(Cond::eq(Operand::col(&table, &pk_col), Operand::Param(0))),
            });
            self.run(&stmt, &[e.get(&pk_col)], Some(trigger))?;
        }
        Ok(())
    }
}

/// A lazily loaded collection (paper Fig. 1 line 7: iterating the order's
/// items triggers Q4 at first use).
pub struct LazyCollection {
    stmt: Statement,
    params: Vec<SymValue>,
    loaded: Option<Vec<BTreeMap<String, EntityRef>>>,
}

impl LazyCollection {
    /// Declare the collection; no SQL is issued.
    pub fn new(stmt: Statement, params: Vec<SymValue>) -> Self {
        LazyCollection {
            stmt,
            params,
            loaded: None,
        }
    }

    /// Whether the backing SELECT already ran.
    pub fn is_loaded(&self) -> bool {
        self.loaded.is_some()
    }

    /// First use: issue the SELECT (recording the *access* site as trigger)
    /// and cache the result; later uses return the cached rows.
    pub fn get_or_load<B: SqlBackend>(
        &mut self,
        session: &mut OrmSession<B>,
        loc: CodeLoc,
    ) -> Result<&[BTreeMap<String, EntityRef>], OrmError> {
        if self.loaded.is_none() {
            let rows = session.query(&self.stmt, &self.params, loc)?;
            self.loaded = Some(rows);
        }
        Ok(self.loaded.as_deref().expect("just loaded"))
    }
}

//! # weseer-orm
//!
//! A Hibernate-style ORM simulator (the paper analyzes applications built
//! on Hibernate 5.2). It reproduces exactly the ORM behaviours that make
//! transaction extraction hard (paper Sec. II-B):
//!
//! * **read cache** — `find` on a cached key issues no SQL, so object
//!   accesses and SQL statements do not correspond 1:1;
//! * **write-behind cache** — entity writes buffer an UPDATE that is only
//!   sent at flush/commit, reordering SQL relative to program order (the
//!   d5/d6 deadlock ingredient, fixed by moving the flush forward — f4);
//! * **lazy loading** — collections issue their SELECT at first use.
//!
//! The session runs on top of `weseer-concolic`'s tracing driver, so every
//! generated statement lands in the trace together with its *triggering
//! code* (Sec. VI): eager reads record the access site, buffered writes
//! record the site of the last modification to the entity.

pub mod entity;
pub mod error;
pub mod session;

pub use entity::{EntityRef, EntityStatus};
pub use error::OrmError;
pub use session::{LazyCollection, OrmSession};

//! End-to-end ORM tests reproducing the paper's Fig. 1 `finishOrder`
//! behaviour over the real storage engine: read caching, lazy loading,
//! write-behind reordering, and triggering-code capture.

use weseer_concolic::{loc, shared, ExecMode, SymValue};
use weseer_db::Database;
use weseer_orm::{LazyCollection, OrmSession};
use weseer_sqlir::ast::Select;
use weseer_sqlir::{
    parser::parse, Catalog, ColType, Cond, Operand, Statement, TableBuilder, TableRef, Value,
};

fn fig1_catalog() -> Catalog {
    Catalog::new(vec![
        TableBuilder::new("Order")
            .col("ID", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("Product")
            .col("ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .build()
            .unwrap(),
        TableBuilder::new("OrderItem")
            .col("ID", ColType::Int)
            .col("O_ID", ColType::Int)
            .col("P_ID", ColType::Int)
            .col("QTY", ColType::Int)
            .primary_key(&["ID"])
            .foreign_key("O_ID", "Order", "ID")
            .foreign_key("P_ID", "Product", "ID")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn setup() -> (Database, OrmSession<weseer_db::Session>) {
    let db = Database::new(fig1_catalog());
    db.seed("Order", vec![vec![Value::Int(1)]]);
    db.seed("Product", vec![vec![Value::Int(10), Value::Int(100)]]);
    db.seed(
        "OrderItem",
        vec![vec![
            Value::Int(100),
            Value::Int(1),
            Value::Int(10),
            Value::Int(3),
        ]],
    );
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let session = OrmSession::new(engine, db.session(), db.catalog().clone());
    (db, session)
}

fn q4_stmt() -> Statement {
    parse(
        "SELECT * FROM OrderItem oi \
         JOIN Order o ON o.ID = oi.O_ID \
         JOIN Product p ON p.ID = oi.P_ID \
         WHERE oi.O_ID = ?",
    )
    .unwrap()
}

/// The Fig. 1 `finishOrder` body, written against the ORM.
#[test]
fn finish_order_trace_matches_fig3_shape() {
    let (db, mut session) = setup();
    let engine = session.engine().clone();

    let order_id = engine.borrow_mut().make_symbolic("order_id", Value::Int(1));

    session.begin();

    // Line 5: o is read from read cache after a first find warms it.
    let o = session
        .find("Order", &order_id, loc!("finishOrder"))
        .unwrap()
        .unwrap();
    let o2 = session
        .find("Order", &order_id, loc!("finishOrder"))
        .unwrap()
        .unwrap();
    assert_eq!(o.get("ID").concrete, o2.get("ID").concrete);

    // Line 7: order items load lazily → Q4 with two JOINs at first use.
    let mut items = LazyCollection::new(q4_stmt(), vec![order_id.clone()]);
    assert!(!items.is_loaded());
    let rows = items
        .get_or_load(&mut session, loc!("finishOrder"))
        .unwrap()
        .to_vec();
    assert_eq!(rows.len(), 1);

    // updateQuantity: read cache supplies p (no SQL); the quantity check
    // branches on symbolic state; the write is buffered.
    for row in &rows {
        let oi = &row["oi"];
        let p = &row["p"];
        let p_qty = p.get("QTY");
        let oi_qty = oi.get("QTY");
        let cond = engine
            .borrow_mut()
            .cmp(weseer_sqlir::CmpOp::Ge, &p_qty, &oi_qty);
        let enough = engine.borrow_mut().branch(&cond, loc!("updateQuantity"));
        assert!(enough);
        let new_qty = engine.borrow_mut().sub(&p_qty, &oi_qty);
        p.set(&engine, "QTY", new_qty, loc!("updateQuantity")); // line 19
        assert!(p.is_dirty());
    }

    // Commit flushes the buffered UPDATE (Q6 sent here, line 11).
    session.commit(loc!("finishOrder")).unwrap();

    let trace = session.driver_mut().take_trace("finishOrder");
    // Statements: find(Order) SELECT, lazy Q4, flushed Q6 UPDATE.
    assert_eq!(trace.statements.len(), 3);
    let q1 = &trace.statements[0];
    assert!(matches!(q1.stmt, Statement::Select(_)));
    let q4 = &trace.statements[1];
    match &q4.stmt {
        Statement::Select(s) => assert_eq!(s.joins.len(), 2),
        other => panic!("expected join select, got {other:?}"),
    }
    let q6 = &trace.statements[2];
    match &q6.stmt {
        Statement::Update(u) => {
            assert_eq!(u.table, "Product");
            assert_eq!(u.sets.len(), 1);
            assert_eq!(u.sets[0].column, "QTY");
        }
        other => panic!("expected update, got {other:?}"),
    }
    // Sec. VI: Q6's trigger is the setter in updateQuantity, not the
    // commit/flush site.
    assert_eq!(q6.trigger.top().unwrap().function, "updateQuantity");
    // Q6's parameter carries the symbolic expression res.QTY - res.QTY.
    assert!(q6.params[0].is_symbolic());
    // Path condition from the quantity check was recorded before Q6.
    assert!(trace.path_conds_before(q6.seq).any(|pc| !pc.in_library));
    // Database state reflects the committed write.
    assert_eq!(db.dump("Product")[0], vec![Value::Int(10), Value::Int(97)]);
}

#[test]
fn read_cache_elides_second_find() {
    let (_db, mut session) = setup();
    let engine = session.engine().clone();
    let id = engine.borrow_mut().make_symbolic("id", Value::Int(10));
    session.begin();
    session.find("Product", &id, loc!("t")).unwrap().unwrap();
    session.find("Product", &id, loc!("t")).unwrap().unwrap();
    session.commit(loc!("t")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    assert_eq!(trace.statements.len(), 1, "second find must hit the cache");
}

#[test]
fn persist_issues_only_insert_at_flush() {
    let (db, mut session) = setup();
    session.begin();
    session.persist(
        "Order",
        vec![("ID".into(), SymValue::concrete(2i64))],
        loc!("registerUser"),
    );
    // Nothing sent yet (write-behind).
    session.commit(loc!("registerUser")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    assert_eq!(trace.statements.len(), 1);
    assert!(matches!(trace.statements[0].stmt, Statement::Insert(_)));
    assert_eq!(
        trace.statements[0].trigger.top().unwrap().function,
        "registerUser"
    );
    assert_eq!(db.count("Order"), 2);
}

#[test]
fn merge_issues_select_then_insert_on_miss() {
    // The d1 pattern: merge on a missing row = SELECT (gap lock!) + INSERT.
    let (db, mut session) = setup();
    session.begin();
    session
        .merge(
            "Order",
            vec![("ID".into(), SymValue::concrete(5i64))],
            loc!("register"),
        )
        .unwrap();
    session.commit(loc!("register")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    assert_eq!(trace.statements.len(), 2);
    assert!(matches!(trace.statements[0].stmt, Statement::Select(_)));
    assert!(trace.statements[0].is_empty);
    assert!(matches!(trace.statements[1].stmt, Statement::Insert(_)));
    assert_eq!(db.count("Order"), 2);
}

#[test]
fn merge_updates_existing_row() {
    let (db, mut session) = setup();
    session.begin();
    session
        .merge(
            "Product",
            vec![
                ("ID".into(), SymValue::concrete(10i64)),
                ("QTY".into(), SymValue::concrete(55i64)),
            ],
            loc!("restock"),
        )
        .unwrap();
    session.commit(loc!("restock")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    assert_eq!(trace.statements.len(), 2);
    assert!(matches!(trace.statements[1].stmt, Statement::Update(_)));
    assert_eq!(db.dump("Product")[0][1], Value::Int(55));
}

#[test]
fn explicit_flush_moves_statements_forward() {
    // Fix f4: an early flush changes statement order.
    let (_db, mut session) = setup();
    let engine = session.engine().clone();
    session.begin();
    let id = SymValue::concrete(10i64);
    let p = session.find("Product", &id, loc!("t")).unwrap().unwrap();
    p.set(&engine, "QTY", SymValue::concrete(1i64), loc!("t"));
    session.flush(loc!("t")).unwrap(); // UPDATE goes out here …
    let q = parse("SELECT * FROM Order o WHERE o.ID = ?").unwrap();
    session
        .query(&q, &[SymValue::concrete(1i64)], loc!("t"))
        .unwrap();
    session.commit(loc!("t")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    let kinds: Vec<&str> = trace.statements.iter().map(|s| s.stmt.kind()).collect();
    assert_eq!(kinds, vec!["SELECT", "UPDATE", "SELECT"]);
}

#[test]
fn remove_issues_delete_at_flush() {
    let (db, mut session) = setup();
    session.begin();
    let id = SymValue::concrete(100i64);
    let oi = session.find("OrderItem", &id, loc!("t")).unwrap().unwrap();
    session.remove(&oi, loc!("cancelItem"));
    session.commit(loc!("t")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    let last = trace.statements.last().unwrap();
    assert!(matches!(last.stmt, Statement::Delete(_)));
    assert_eq!(last.trigger.top().unwrap().function, "cancelItem");
    assert_eq!(db.count("OrderItem"), 0);
}

#[test]
fn flush_orders_insert_update_delete() {
    let (_db, mut session) = setup();
    let engine = session.engine().clone();
    session.begin();
    let id = SymValue::concrete(10i64);
    let p = session.find("Product", &id, loc!("t")).unwrap().unwrap();
    let oi = session
        .find("OrderItem", &SymValue::concrete(100i64), loc!("t"))
        .unwrap()
        .unwrap();
    // Program order: delete, update, insert — flush must reorder.
    session.remove(&oi, loc!("t"));
    p.set(&engine, "QTY", SymValue::concrete(1i64), loc!("t"));
    session.persist(
        "Order",
        vec![("ID".into(), SymValue::concrete(9i64))],
        loc!("t"),
    );
    session.commit(loc!("t")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    let kinds: Vec<&str> = trace
        .statements
        .iter()
        .skip(2) // the two finds
        .map(|s| s.stmt.kind())
        .collect();
    assert_eq!(kinds, vec!["INSERT", "UPDATE", "DELETE"]);
}

#[test]
fn upsert_emits_on_duplicate_statement() {
    let (db, mut session) = setup();
    session.begin();
    session
        .upsert(
            "Product",
            vec![
                ("ID".into(), SymValue::concrete(10i64)),
                ("QTY".into(), SymValue::concrete(42i64)),
            ],
            &["QTY"],
            loc!("addToCart"),
        )
        .unwrap();
    session.commit(loc!("t")).unwrap();
    let trace = session.driver_mut().take_trace("t");
    match &trace.statements[0].stmt {
        Statement::Insert(i) => assert_eq!(i.on_duplicate.len(), 1),
        other => panic!("{other:?}"),
    }
    assert_eq!(db.dump("Product")[0][1], Value::Int(42));
}

#[test]
fn query_hydrates_identity_mapped_entities() {
    let (_db, mut session) = setup();
    session.begin();
    let id = SymValue::concrete(10i64);
    let p1 = session.find("Product", &id, loc!("t")).unwrap().unwrap();
    let rows = session
        .query(&q4_stmt(), &[SymValue::concrete(1i64)], loc!("t"))
        .unwrap();
    let p2 = &rows[0]["p"];
    // Same identity: a write through one handle is visible through the
    // other (first-level cache).
    let engine = session.engine().clone();
    p1.set(&engine, "QTY", SymValue::concrete(7i64), loc!("t"));
    assert_eq!(p2.get("QTY").as_int(), Some(7));
    session.rollback();
}

#[test]
fn rollback_discards_pending_writes_and_cache() {
    let (db, mut session) = setup();
    session.begin();
    session.persist(
        "Order",
        vec![("ID".into(), SymValue::concrete(7i64))],
        loc!("t"),
    );
    session.rollback();
    assert_eq!(db.count("Order"), 1);
    // A fresh transaction does not see the stale cache.
    session.begin();
    let got = session
        .find("Order", &SymValue::concrete(7i64), loc!("t"))
        .unwrap();
    assert!(got.is_none());
    session.rollback();
}

#[test]
fn select_statement_builder_roundtrip() {
    // Verify the generated find() SELECT parses/prints consistently.
    let stmt = Statement::Select(Select {
        from: TableRef::aliased("Product", "e"),
        joins: vec![],
        where_clause: Some(Cond::eq(Operand::col("e", "ID"), Operand::Param(0))),
        for_update: false,
    });
    let reparsed = parse(&stmt.to_string()).unwrap();
    assert_eq!(stmt, reparsed);
}

//! Automatic deadlock reproduction (the paper's Sec. V-D future work:
//! "develop a framework to automatically reproduce the deadlocks
//! according to WeSEER's report — doing so helps eliminate all false
//! positives").
//!
//! Given a report naming two APIs, the replayer prepares the database in
//! the state the traces were collected under, then races the two API
//! invocations (same canonical inputs, so they collide on the same rows)
//! from a barrier, repeatedly, until the database detects a deadlock and
//! aborts a victim — or an attempt budget runs out.

use std::sync::{Arc, Barrier};
use weseer_analyzer::DeadlockReport;
use weseer_apps::app::collect_trace;
use weseer_apps::{AppLocks, ECommerceApp, Fixes};
use weseer_concolic::{ExecMode, LibraryMode};
use weseer_db::Database;

/// Result of a replay campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Whether a database deadlock was observed.
    pub reproduced: bool,
    /// Attempts used.
    pub attempts: usize,
    /// Deadlock aborts observed across attempts.
    pub deadlock_aborts: u64,
}

/// Prepare a database in the state preceding the report's APIs: seed, then
/// run every unit test before the first involved API (the unit tests are
/// chained — Sec. VII-B). Native-mode execution makes the resulting state
/// deterministic, which the witness replayer relies on.
pub fn prepare_db(app: &dyn ECommerceApp, upto: &str) -> Database {
    let db = Database::new(app.catalog());
    app.seed(&db);
    let fixes = Fixes::none();
    let locks = AppLocks::new();
    for test in app.unit_tests() {
        if *test == upto {
            break;
        }
        let (_t, _c, r) = collect_trace(
            app,
            test,
            &db,
            &fixes,
            &locks,
            ExecMode::Native,
            LibraryMode::Modeled,
        );
        r.unwrap_or_else(|e| panic!("state preparation failed at {test}: {e}"));
    }
    db
}

/// Race the report's two APIs until a deadlock reproduces.
///
/// The two instances use the unit tests' canonical inputs, which the
/// analyzer's witness says can collide (for same-API reports the inputs
/// are literally identical). `max_attempts` bounds the campaign.
pub fn replay<A: ECommerceApp + Copy + Send + Sync + 'static>(
    app: A,
    report: &DeadlockReport,
    max_attempts: usize,
) -> ReplayOutcome {
    let a_api = report.cycle.a_api.clone();
    let b_api = report.cycle.b_api.clone();
    // Prepare up to the earlier of the two APIs in unit-test order.
    let order = app.unit_tests();
    let first = order
        .iter()
        .find(|t| **t == a_api || **t == b_api)
        .copied()
        .unwrap_or(order[0]);

    for attempt in 1..=max_attempts {
        let db = prepare_db(&app, first);
        // Slow statements down so the two instances interleave at
        // statement granularity even on a single-core host (the paper's
        // STEPDAD citation does the same trick at the driver level).
        db.set_statement_delay(std::time::Duration::from_micros(400));
        let before = db.stats().deadlock_aborts;
        let barrier = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for api in [a_api.clone(), b_api.clone()] {
            let db = db.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                let fixes = Fixes::none();
                let locks = AppLocks::new();
                let engine = weseer_concolic::shared(ExecMode::Native);
                let mut ctx = weseer_apps::AppCtx::new(&db, engine, &fixes, &locks);
                barrier.wait();
                // The outcome (success, app abort, deadlock victim) is
                // read from the database counters afterwards.
                let _ = app.run_unit_test(&mut ctx, &api);
            }));
        }
        for h in handles {
            h.join().expect("replay thread panicked");
        }
        let aborts = db.stats().deadlock_aborts - before;
        if aborts > 0 {
            return ReplayOutcome {
                reproduced: true,
                attempts: attempt,
                deadlock_aborts: aborts,
            };
        }
    }
    ReplayOutcome {
        reproduced: false,
        attempts: max_attempts,
        deadlock_aborts: 0,
    }
}

//! The Figs. 10/11 performance experiments: API throughput of each
//! application across client counts and fix configurations.

use std::time::Duration;
use weseer_apps::workload::{run_workload, WorkloadConfig, WorkloadResult};
use weseer_apps::{ECommerceApp, Fix, Fixes};

/// One measured bar of Fig. 10/11.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Configuration label ("enable all", "disable all", "disable f5", …).
    pub label: String,
    /// Client count.
    pub clients: usize,
    /// Result.
    pub result: WorkloadResult,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Client counts to sweep (paper: 8, 64, 128).
    pub client_counts: Vec<usize>,
    /// Measurement duration per point.
    pub duration: Duration,
    /// Hot-product set size.
    pub hot_products: i64,
    /// Simulated per-statement round-trip latency.
    pub statement_delay: Duration,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            client_counts: vec![8, 64, 128],
            duration: Duration::from_secs(2),
            hot_products: 8,
            statement_delay: Duration::ZERO,
        }
    }
}

/// The fix configurations of Fig. 10 (Broadleaf) / Fig. 11 (Shopizer):
/// enable all, disable all, then each app-relevant fix disabled in turn.
pub fn fix_configurations(app_fixes: &[Fix]) -> Vec<(String, Fixes)> {
    let mut out = vec![
        ("enable all".to_string(), Fixes::all()),
        ("disable all".to_string(), Fixes::none()),
    ];
    for fix in app_fixes {
        out.push((format!("disable {fix}"), Fixes::all_but(*fix)));
    }
    out
}

/// Run the full sweep for one application.
pub fn run_perf_sweep<A: ECommerceApp + Copy + Send + 'static>(
    app: A,
    app_fixes: &[Fix],
    config: &PerfConfig,
) -> Vec<PerfPoint> {
    let mut out = Vec::new();
    for (label, fixes) in fix_configurations(app_fixes) {
        for &clients in &config.client_counts {
            let wc = WorkloadConfig {
                clients,
                duration: config.duration,
                fixes: fixes.clone(),
                retries: 3,
                hot_products: config.hot_products,
                statement_delay: config.statement_delay,
            };
            let result = run_workload(app, &wc);
            out.push(PerfPoint {
                label: label.clone(),
                clients,
                result,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_apps::Broadleaf;

    #[test]
    fn fix_configurations_cover_table() {
        let cfgs = fix_configurations(&Fix::BROADLEAF);
        assert_eq!(cfgs.len(), 10); // enable/disable all + 8 fixes
        assert_eq!(cfgs[0].0, "enable all");
        assert!(cfgs.iter().any(|(l, _)| l == "disable f5"));
    }

    #[test]
    fn fixed_beats_unfixed_under_contention() {
        // A scaled-down Fig. 10 sanity check: with contention, "enable
        // all" must beat "disable all" on throughput and produce zero
        // deadlock aborts.
        let config = PerfConfig {
            client_counts: vec![8],
            duration: Duration::from_millis(600),
            hot_products: 6,
            statement_delay: Duration::from_micros(50),
        };
        let points = run_perf_sweep(Broadleaf, &[], &config);
        assert_eq!(points.len(), 2);
        let enabled = &points[0];
        let disabled = &points[1];
        assert_eq!(enabled.result.db_stats.deadlock_aborts, 0);
        assert!(disabled.result.db_stats.deadlock_aborts > 0);
        assert!(
            enabled.result.throughput > disabled.result.throughput,
            "enable all {} <= disable all {}",
            enabled.result.throughput,
            disabled.result.throughput
        );
    }
}

//! The end-to-end WeSEER pipeline (paper Fig. 2): run an application's
//! unit tests under concolic execution, collect traces, diagnose
//! deadlocks, and group the reports into Table II rows.

use std::collections::BTreeMap;
use weseer_analyzer::{coarse_cycle_count, diagnose, AnalyzerConfig, CollectedTrace, Diagnosis};
use weseer_apps::app::collect_trace;
use weseer_apps::{classify, AppLocks, ECommerceApp, Fixes, KnownDeadlock};
use weseer_concolic::{ExecMode, LibraryMode};
use weseer_db::Database;

/// The WeSEER tool facade.
#[derive(Debug, Default)]
pub struct Weseer {
    /// Analyzer configuration.
    pub config: AnalyzerConfig,
    /// When set, every diagnosed cycle is replayed for a concrete witness
    /// ([`weseer_replay`]) after diagnosis.
    pub replay: Option<weseer_replay::ReplayConfig>,
}

/// Everything produced by analyzing one application.
pub struct AppAnalysis {
    /// Application name.
    pub app: String,
    /// Unit tests traced, with their statement and path-condition counts.
    pub trace_summaries: Vec<TraceSummary>,
    /// The diagnosis (reports + phase statistics).
    pub diagnosis: Diagnosis,
    /// Reports grouped into Table II rows.
    pub groups: BTreeMap<KnownDeadlock, usize>,
    /// The coarse-grained (STEPDAD/REDACT-style) cycle count on the same
    /// traces, for the Sec. VII-B baseline comparison.
    pub coarse_cycles: usize,
    /// Observability metrics accumulated during this analysis (the delta
    /// of the global [`weseer_obs`] registry over the run; empty unless
    /// `weseer_obs::set_enabled(true)` was called).
    pub metrics: weseer_obs::MetricsSnapshot,
    /// Replay verdicts, aligned index-for-index with
    /// `diagnosis.deadlocks`; `None` unless [`Weseer::with_replay`] was
    /// requested.
    pub replay: Option<ReplaySummary>,
}

/// Witness-replay results for one analysis.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// One verdict per diagnosed deadlock, in report order.
    pub verdicts: Vec<weseer_replay::ReplayVerdict>,
}

impl ReplaySummary {
    fn count(&self, tag: &str) -> usize {
        self.verdicts.iter().filter(|v| v.tag() == tag).count()
    }

    /// Reports confirmed with a concrete witness.
    pub fn confirmed(&self) -> usize {
        self.count("confirmed")
    }

    /// Reports where no schedule in budget deadlocked.
    pub fn not_reproduced(&self) -> usize {
        self.count("not_reproduced")
    }

    /// Reports replay could not attempt.
    pub fn skipped(&self) -> usize {
        self.count("skipped")
    }

    /// Total schedules explored and pruned across all reports.
    pub fn schedule_totals(&self) -> (usize, usize) {
        let mut explored = 0;
        let mut pruned = 0;
        for v in &self.verdicts {
            match v {
                weseer_replay::ReplayVerdict::Confirmed(w) => {
                    explored += w.schedules_explored;
                    pruned += w.schedules_pruned;
                }
                weseer_replay::ReplayVerdict::NotReproduced {
                    schedules_explored,
                    schedules_pruned,
                } => {
                    explored += schedules_explored;
                    pruned += schedules_pruned;
                }
                weseer_replay::ReplayVerdict::Skipped(_) => {}
            }
        }
        (explored, pruned)
    }
}

/// The standard funnel stages for [`weseer_obs::report::render_report`],
/// as `(label, counter)` pairs matching what the analyzer publishes.
pub const FUNNEL_STAGES: &[(&str, &str)] = &[
    ("txn pairs examined", "analyzer.txn_pairs"),
    ("after phase-1 filter", "analyzer.pairs_after_phase1"),
    ("coarse cycles (phase 2)", "analyzer.coarse_cycles"),
    ("fine candidates (to SMT)", "analyzer.fine_candidates"),
    ("SMT sat", "analyzer.smt_sat"),
    ("SMT unsat", "analyzer.smt_unsat"),
    ("SMT unknown", "analyzer.smt_unknown"),
    ("deadlocks reported", "analyzer.deadlocks_reported"),
    ("replay confirmed", "replay.confirmed"),
    ("replay not reproduced", "replay.not_reproduced"),
];

/// Summary of one collected trace.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Unit test / API name.
    pub api: String,
    /// SQL statements recorded.
    pub statements: usize,
    /// Transactions recorded.
    pub txns: usize,
    /// Path conditions recorded.
    pub path_conds: usize,
}

impl AppAnalysis {
    /// Table II rows found for this app, in row order.
    pub fn rows_found(&self) -> Vec<KnownDeadlock> {
        KnownDeadlock::TABLE2
            .into_iter()
            .filter(|k| k.app() == self.app && self.groups.contains_key(k))
            .collect()
    }

    /// Number of paper deadlock ids covered by the found rows.
    pub fn deadlock_ids_found(&self) -> usize {
        self.rows_found().iter().map(|k| k.id_count()).sum()
    }
}

impl Weseer {
    /// New facade with default configuration.
    pub fn new() -> Self {
        Weseer::default()
    }

    /// Pin the analyzer's worker-thread count (`0` = auto: the
    /// `WESEER_THREADS` environment variable if set, else all cores).
    /// The diagnosis output is identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Replay every diagnosed cycle for a concrete deadlock witness, with
    /// default exploration budgets.
    pub fn with_replay(self) -> Self {
        self.with_replay_config(weseer_replay::ReplayConfig::default())
    }

    /// Replay with explicit exploration budgets.
    pub fn with_replay_config(mut self, config: weseer_replay::ReplayConfig) -> Self {
        self.replay = Some(config);
        self
    }

    /// Collect the Table I unit-test traces of an application, chaining
    /// database state between tests (paper Sec. VII-B).
    pub fn collect_traces(
        &self,
        app: &dyn ECommerceApp,
        fixes: &Fixes,
    ) -> (Vec<CollectedTrace>, Database) {
        let _span = weseer_obs::span("pipeline.collect_traces");
        let db = Database::new(app.catalog());
        app.seed(&db);
        let locks = AppLocks::new();
        let mut traces = Vec::new();
        for test in app.unit_tests() {
            let api_start = std::time::Instant::now();
            let (trace, ctx, result) = collect_trace(
                app,
                test,
                &db,
                fixes,
                &locks,
                ExecMode::Concolic,
                LibraryMode::Modeled,
            );
            // Per-API trace time: one histogram entry per unit test.
            weseer_obs::observe_duration("concolic.trace_api_us", api_start.elapsed());
            result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
            traces.push(CollectedTrace::new(trace, ctx));
        }
        (traces, db)
    }

    /// Run the full pipeline on the *unfixed* application (the published
    /// code is what gets diagnosed).
    pub fn analyze(&self, app: &dyn ECommerceApp) -> AppAnalysis {
        self.analyze_with_fixes(app, &Fixes::none())
    }

    /// Run the full pipeline with an explicit fix configuration (used by
    /// the fixed-code ablation: the sorted Shopizer variants become
    /// UNSAT through their recorded comparison path conditions).
    pub fn analyze_with_fixes(&self, app: &dyn ECommerceApp, fixes: &Fixes) -> AppAnalysis {
        let before = weseer_obs::snapshot();
        let pipeline_span = weseer_obs::span("pipeline.analyze");
        let (traces, _db) = self.collect_traces(app, fixes);
        let trace_summaries = traces
            .iter()
            .map(|t| TraceSummary {
                api: t.trace.api.clone(),
                statements: t.trace.statements.len(),
                txns: t.trace.txns.len(),
                path_conds: t.trace.path_conds.len(),
            })
            .collect();
        let diagnosis = diagnose(&app.catalog(), &traces, &self.config);
        let mut groups: BTreeMap<KnownDeadlock, usize> = BTreeMap::new();
        for r in &diagnosis.deadlocks {
            *groups.entry(classify(app.name(), r)).or_insert(0) += 1;
        }
        let coarse_cycles = coarse_cycle_count(&traces);
        let replay = self
            .replay
            .as_ref()
            .map(|cfg| Self::replay_reports(app, &diagnosis, &traces, cfg));
        drop(pipeline_span);
        let metrics = weseer_obs::snapshot().delta_since(&before);
        AppAnalysis {
            app: app.name().to_string(),
            trace_summaries,
            diagnosis,
            groups,
            coarse_cycles,
            metrics,
            replay,
        }
    }

    /// Replay each report against a database prepared to the state its
    /// traces were collected from. Databases are prepared once per
    /// distinct starting API and reused (the explorer only forks them).
    fn replay_reports(
        app: &dyn ECommerceApp,
        diagnosis: &Diagnosis,
        traces: &[CollectedTrace],
        config: &weseer_replay::ReplayConfig,
    ) -> ReplaySummary {
        let _span = weseer_obs::span("pipeline.replay");
        let replayer = weseer_replay::Replayer::with_config(traces, config.clone());
        let order = app.unit_tests();
        let mut bases: BTreeMap<String, Database> = BTreeMap::new();
        let verdicts = diagnosis
            .deadlocks
            .iter()
            .map(|r| {
                // Trace collection chains DB state across unit tests, so
                // the cycle's statements ran against the state left by
                // every test before the *earlier* of the two APIs.
                let first = order
                    .iter()
                    .find(|t| **t == r.cycle.a_api || **t == r.cycle.b_api)
                    .copied()
                    .unwrap_or(order[0]);
                let base = bases
                    .entry(first.to_string())
                    .or_insert_with(|| crate::replay::prepare_db(app, first));
                replayer.replay_report(r, base)
            })
            .collect();
        ReplaySummary { verdicts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_apps::Shopizer;

    #[test]
    fn shopizer_pipeline_smoke() {
        let weseer = Weseer::new();
        let analysis = weseer.analyze(&Shopizer);
        assert_eq!(analysis.app, "shopizer");
        assert_eq!(analysis.trace_summaries.len(), 6);
        assert!(
            analysis.deadlock_ids_found() >= 5,
            "groups: {:?}",
            analysis.groups
        );
        assert!(analysis.coarse_cycles > analysis.diagnosis.deadlocks.len());
    }
}

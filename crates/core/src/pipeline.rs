//! The end-to-end WeSEER pipeline (paper Fig. 2): run an application's
//! unit tests under concolic execution, collect traces, diagnose
//! deadlocks, and group the reports into Table II rows.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use weseer_analyzer::{
    coarse_cycle_count, diagnose_incremental, find_anomaly_candidates, resolve_threads,
    run_ordered, AnalyzerConfig, AnomalyCandidate, CollectedTrace, Diagnosis, StoreCtx,
};
use weseer_apps::app::collect_trace;
use weseer_apps::{classify, AppLocks, ECommerceApp, Fixes, KnownDeadlock};
use weseer_concolic::{ExecMode, LibraryMode};
use weseer_db::{Database, IsolationLevel};
use weseer_replay::{
    concretize_txn, explore_anomalies, AnomalyOutcome, AnomalyWitness, Instance, ReplayVerdict,
    Witness,
};
use weseer_store::{json::Json, Lookup, Store};

/// The WeSEER tool facade.
#[derive(Debug, Default)]
pub struct Weseer {
    /// Analyzer configuration.
    pub config: AnalyzerConfig,
    /// When set, every diagnosed cycle is replayed for a concrete witness
    /// ([`weseer_replay`]) after diagnosis.
    pub replay: Option<weseer_replay::ReplayConfig>,
    /// When set, analyses consult (and feed) this persistent store so a
    /// warm run over unchanged traces skips the heavy phases
    /// ([`Weseer::with_store`]; also reachable via the `WESEER_STORE`
    /// environment variable).
    pub store: Option<Arc<Store>>,
    /// APIs whose traces are treated as changed for store lookups: their
    /// fingerprints are salted, invalidating every stored outcome that
    /// involves them (`WESEER_DIRTY` env var, or [`Weseer::with_dirty`]).
    pub dirty_apis: BTreeSet<String>,
    /// When set to a non-serializable level, every analysis additionally
    /// runs the weak-isolation anomaly oracle and confirms its candidates
    /// by exploring interleavings at that level
    /// ([`Weseer::with_isolation`]; also reachable via the
    /// `WESEER_ISOLATION` environment variable). Trace collection and
    /// deadlock diagnosis always run at the default serializable level,
    /// so the deadlock output is untouched.
    pub isolation: Option<IsolationLevel>,
}

/// Everything produced by analyzing one application.
pub struct AppAnalysis {
    /// Application name.
    pub app: String,
    /// Unit tests traced, with their statement and path-condition counts.
    pub trace_summaries: Vec<TraceSummary>,
    /// The diagnosis (reports + phase statistics).
    pub diagnosis: Diagnosis,
    /// Reports grouped into Table II rows.
    pub groups: BTreeMap<KnownDeadlock, usize>,
    /// The coarse-grained (STEPDAD/REDACT-style) cycle count on the same
    /// traces, for the Sec. VII-B baseline comparison.
    pub coarse_cycles: usize,
    /// Observability metrics accumulated during this analysis (the delta
    /// of the global [`weseer_obs`] registry over the run; empty unless
    /// `weseer_obs::set_enabled(true)` was called).
    pub metrics: weseer_obs::MetricsSnapshot,
    /// Replay verdicts, aligned index-for-index with
    /// `diagnosis.deadlocks`; `None` unless [`Weseer::with_replay`] was
    /// requested.
    pub replay: Option<ReplaySummary>,
    /// Weak-isolation anomaly analysis; `None` unless a non-serializable
    /// level was requested ([`Weseer::with_isolation`] or
    /// `WESEER_ISOLATION`). Never feeds the deadlock report, so default
    /// output stays byte-identical.
    pub anomalies: Option<AnomalyAnalysis>,
}

/// Static anomaly candidates plus their dynamic confirmation at one
/// isolation level.
#[derive(Debug)]
pub struct AnomalyAnalysis {
    /// Kebab-case isolation level the confirmations ran under.
    pub isolation: String,
    /// Candidates from the static oracle, sorted; capped at
    /// [`AnomalyAnalysis::MAX_CANDIDATES`] (`truncated` counts the rest).
    pub candidates: Vec<AnomalyCandidate>,
    /// One verdict per candidate, index-aligned.
    pub verdicts: Vec<AnomalyVerdict>,
    /// Candidates dropped by the cap.
    pub truncated: usize,
}

/// Dynamic verdict for one anomaly candidate.
#[derive(Debug)]
pub enum AnomalyVerdict {
    /// The explorer found a committed schedule exhibiting the anomaly.
    Confirmed(Box<AnomalyWitness>),
    /// No schedule within budget exhibited it.
    Clean {
        /// Schedules completed.
        explored: usize,
        /// Branches pruned by sleep sets.
        pruned: usize,
    },
    /// The candidate cannot occur at the session's isolation level (e.g.
    /// a lost update under snapshot isolation's first-updater-wins).
    NotApplicable,
    /// Confirmation was not attempted, with the reason.
    Skipped(String),
}

impl AnomalyVerdict {
    /// Short stable tag: `confirmed`, `clean`, `not_applicable`, or
    /// `skipped`.
    pub fn tag(&self) -> &'static str {
        match self {
            AnomalyVerdict::Confirmed(_) => "confirmed",
            AnomalyVerdict::Clean { .. } => "clean",
            AnomalyVerdict::NotApplicable => "not_applicable",
            AnomalyVerdict::Skipped(_) => "skipped",
        }
    }
}

impl AnomalyAnalysis {
    /// Deterministic cap on confirmed candidates per analysis.
    pub const MAX_CANDIDATES: usize = 8;

    /// Confirmed witnesses, in candidate order.
    pub fn confirmed(&self) -> Vec<&AnomalyWitness> {
        self.verdicts
            .iter()
            .filter_map(|v| match v {
                AnomalyVerdict::Confirmed(w) => Some(w.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Canonical single-line JSON: candidates with their verdict tags and
    /// witness lines, stable field order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"isolation\":\"{}\",\"truncated\":{},\"candidates\":[",
            self.isolation, self.truncated
        );
        for (i, (c, v)) in self.candidates.iter().zip(&self.verdicts).enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"candidate\":{},\"verdict\":\"{}\"",
                c.to_json(),
                v.tag()
            );
            if let AnomalyVerdict::Confirmed(w) = v {
                let _ = write!(s, ",\"witness\":{}", w.to_json());
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Witness-replay results for one analysis.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// One verdict per diagnosed deadlock, in report order.
    pub verdicts: Vec<weseer_replay::ReplayVerdict>,
}

impl ReplaySummary {
    fn count(&self, tag: &str) -> usize {
        self.verdicts.iter().filter(|v| v.tag() == tag).count()
    }

    /// Reports confirmed with a concrete witness.
    pub fn confirmed(&self) -> usize {
        self.count("confirmed")
    }

    /// Reports where no schedule in budget deadlocked.
    pub fn not_reproduced(&self) -> usize {
        self.count("not_reproduced")
    }

    /// Reports replay could not attempt.
    pub fn skipped(&self) -> usize {
        self.count("skipped")
    }

    /// Total schedules explored and pruned across all reports.
    pub fn schedule_totals(&self) -> (usize, usize) {
        let mut explored = 0;
        let mut pruned = 0;
        for v in &self.verdicts {
            match v {
                weseer_replay::ReplayVerdict::Confirmed(w) => {
                    explored += w.schedules_explored;
                    pruned += w.schedules_pruned;
                }
                weseer_replay::ReplayVerdict::NotReproduced {
                    schedules_explored,
                    schedules_pruned,
                } => {
                    explored += schedules_explored;
                    pruned += schedules_pruned;
                }
                weseer_replay::ReplayVerdict::Skipped(_) => {}
            }
        }
        (explored, pruned)
    }
}

/// The standard funnel stages for [`weseer_obs::report::render_report`],
/// as `(label, counter)` pairs matching what the analyzer publishes.
pub const FUNNEL_STAGES: &[(&str, &str)] = &[
    ("txn pairs examined", "analyzer.txn_pairs"),
    ("after phase-1 filter", "analyzer.pairs_after_phase1"),
    ("coarse cycles (phase 2)", "analyzer.coarse_cycles"),
    ("fine candidates (to SMT)", "analyzer.fine_candidates"),
    ("SMT sat", "analyzer.smt_sat"),
    ("SMT unsat", "analyzer.smt_unsat"),
    ("SMT unknown", "analyzer.smt_unknown"),
    ("deadlocks reported", "analyzer.deadlocks_reported"),
    ("replay confirmed", "replay.confirmed"),
    ("replay not reproduced", "replay.not_reproduced"),
    ("anomaly candidates", "analyzer.anomaly.candidates"),
    ("anomaly confirmed", "replay.anomaly.confirmed"),
    ("anomaly clean", "replay.anomaly.clean"),
    // Serving-plane stages (populated only when a `weseer-serve` daemon
    // runs in-process; zero in plain batch runs).
    ("traces ingested (serve)", "serve.traces_ingested"),
    ("verdicts served (serve)", "serve.verdicts_served"),
];

/// Summary of one collected trace.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Unit test / API name.
    pub api: String,
    /// SQL statements recorded.
    pub statements: usize,
    /// Transactions recorded.
    pub txns: usize,
    /// Path conditions recorded.
    pub path_conds: usize,
}

impl AppAnalysis {
    /// Table II rows found for this app, in row order.
    pub fn rows_found(&self) -> Vec<KnownDeadlock> {
        KnownDeadlock::TABLE2
            .into_iter()
            .filter(|k| k.app() == self.app && self.groups.contains_key(k))
            .collect()
    }

    /// Number of paper deadlock ids covered by the found rows.
    pub fn deadlock_ids_found(&self) -> usize {
        self.rows_found().iter().map(|k| k.id_count()).sum()
    }
}

impl Weseer {
    /// New facade with default configuration.
    pub fn new() -> Self {
        Weseer::default()
    }

    /// Pin the analyzer's worker-thread count (`0` = auto: the
    /// `WESEER_THREADS` environment variable if set, else all cores).
    /// The diagnosis output is identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Replay every diagnosed cycle for a concrete deadlock witness, with
    /// default exploration budgets.
    pub fn with_replay(self) -> Self {
        self.with_replay_config(weseer_replay::ReplayConfig::default())
    }

    /// Replay with explicit exploration budgets.
    pub fn with_replay_config(mut self, config: weseer_replay::ReplayConfig) -> Self {
        self.replay = Some(config);
        self
    }

    /// Open (or create) the incremental store at `path` and consult it on
    /// every analysis: a warm run over unchanged traces reuses each
    /// prefix pre-solve, phase-2 scan, phase-3 verdict, SMT verdict, and
    /// replay outcome recorded by the run that filled the store, and is
    /// byte-identical to it.
    pub fn with_store(mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        self.store = Some(Arc::new(Store::open(path)?));
        Ok(self)
    }

    /// Treat `api`'s trace as changed: its fingerprint is salted so every
    /// stored outcome involving it reads as stale and is recomputed.
    /// (Simulates an edited endpoint for incremental benchmarks.)
    pub fn with_dirty(mut self, api: &str) -> Self {
        self.dirty_apis.insert(api.to_string());
        self
    }

    /// Ask "what if this deployment ran at `level`?": analyses
    /// additionally run the weak-isolation anomaly oracle and confirm its
    /// candidates by exploring interleavings at that level. Serializable
    /// (the engine default) is a no-op — 2PL admits none of the anomalies.
    pub fn with_isolation(mut self, level: IsolationLevel) -> Self {
        self.isolation = Some(level);
        self
    }

    /// The isolation level for anomaly analysis: the configured one, else
    /// the `WESEER_ISOLATION` environment variable.
    fn resolve_isolation(&self) -> Option<IsolationLevel> {
        self.isolation.or_else(IsolationLevel::from_env)
    }

    /// The store to use for one analysis: the configured one, else the
    /// `WESEER_STORE` path (opened fresh per call so repeated analyses
    /// each see the flushed file).
    fn resolve_store(&self) -> Option<Arc<Store>> {
        if self.store.is_some() {
            return self.store.clone();
        }
        match std::env::var("WESEER_STORE") {
            Ok(p) if !p.is_empty() => Some(Arc::new(
                Store::open(&p).unwrap_or_else(|e| panic!("WESEER_STORE={p}: {e}")),
            )),
            _ => None,
        }
    }

    /// Per-trace content fingerprints for store keys, with dirty APIs
    /// (configured plus the comma-separated `WESEER_DIRTY` env var)
    /// salted so their stored outcomes invalidate.
    fn fingerprints(&self, traces: &[CollectedTrace]) -> Vec<String> {
        let mut dirty = self.dirty_apis.clone();
        if let Ok(v) = std::env::var("WESEER_DIRTY") {
            dirty.extend(
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            );
        }
        traces
            .iter()
            .map(|t| {
                let mut fp = t.trace.fingerprint(&t.ctx);
                if dirty.contains(t.api()) {
                    fp.push_str("!dirty");
                }
                fp
            })
            .collect()
    }

    /// Collect the Table I unit-test traces of an application, chaining
    /// database state between tests (paper Sec. VII-B).
    ///
    /// With more than one worker thread the tests are traced in parallel:
    /// worker `i` builds its own database, fast-forwards it by running
    /// tests `0..i` in native mode (the same deterministic replay
    /// [`crate::replay::prepare_db`] relies on), then traces test `i`
    /// concolically. The ordered merge makes the result — traces and the
    /// final database state — identical to the sequential chain for every
    /// thread count.
    pub fn collect_traces(
        &self,
        app: &dyn ECommerceApp,
        fixes: &Fixes,
    ) -> (Vec<CollectedTrace>, Database) {
        let _span = weseer_obs::span("pipeline.collect_traces");
        let tests = app.unit_tests();
        let threads = resolve_threads(self.config.threads);
        if threads <= 1 || tests.len() <= 1 {
            let db = Database::new(app.catalog());
            app.seed(&db);
            let locks = AppLocks::new();
            let mut traces = Vec::new();
            for test in tests {
                traces.push(Self::trace_one(app, test, &db, fixes, &locks));
            }
            return (traces, db);
        }
        let outputs = run_ordered(tests, threads, |i, test| {
            let db = Database::new(app.catalog());
            app.seed(&db);
            let locks = AppLocks::new();
            for prior in &tests[..i] {
                let (_t, _c, r) = collect_trace(
                    app,
                    prior,
                    &db,
                    fixes,
                    &locks,
                    ExecMode::Native,
                    LibraryMode::Modeled,
                );
                r.unwrap_or_else(|e| panic!("unit test {prior} failed: {e}"));
            }
            (Self::trace_one(app, test, &db, fixes, &locks), db)
        });
        let mut traces = Vec::with_capacity(outputs.len());
        let mut db = None;
        for (t, d) in outputs {
            traces.push(t);
            db = Some(d);
        }
        (traces, db.expect("at least one unit test"))
    }

    /// Trace one unit test concolically against `db`, recording exactly
    /// one `concolic.trace_api_us` histogram entry.
    fn trace_one(
        app: &dyn ECommerceApp,
        test: &str,
        db: &Database,
        fixes: &Fixes,
        locks: &AppLocks,
    ) -> CollectedTrace {
        let api_start = std::time::Instant::now();
        let (trace, ctx, result) = collect_trace(
            app,
            test,
            db,
            fixes,
            locks,
            ExecMode::Concolic,
            LibraryMode::Modeled,
        );
        // Per-API trace time: one histogram entry per unit test.
        weseer_obs::observe_duration("concolic.trace_api_us", api_start.elapsed());
        result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
        CollectedTrace::new(trace, ctx)
    }

    /// Run the full pipeline on the *unfixed* application (the published
    /// code is what gets diagnosed).
    pub fn analyze(&self, app: &dyn ECommerceApp) -> AppAnalysis {
        self.analyze_with_fixes(app, &Fixes::none())
    }

    /// Run the full pipeline with an explicit fix configuration (used by
    /// the fixed-code ablation: the sorted Shopizer variants become
    /// UNSAT through their recorded comparison path conditions).
    pub fn analyze_with_fixes(&self, app: &dyn ECommerceApp, fixes: &Fixes) -> AppAnalysis {
        let before = weseer_obs::snapshot();
        let pipeline_span = weseer_obs::span("pipeline.analyze");
        let (traces, _db) = self.collect_traces(app, fixes);
        let trace_summaries = traces
            .iter()
            .map(|t| TraceSummary {
                api: t.trace.api.clone(),
                statements: t.trace.statements.len(),
                txns: t.trace.txns.len(),
                path_conds: t.trace.path_conds.len(),
            })
            .collect();
        let store = self.resolve_store();
        let fingerprints = store.as_ref().map(|_| self.fingerprints(&traces));
        let store_ctx = store
            .as_ref()
            .zip(fingerprints.as_ref())
            .map(|(s, fps)| StoreCtx {
                store: s,
                fingerprints: fps,
                namespace: app.name(),
            });
        let diagnosis = diagnose_incremental(
            &app.catalog(),
            &traces,
            &self.config,
            None,
            store_ctx.as_ref(),
        );
        let mut groups: BTreeMap<KnownDeadlock, usize> = BTreeMap::new();
        for r in &diagnosis.deadlocks {
            *groups.entry(classify(app.name(), r)).or_insert(0) += 1;
        }
        let coarse_cycles = coarse_cycle_count(&traces);
        let replay = self
            .replay
            .as_ref()
            .map(|cfg| Self::replay_reports(app, &diagnosis, &traces, cfg, store_ctx.as_ref()));
        let anomalies = self
            .resolve_isolation()
            .filter(|iso| iso.uses_snapshots())
            .map(|iso| Self::anomaly_reports(app, &traces, iso));
        if let Some(s) = &store {
            s.flush().unwrap_or_else(|e| panic!("store flush: {e}"));
        }
        drop(pipeline_span);
        let metrics = weseer_obs::snapshot().delta_since(&before);
        AppAnalysis {
            app: app.name().to_string(),
            trace_summaries,
            diagnosis,
            groups,
            coarse_cycles,
            metrics,
            replay,
            anomalies,
        }
    }

    /// Run the static anomaly oracle over the traces, then confirm each
    /// candidate (up to [`AnomalyAnalysis::MAX_CANDIDATES`]) by exploring
    /// interleavings at `iso` against a database prepared to the state
    /// the traces ran from. Candidates whose level list excludes `iso`
    /// are reported [`AnomalyVerdict::NotApplicable`] without exploring.
    fn anomaly_reports(
        app: &dyn ECommerceApp,
        traces: &[CollectedTrace],
        iso: IsolationLevel,
    ) -> AnomalyAnalysis {
        let _span = weseer_obs::span("pipeline.anomalies");
        let mut candidates = find_anomaly_candidates(traces);
        let truncated = candidates
            .len()
            .saturating_sub(AnomalyAnalysis::MAX_CANDIDATES);
        candidates.truncate(AnomalyAnalysis::MAX_CANDIDATES);
        let order = app.unit_tests();
        let mut bases: BTreeMap<String, Database> = BTreeMap::new();
        let empty_model = weseer_smt::Model::default();
        let verdicts = candidates
            .iter()
            .map(|c| {
                if !c.levels.iter().any(|l| l == iso.name()) {
                    return AnomalyVerdict::NotApplicable;
                }
                let find = |api: &str| traces.iter().find(|t| t.api() == api);
                let (Some(ta), Some(tb)) = (find(&c.a_api), find(&c.b_api)) else {
                    return AnomalyVerdict::Skipped("trace missing".into());
                };
                // Replays use the traced inputs (the oracle has no SAT
                // model to pin anything sharper).
                let a_stmts = concretize_txn(ta, c.a_txn, &empty_model);
                let b_stmts = concretize_txn(tb, c.b_txn, &empty_model);
                if a_stmts.is_empty() || b_stmts.is_empty() {
                    return AnomalyVerdict::Skipped(
                        "candidate transaction has no statements".into(),
                    );
                }
                let instances = vec![
                    Instance {
                        name: "A1".into(),
                        stmts: a_stmts,
                    },
                    Instance {
                        name: "A2".into(),
                        stmts: b_stmts,
                    },
                ];
                let apis = vec![c.a_api.clone(), c.b_api.clone()];
                // Same base-state rule as deadlock replay: the earlier of
                // the two APIs in unit-test order fixes the DB state.
                let first = order
                    .iter()
                    .find(|t| **t == c.a_api || **t == c.b_api)
                    .copied()
                    .unwrap_or(order[0]);
                let base = bases
                    .entry(first.to_string())
                    .or_insert_with(|| crate::replay::prepare_db(app, first));
                match explore_anomalies(
                    base,
                    &instances,
                    &apis,
                    iso,
                    &weseer_replay::ReplayConfig::default(),
                ) {
                    AnomalyOutcome::Anomalous(w) => AnomalyVerdict::Confirmed(w),
                    AnomalyOutcome::Clean { explored, pruned } => {
                        AnomalyVerdict::Clean { explored, pruned }
                    }
                }
            })
            .collect();
        AnomalyAnalysis {
            isolation: iso.name().to_string(),
            candidates,
            verdicts,
            truncated,
        }
    }

    /// Replay each report against a database prepared to the state its
    /// traces were collected from. Databases are prepared once per
    /// distinct starting API and reused (the explorer only forks them).
    ///
    /// With a store, a cycle whose two trace fingerprints are unchanged
    /// restores its recorded verdict — witness included, byte-identical
    /// through [`Witness::to_json`] — without preparing a database or
    /// exploring a single schedule (`replay.schedules_explored` stays 0
    /// on a fully warm run).
    fn replay_reports(
        app: &dyn ECommerceApp,
        diagnosis: &Diagnosis,
        traces: &[CollectedTrace],
        config: &weseer_replay::ReplayConfig,
        store: Option<&StoreCtx<'_>>,
    ) -> ReplaySummary {
        let _span = weseer_obs::span("pipeline.replay");
        let replayer = weseer_replay::Replayer::with_config(traces, config.clone());
        let order = app.unit_tests();
        let mut bases: BTreeMap<String, Database> = BTreeMap::new();
        let cfg_tag = format!("{config:?}");
        let verdicts = diagnosis
            .deadlocks
            .iter()
            .map(|r| {
                let persist = store.and_then(|sc| {
                    let fp = |api: &str| {
                        traces
                            .iter()
                            .position(|t| t.api() == api)
                            .map(|i| sc.fingerprints[i].as_str())
                    };
                    let (fa, fb) = (fp(&r.cycle.a_api)?, fp(&r.cycle.b_api)?);
                    let c = &r.cycle;
                    let site = format!(
                        "{}|{}#{}@{}-{}|{}#{}@{}-{}",
                        sc.namespace,
                        c.a_api,
                        c.a_txn,
                        c.a_hold,
                        c.a_wait,
                        c.b_api,
                        c.b_txn,
                        c.b_hold,
                        c.b_wait
                    );
                    Some((sc, site, format!("{fa}|{fb}|{cfg_tag}")))
                });
                if let Some((sc, site, content)) = &persist {
                    if let Lookup::Hit(v) = sc.store.get("wit", site, content) {
                        if let Some(verdict) = verdict_from_json(&v) {
                            weseer_obs::incr(&format!("replay.{}", verdict.tag()));
                            return verdict;
                        }
                    }
                }
                // Trace collection chains DB state across unit tests, so
                // the cycle's statements ran against the state left by
                // every test before the *earlier* of the two APIs.
                let first = order
                    .iter()
                    .find(|t| **t == r.cycle.a_api || **t == r.cycle.b_api)
                    .copied()
                    .unwrap_or(order[0]);
                let base = bases
                    .entry(first.to_string())
                    .or_insert_with(|| crate::replay::prepare_db(app, first));
                let verdict = replayer.replay_report(r, base);
                if let Some((sc, site, content)) = &persist {
                    sc.store
                        .put("wit", site, content, verdict_to_json(&verdict));
                }
                verdict
            })
            .collect();
        ReplaySummary { verdicts }
    }
}

/// Serialize a replay verdict for the store's `wit` records. Witnesses
/// ride along as their canonical JSON line, so the warm-run export is
/// byte-identical to the cold one.
fn verdict_to_json(v: &ReplayVerdict) -> Json {
    match v {
        ReplayVerdict::Confirmed(w) => Json::Obj(vec![
            ("tag".into(), Json::str("confirmed")),
            ("witness".into(), Json::str(w.to_json())),
        ]),
        ReplayVerdict::NotReproduced {
            schedules_explored,
            schedules_pruned,
        } => Json::Obj(vec![
            ("tag".into(), Json::str("not_reproduced")),
            ("explored".into(), Json::u64(*schedules_explored as u64)),
            ("pruned".into(), Json::u64(*schedules_pruned as u64)),
        ]),
        ReplayVerdict::Skipped(reason) => Json::Obj(vec![
            ("tag".into(), Json::str("skipped")),
            ("reason".into(), Json::str(reason.clone())),
        ]),
    }
}

/// Inverse of [`verdict_to_json`]; `None` on any malformed record (the
/// caller then replays live and overwrites it).
fn verdict_from_json(v: &Json) -> Option<ReplayVerdict> {
    match v.get("tag")?.as_str()? {
        "confirmed" => {
            let w = Witness::from_json(v.get("witness")?.as_str()?)?;
            Some(ReplayVerdict::Confirmed(Box::new(w)))
        }
        "not_reproduced" => Some(ReplayVerdict::NotReproduced {
            schedules_explored: v.get("explored")?.as_u64()? as usize,
            schedules_pruned: v.get("pruned")?.as_u64()? as usize,
        }),
        "skipped" => Some(ReplayVerdict::Skipped(
            v.get("reason")?.as_str()?.to_string(),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_apps::Shopizer;

    #[test]
    fn shopizer_pipeline_smoke() {
        let weseer = Weseer::new();
        let analysis = weseer.analyze(&Shopizer);
        assert_eq!(analysis.app, "shopizer");
        assert_eq!(analysis.trace_summaries.len(), 6);
        assert!(
            analysis.deadlock_ids_found() >= 5,
            "groups: {:?}",
            analysis.groups
        );
        assert!(analysis.coarse_cycles > analysis.diagnosis.deadlocks.len());
        // No isolation requested: the anomaly stage must not even run.
        assert!(analysis.anomalies.is_none());
    }

    #[test]
    fn isolation_gates_the_anomaly_stage() {
        use weseer_db::IsolationLevel;
        // Serializable is a no-op: 2PL admits none of the anomalies, and
        // the default output must stay byte-identical.
        let at_serializable = Weseer::new()
            .with_isolation(IsolationLevel::Serializable)
            .analyze(&Shopizer);
        assert!(at_serializable.anomalies.is_none());

        let analysis = Weseer::new()
            .with_isolation(IsolationLevel::ReadCommitted)
            .analyze(&Shopizer);
        let anomalies = analysis.anomalies.expect("weak level runs the oracle");
        assert_eq!(anomalies.isolation, "read-committed");
        assert_eq!(anomalies.candidates.len(), anomalies.verdicts.len());
        let json = anomalies.to_json();
        assert!(json.starts_with("{\"isolation\":\"read-committed\""));
        // Deterministic: a second run produces identical JSON.
        let again = Weseer::new()
            .with_isolation(IsolationLevel::ReadCommitted)
            .analyze(&Shopizer);
        assert_eq!(again.anomalies.unwrap().to_json(), json);
    }
}

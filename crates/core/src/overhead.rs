//! The concolic-execution overhead experiment (paper Table III):
//! per-API unit-test execution time under the original (native) engine,
//! the interpretive engine, and the full concolic engine.

use std::time::{Duration, Instant};
use weseer_apps::app::collect_trace;
use weseer_apps::{AppLocks, ECommerceApp, Fixes};
use weseer_concolic::{ExecMode, LibraryMode};
use weseer_db::Database;

/// One Table III row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// API / unit-test name.
    pub api: String,
    /// Native (JIT-equivalent) execution time.
    pub original: Duration,
    /// Interpretive execution (tracing bookkeeping, no symbolic state).
    pub interpretive: Duration,
    /// Full concolic execution.
    pub concolic: Duration,
}

impl OverheadRow {
    /// Interpretive / original slowdown.
    pub fn interpretive_factor(&self) -> f64 {
        ratio(self.interpretive, self.original)
    }

    /// Concolic / original slowdown.
    pub fn concolic_factor(&self) -> f64 {
        ratio(self.concolic, self.original)
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-9)
}

/// Measure Table III for an application.
///
/// Each mode runs the full chained unit-test suite `repetitions` times on
/// fresh databases; per-API times are the minimum over repetitions
/// (steady-state, like the paper's single measured run on a warm JVM).
pub fn measure_overhead(app: &dyn ECommerceApp, repetitions: usize) -> Vec<OverheadRow> {
    let tests = app.unit_tests();
    let mut best: Vec<[Duration; 3]> = vec![[Duration::MAX; 3]; tests.len()];
    for (mode_idx, mode) in [ExecMode::Native, ExecMode::Interpretive, ExecMode::Concolic]
        .into_iter()
        .enumerate()
    {
        for _ in 0..repetitions.max(1) {
            let db = Database::new(app.catalog());
            app.seed(&db);
            let fixes = Fixes::none();
            let locks = AppLocks::new();
            for (i, test) in tests.iter().enumerate() {
                let start = Instant::now();
                let (_trace, _ctx, result) =
                    collect_trace(app, test, &db, &fixes, &locks, mode, LibraryMode::Modeled);
                let elapsed = start.elapsed();
                result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
                if elapsed < best[i][mode_idx] {
                    best[i][mode_idx] = elapsed;
                }
            }
        }
    }
    tests
        .iter()
        .zip(best)
        .map(|(api, [original, interpretive, concolic])| OverheadRow {
            api: api.to_string(),
            original,
            interpretive,
            concolic,
        })
        .collect()
}

/// The path-condition pruning experiment (paper Sec. IV: Broadleaf's Ship
/// unit test drops from 656K to 2.7K conditions once driver, built-in,
/// and container internals are modeled instead of executed concolically).
#[derive(Debug, Clone)]
pub struct PruningRow {
    /// API name.
    pub api: String,
    /// Path conditions recorded with library internals executed
    /// concolically (naive).
    pub naive: usize,
    /// Path conditions recorded with library modeling (pruned).
    pub modeled: usize,
}

impl PruningRow {
    /// naive / modeled reduction factor.
    pub fn reduction(&self) -> f64 {
        self.naive as f64 / (self.modeled.max(1)) as f64
    }
}

/// Measure the pruning experiment over every unit test of an app.
pub fn measure_pruning(app: &dyn ECommerceApp) -> Vec<PruningRow> {
    let mut rows = Vec::new();
    let mut counts = Vec::new();
    for lib_mode in [LibraryMode::Naive, LibraryMode::Modeled] {
        let db = Database::new(app.catalog());
        app.seed(&db);
        let fixes = Fixes::none();
        let locks = AppLocks::new();
        let mut per_api = Vec::new();
        for test in app.unit_tests() {
            let (trace, _ctx, result) =
                collect_trace(app, test, &db, &fixes, &locks, ExecMode::Concolic, lib_mode);
            result.unwrap_or_else(|e| panic!("unit test {test} failed: {e}"));
            // Stats are cumulative per engine, but each test gets a fresh
            // engine inside collect_trace, so counts are per test.
            per_api.push((test.to_string(), trace.stats.total_path_conds()));
        }
        counts.push(per_api);
    }
    for ((api, naive), (_, modeled)) in counts[0].iter().zip(counts[1].iter()) {
        rows.push(PruningRow {
            api: api.clone(),
            naive: *naive,
            modeled: *modeled,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_apps::Broadleaf;

    #[test]
    fn overhead_modes_are_ordered() {
        let rows = measure_overhead(&Broadleaf, 2);
        assert_eq!(rows.len(), 7);
        // The *total* across APIs must show the Table III ordering:
        // concolic > interpretive ≥ native (individual APIs can be noisy).
        let total = |f: fn(&OverheadRow) -> Duration| -> Duration { rows.iter().map(f).sum() };
        let orig = total(|r| r.original);
        let interp = total(|r| r.interpretive);
        let conc = total(|r| r.concolic);
        assert!(
            conc > orig,
            "concolic {conc:?} should exceed native {orig:?}"
        );
        assert!(
            conc > interp,
            "concolic {conc:?} should exceed interpretive {interp:?}"
        );
    }

    #[test]
    fn pruning_reduces_path_conditions() {
        let rows = measure_pruning(&Broadleaf);
        let ship = rows.iter().find(|r| r.api == "Ship").expect("Ship row");
        assert!(
            ship.naive > 10 * ship.modeled.max(1),
            "expected an order-of-magnitude reduction, got {} → {}",
            ship.naive,
            ship.modeled
        );
        // Every API prunes at least somewhat.
        for r in &rows {
            assert!(r.naive >= r.modeled, "{r:?}");
        }
    }
}

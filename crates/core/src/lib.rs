//! # weseer-core
//!
//! The WeSEER tool facade: the end-to-end pipeline of paper Fig. 2
//! (concolic trace collection → three-phase deadlock diagnosis → grouped
//! reports) plus the experiment harnesses that regenerate the paper's
//! evaluation:
//!
//! * [`pipeline`] — Table II: run the tool on an application;
//! * [`overhead`] — Table III (execution-mode overhead) and the Sec. IV
//!   path-condition pruning measurement;
//! * [`perf`] — Figs. 10/11 (throughput vs. clients vs. fix
//!   configuration, with abort counters for Sec. VII-D).
//!
//! ```no_run
//! use weseer_core::Weseer;
//! use weseer_apps::Shopizer;
//!
//! let weseer = Weseer::new();
//! let analysis = weseer.analyze(&Shopizer);
//! for report in &analysis.diagnosis.deadlocks {
//!     println!("{report}");
//! }
//! ```

pub mod oracle;
pub mod overhead;
pub mod perf;
pub mod pipeline;
pub mod replay;

pub use oracle::DbPlanOracle;
pub use overhead::{measure_overhead, measure_pruning, OverheadRow, PruningRow};
pub use perf::{fix_configurations, run_perf_sweep, PerfConfig, PerfPoint};
pub use pipeline::{
    AnomalyAnalysis, AnomalyVerdict, AppAnalysis, ReplaySummary, TraceSummary, Weseer,
    FUNNEL_STAGES,
};
pub use replay::{prepare_db, replay, ReplayOutcome};

//! EXPLAIN-based index oracle: the paper's Sec. V-D future work, wired to
//! the storage engine.
//!
//! The analyzer's `InferPossibleIndexes` enumerates *every* index the
//! database might use, which over-approximates when multiple join orders
//! exist and causes false positives ("the database can choose the most
//! effective one"). [`DbPlanOracle`] asks the engine for its concrete
//! access plan — MySQL's `EXPLAIN` — and the analyzer then only models
//! locks on those indexes.

use weseer_analyzer::IndexOracle;
use weseer_db::Database;
use weseer_sqlir::Statement;

/// An [`IndexOracle`] backed by the storage engine's planner.
#[derive(Debug, Clone)]
pub struct DbPlanOracle {
    db: Database,
}

impl DbPlanOracle {
    /// Wrap a database (typically the one the traces were collected on).
    pub fn new(db: Database) -> Self {
        DbPlanOracle { db }
    }
}

impl IndexOracle for DbPlanOracle {
    fn plan(&self, stmt: &Statement) -> Option<Vec<(String, Option<String>)>> {
        // EXPLAIN with no parameter values: the planner's choice here
        // depends on predicate structure, not parameter values.
        let rows = self.db.explain(stmt, &[]);
        if rows.is_empty() {
            return None;
        }
        Some(rows.into_iter().map(|r| (r.alias, r.index)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder};

    fn db() -> Database {
        let catalog = Catalog::new(vec![TableBuilder::new("T")
            .col("ID", ColType::Int)
            .col("A", ColType::Int)
            .primary_key(&["ID"])
            .index("idx_a", &["A"])
            .build()
            .unwrap()])
        .unwrap();
        Database::new(catalog)
    }

    #[test]
    fn oracle_prefers_unique_point_access() {
        let oracle = DbPlanOracle::new(db());
        // Both PRIMARY and idx_a are usable; the engine picks PRIMARY.
        let stmt = parse("SELECT * FROM T t WHERE t.ID = ? AND t.A = ?").unwrap();
        let plan = oracle.plan(&stmt).unwrap();
        assert_eq!(plan, vec![("t".to_string(), Some("PRIMARY".to_string()))]);
    }

    #[test]
    fn oracle_reports_scans() {
        let oracle = DbPlanOracle::new(db());
        let stmt = parse("SELECT * FROM T t WHERE t.ID != ?").unwrap();
        let plan = oracle.plan(&stmt).unwrap();
        assert_eq!(plan[0].1, None, "inequality cannot use an index: {plan:?}");
    }
}

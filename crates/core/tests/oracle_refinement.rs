//! The EXPLAIN-oracle extension (paper Sec. V-D future work) eliminates a
//! wrong-index false positive: without the oracle the analyzer assumes a
//! secondary index *might* drive the SELECT and reports a deadlock
//! through its range locks; the engine's concrete plan uses the primary
//! index, and re-analysis with the oracle refutes the cycle.

use weseer_analyzer::{diagnose, diagnose_with_oracle, AnalyzerConfig, CollectedTrace};
use weseer_concolic::{loc, shared, take_ctx, ExecMode};
use weseer_core::DbPlanOracle;
use weseer_db::Database;
use weseer_orm::OrmSession;
use weseer_sqlir::{parser::parse, Catalog, ColType, TableBuilder, Value};

fn setup() -> Database {
    let catalog = Catalog::new(vec![TableBuilder::new("Slot")
        .col("ID", ColType::Int)
        .col("A", ColType::Int)
        .primary_key(&["ID"])
        .index("idx_a", &["A"])
        .build()
        .unwrap()])
    .unwrap();
    let db = Database::new(catalog);
    db.seed("Slot", vec![vec![Value::Int(1), Value::Int(1)]]);
    db.bump_id("Slot", 1);
    db
}

/// A transaction that probes a freshly generated id (empty SELECT whose
/// WHERE mentions both the primary key and the secondary column) and then
/// inserts the row.
fn collect(db: &Database) -> CollectedTrace {
    let engine = shared(ExecMode::Concolic);
    engine.borrow_mut().start_concolic();
    let mut session = OrmSession::new(engine.clone(), db.session(), db.catalog().clone());
    let id = {
        let v = db.next_id("Slot");
        engine.borrow_mut().make_unique_id("Slot", Value::Int(v))
    };
    let a = engine.borrow_mut().make_symbolic("bucket", Value::Int(3));
    session.begin();
    let q = parse("SELECT * FROM Slot s WHERE s.ID = ? AND s.A = ?").unwrap();
    let rs = session
        .raw(&q, &[id.clone(), a.clone()], loc!("reserveSlot"))
        .unwrap();
    assert!(rs.is_empty(), "freshly generated ids are unused");
    session.persist(
        "Slot",
        vec![("ID".into(), id), ("A".into(), a)],
        loc!("reserveSlot"),
    );
    session.commit(loc!("reserveSlot")).unwrap();
    let trace = session.driver_mut().take_trace("ReserveSlot");
    drop(session);
    CollectedTrace::new(trace, take_ctx(&engine))
}

#[test]
fn explain_oracle_removes_wrong_index_false_positive() {
    let db = setup();
    let traces = vec![collect(&db)];
    let config = AnalyzerConfig::default();

    // Without the oracle: the analyzer must consider idx_a as a possible
    // driver of the empty SELECT; its range lock conflicts with the other
    // instance's INSERT (equal symbolic buckets), so a deadlock is
    // reported. The generated ids themselves cannot collide (distinctness
    // axioms), so this cycle exists *only* through the secondary index.
    let without = diagnose(db.catalog(), &traces, &config);
    assert!(
        !without.deadlocks.is_empty(),
        "without EXPLAIN the wrong-index cycle must be reported: {:?}",
        without.stats
    );

    // With the oracle: the engine's plan uses PRIMARY (unique point
    // beats the secondary equality), so only primary locks are modeled
    // and the id-distinctness axioms refute every cycle.
    let oracle = DbPlanOracle::new(db.clone());
    let traces = vec![collect(&db)];
    let with = diagnose_with_oracle(db.catalog(), &traces, &config, Some(&oracle));
    assert!(
        with.deadlocks.is_empty(),
        "EXPLAIN refinement must refute the wrong-index cycle: {:#?}",
        with.deadlocks
            .iter()
            .map(|r| r.cycle.clone())
            .collect::<Vec<_>>()
    );
    assert!(with.stats.smt_unsat >= 1, "{:?}", with.stats);
}

#[test]
fn oracle_preserves_true_positives() {
    // The Fig. 1 finishOrder deadlock survives EXPLAIN refinement — it
    // goes through indexes the engine genuinely uses.
    use weseer_apps::{ECommerceApp, Shopizer};
    use weseer_core::Weseer;
    let weseer = Weseer::new();
    let (traces, db) = weseer.collect_traces(&Shopizer, &weseer_apps::Fixes::none());
    let oracle = DbPlanOracle::new(db);
    let with = diagnose_with_oracle(
        &Shopizer.catalog(),
        &traces,
        &AnalyzerConfig::default(),
        Some(&oracle),
    );
    assert!(
        !with.deadlocks.is_empty(),
        "true deadlocks must survive refinement: {:?}",
        with.stats
    );
}

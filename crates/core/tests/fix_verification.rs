//! Fix verification at the analyzer level: re-running WeSEER on *fixed*
//! application code must make the corresponding deadlock rows disappear.
//!
//! The d17/d18 case is the showpiece: the f10/f11 fixes sort product
//! accesses with *recorded* comparisons, so the fine-grained phase sees
//! path conditions `pid₁ < pid₂` in both instances — and the ordering
//! cycle's conflict conditions (`A1.pid₁ = A2.pid₂ ∧ A2.pid₁ = A1.pid₂`)
//! become unsatisfiable. The tool thereby *proves* the reordering fix.

use weseer_apps::{classify, Fix, Fixes, KnownDeadlock, Shopizer};
use weseer_core::Weseer;

#[test]
fn sorted_shopizer_has_no_ordering_deadlocks() {
    let weseer = Weseer::new();

    // Unfixed: ordering deadlocks d17/d18 present.
    let unfixed = weseer.analyze(&Shopizer);
    assert!(
        unfixed.groups.contains_key(&KnownDeadlock::D17),
        "{:?}",
        unfixed.groups
    );
    assert!(unfixed.groups.contains_key(&KnownDeadlock::D18));

    // With the ordering fixes on (f10 + f11) the ordering cycles must be
    // refuted by the recorded sort comparisons; the RMW deadlocks
    // (d14–d16) are *runtime*-fixed by app-level locks (f9), which the
    // analyzer deliberately does not model (Sec. V-D false positives), so
    // they may still be reported.
    let mut fixes = Fixes::none();
    fixes.enable(Fix::F10);
    fixes.enable(Fix::F11);
    let fixed = weseer.analyze_with_fixes(&Shopizer, &fixes);
    // d17 (update-order cycles): fully refuted — both instances' sorted
    // updates carry pid₁ < pid₂ path conditions.
    let d17: Vec<_> = fixed
        .diagnosis
        .deadlocks
        .iter()
        .filter(|r| classify("shopizer", r) == KnownDeadlock::D17)
        .collect();
    assert!(
        d17.is_empty(),
        "update-order deadlocks should be UNSAT under sorted access: {d17:#?}"
    );
    // d18 (read-order cycles): mostly refuted, EXCEPT cycles through Add's
    // product *validation* read, which necessarily precedes the sorted
    // re-reads and therefore breaks global ordering — a genuine residual
    // that only f9's application locks remove. The analyzer surfaces
    // exactly this subtlety.
    for r in fixed
        .diagnosis
        .deadlocks
        .iter()
        .filter(|r| classify("shopizer", r) == KnownDeadlock::D18)
    {
        assert!(
            r.statements
                .iter()
                .any(|s| s.trigger.mentions("Add::readProduct")),
            "a sorted-reads ordering cycle survived without the unsorted \
             validation read: {r}"
        );
    }
    // The solver did real refutation work.
    assert!(
        fixed.diagnosis.stats.smt_unsat > unfixed.diagnosis.stats.smt_unsat,
        "fixed: {:?} vs unfixed: {:?}",
        fixed.diagnosis.stats,
        unfixed.diagnosis.stats
    );
}

#[test]
fn fixed_broadleaf_loses_its_separated_select_deadlocks() {
    // f1 (persist instead of merge) removes the d1 SELECT entirely, so the
    // Customer cycle cannot even form coarsely.
    let weseer = Weseer::new();
    let mut fixes = Fixes::none();
    fixes.enable(Fix::F1);
    let analysis = weseer.analyze_with_fixes(&weseer_apps::Broadleaf, &fixes);
    assert!(
        !analysis.groups.contains_key(&KnownDeadlock::D1),
        "d1 must disappear with f1: {:?}",
        analysis.groups
    );
    // Other rows are still present (only f1 was applied).
    assert!(analysis.groups.contains_key(&KnownDeadlock::D3_4));
}

//! Human-readable metric reports.
//!
//! [`render_report`] turns a [`MetricsSnapshot`] into a fixed-width text
//! report with a **diagnosis funnel** (how many candidates survived each
//! pruning stage, with the drop ratio), a **timing table** for every
//! span and latency histogram (count, total, mean, p50/p90/p99), the raw
//! counters, and a one-line event digest. The funnel stages are supplied
//! by the caller as `(label, counter name)` pairs so this crate stays
//! agnostic of pipeline-specific metric names.

use crate::snapshot::MetricsSnapshot;
use std::fmt::Write as _;

/// Format a microsecond quantity for humans (`12µs`, `3.4ms`, `1.2s`).
pub fn fmt_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Render `snap` as a text report titled `title`. `funnel` lists the
/// pruning stages to display, outermost first, as
/// `(human label, counter name)` pairs; stages whose counter is absent
/// are shown as `-`.
pub fn render_report(snap: &MetricsSnapshot, title: &str, funnel: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");

    if !funnel.is_empty() {
        let _ = writeln!(out, "\n-- diagnosis funnel --");
        let width = funnel.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut prev: Option<u64> = None;
        for (label, counter) in funnel {
            let present = snap.counters.contains_key(*counter);
            let v = snap.counter(counter);
            let keep = match prev {
                Some(p) if p > 0 => format!("  ({:.1}% of previous)", 100.0 * v as f64 / p as f64),
                _ => String::new(),
            };
            if present {
                let _ = writeln!(out, "{label:width$}  {v:>8}{keep}");
                prev = Some(v);
            } else {
                let _ = writeln!(out, "{label:width$}  {:>8}", "-");
            }
        }
    }

    let timing: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !timing.is_empty() {
        let _ = writeln!(out, "\n-- timings (µs unless noted) --");
        let width = timing
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let _ = writeln!(
            out,
            "{:width$}  {:>8}  {:>10}  {:>8}  {:>8}  {:>8}  {:>8}",
            "name", "count", "total", "mean", "p50", "p90", "p99"
        );
        for (name, h) in &timing {
            let _ = writeln!(
                out,
                "{name:width$}  {:>8}  {:>10}  {:>8}  {:>8}  {:>8}  {:>8}",
                h.count,
                fmt_micros(h.sum),
                fmt_micros(h.mean()),
                fmt_micros(h.p50()),
                fmt_micros(h.p90()),
                fmt_micros(h.p99()),
            );
        }
    }

    let in_funnel = |name: &str| funnel.iter().any(|(_, c)| *c == name);
    let counters: Vec<_> = snap
        .counters
        .iter()
        .filter(|(name, _)| !in_funnel(name))
        .collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "\n-- counters --");
        let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
        for (name, v) in &counters {
            let _ = writeln!(out, "{name:width$}  {v:>10}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\n-- gauges --");
        let width = snap.gauges.keys().map(String::len).max().unwrap_or(4);
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:width$}  {v:>10}");
        }
    }

    if !snap.events.is_empty() || snap.events_dropped > 0 {
        use crate::event::Level;
        let count_of = |l: Level| snap.events.iter().filter(|e| e.level == l).count();
        let _ = writeln!(
            out,
            "\n-- events: {} recorded ({} debug, {} info, {} warn), {} dropped --",
            snap.events.len(),
            count_of(Level::Debug),
            count_of(Level::Info),
            count_of(Level::Warn),
            snap.events_dropped,
        );
        for e in snap
            .events
            .iter()
            .filter(|e| e.level == Level::Warn)
            .take(10)
        {
            let _ = writeln!(out, "  [warn {}] {}", e.target, e.message);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::registry::Registry;

    #[test]
    fn fmt_micros_scales() {
        assert_eq!(fmt_micros(12), "12µs");
        assert_eq!(fmt_micros(3_400), "3.4ms");
        assert_eq!(fmt_micros(1_200_000), "1.20s");
    }

    #[test]
    fn report_contains_funnel_and_timings() {
        let r = Registry::new();
        r.set_enabled(true);
        r.add("f.pairs", 100);
        r.add("f.survivors", 12);
        r.observe("span.analyze", 5_000);
        r.record_event(Level::Warn, "db.lock", "deadlock".into());
        let text = render_report(
            &r.snapshot(),
            "test",
            &[
                ("txn pairs", "f.pairs"),
                ("survivors", "f.survivors"),
                ("missing", "f.nope"),
            ],
        );
        assert!(text.contains("=== test ==="));
        assert!(text.contains("txn pairs"));
        assert!(text.contains("(12.0% of previous)"));
        // Absent funnel counters render as '-'.
        assert!(text.contains('-'));
        assert!(text.contains("span.analyze"));
        assert!(text.contains("1 warn"));
        assert!(text.contains("[warn db.lock] deadlock"));
        // Funnel counters are not repeated in the counters section.
        assert!(!text.contains("f.pairs  "));
    }
}

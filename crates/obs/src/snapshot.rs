//! Point-in-time metric snapshots and JSON-lines export.
//!
//! A [`MetricsSnapshot`] is a plain-data copy of a registry's state:
//! cheap to clone, diffable with [`MetricsSnapshot::delta_since`]
//! (per-app and per-phase reporting takes a snapshot before and after a
//! stage and subtracts), and serializable to JSON lines without any
//! external dependency via a small hand-rolled writer.

use crate::event::Event;
use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Immutable copy of every metric in a registry. See the
/// [module docs](self).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Events currently retained in the ring.
    pub events: Vec<Event>,
    /// Events dropped due to ring capacity.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Value of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if it has been recorded to.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Metrics accumulated since `earlier`: counters and histograms are
    /// subtracted, gauges keep their current value, and only events with
    /// sequence numbers past `earlier`'s last are retained.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let empty = HistogramSnapshot::default();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.delta_since(earlier.histograms.get(k).unwrap_or(&empty)),
                )
            })
            .collect();
        let next_seq = earlier.events.last().map_or(0, |e| e.seq + 1);
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            events: self
                .events
                .iter()
                .filter(|e| e.seq >= next_seq)
                .cloned()
                .collect(),
            events_dropped: self.events_dropped.saturating_sub(earlier.events_dropped),
        }
    }

    /// Serialize as JSON lines: one object per metric/event, each with a
    /// `"type"` discriminant. Histogram lines include derived
    /// p50/p90/p99/mean so downstream tooling needs no bucket math. An
    /// optional `scope` (e.g. the app name) is attached to every line.
    pub fn to_json_lines(&self, scope: Option<&str>) -> String {
        let mut out = String::new();
        let scope_field = |out: &mut String| {
            if let Some(s) = scope {
                out.push_str(",\"scope\":");
                write_json_string(out, s);
            }
        };
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_json_string(&mut out, name);
            let _ = write!(out, ",\"value\":{value}");
            scope_field(&mut out);
            out.push_str("}\n");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_json_string(&mut out, name);
            let _ = write!(out, ",\"value\":{value}");
            scope_field(&mut out);
            out.push_str("}\n");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            );
            for (i, (b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{n}]");
            }
            out.push(']');
            scope_field(&mut out);
            out.push_str("}\n");
        }
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"seq\":{},\"level\":\"{}\",\"target\":",
                e.seq,
                e.level.as_str()
            );
            write_json_string(&mut out, &e.target);
            out.push_str(",\"message\":");
            write_json_string(&mut out, &e.message);
            scope_field(&mut out);
            out.push_str("}\n");
        }
        if self.events_dropped > 0 {
            let _ = write!(
                out,
                "{{\"type\":\"events_dropped\",\"value\":{}",
                self.events_dropped
            );
            scope_field(&mut out);
            out.push_str("}\n");
        }
        out
    }
}

/// Append `s` as a JSON string literal (quotes and escapes included).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::registry::Registry;

    fn sample() -> Registry {
        let r = Registry::new();
        r.set_enabled(true);
        r.add("a.count", 3);
        r.gauge_set("g", -2);
        r.observe("lat", 100);
        r.observe("lat", 200);
        r.record_event(Level::Warn, "db.lock", "victim \"txn-1\"\naborted".into());
        r
    }

    #[test]
    fn delta_subtracts_counters_and_events() {
        let r = sample();
        let before = r.snapshot();
        r.add("a.count", 4);
        r.observe("lat", 400);
        r.record_event(Level::Info, "t", "second".into());
        let d = r.snapshot().delta_since(&before);
        assert_eq!(d.counter("a.count"), 4);
        assert_eq!(d.histogram("lat").unwrap().count, 1);
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].message, "second");
    }

    #[test]
    fn delta_with_empty_baseline_is_identity_for_counters() {
        let r = sample();
        let snap = r.snapshot();
        let d = snap.delta_since(&MetricsSnapshot::default());
        assert_eq!(d.counters, snap.counters);
        assert_eq!(d.events.len(), snap.events.len());
    }

    #[test]
    fn json_lines_are_parseable_shape() {
        let snap = sample().snapshot();
        let text = snap.to_json_lines(Some("broadleaf"));
        let lines: Vec<&str> = text.lines().collect();
        // counter + gauge + histogram + event.
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"scope\":\"broadleaf\""), "line: {line}");
        }
        assert!(text.contains("\"type\":\"counter\",\"name\":\"a.count\",\"value\":3"));
        assert!(text.contains("\"p50\":"));
        // Escaping: embedded quote and newline survive as escapes.
        assert!(text.contains("victim \\\"txn-1\\\"\\naborted"));
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\n\t\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    }
}

//! The trace-timeline recorder.
//!
//! A process-global, bounded, drop-counting ring of timestamped records:
//! every RAII span ([`crate::span::SpanGuard`]) and key pipeline event
//! (SMT solves with tier and verdict, phase transitions, store lookups,
//! replay schedules, lock waits) lands here when the timeline is enabled.
//! Each record carries the *lane* of the thread that produced it, so the
//! scoped-thread scheduler's workers show up as separate rows when the
//! snapshot is exported as Chrome trace-event JSON ([`crate::chrome`]).
//!
//! The timeline has its own enabled flag, independent of the metrics
//! registry: `reproduce --trace-out` turns on only the timeline,
//! `--metrics-out` only the registry, and the two compose. While
//! disabled, every record path is a single relaxed atomic load and an
//! early return — the same contract as the registry — so instrumentation
//! stays in hot code unconditionally.
//!
//! Records past [`TIMELINE_CAPACITY`] evict the oldest entry and bump a
//! drop counter (kept in the snapshot), so a long run degrades to "the
//! most recent window" instead of unbounded memory.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many records the timeline retains before dropping the oldest.
/// Sized so a full diagnose-plus-replay run over one app (~90k records,
/// dominated by replay-phase lock events) fits without evicting the
/// earlier phases' spans and SMT solves.
pub const TIMELINE_CAPACITY: usize = 262_144;

/// One timestamped record. Timestamps are microseconds since the
/// timeline was first enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRecord {
    /// Record name (span path, or event name like `smt.solve`).
    pub name: String,
    /// Category (`span`, `smt`, `db`, `store`, `replay`, `analyzer`).
    pub cat: &'static str,
    /// Start time, µs since the timeline epoch.
    pub ts_us: u64,
    /// Duration in µs for completed spans; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Index into [`TimelineSnapshot::lanes`] of the recording thread.
    pub lane: u32,
    /// Free-form key/value annotations (tier, verdict, txn, …).
    pub args: Vec<(String, String)>,
}

/// Point-in-time copy of the timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Retained records, oldest first.
    pub records: Vec<TimelineRecord>,
    /// Lane names by index (thread names; workers register theirs).
    pub lanes: Vec<String>,
    /// Records evicted due to [`TIMELINE_CAPACITY`].
    pub dropped: u64,
}

#[derive(Default)]
struct TimelineState {
    records: std::collections::VecDeque<TimelineRecord>,
    lanes: Vec<String>,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<TimelineState> {
    static STATE: OnceLock<Mutex<TimelineState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(TimelineState::default()))
}

/// The instant the timeline was first enabled; all timestamps are
/// relative to it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Lane index of this thread (`u32::MAX` = not yet assigned).
    static LANE: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Whether the timeline is recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn timeline recording on or off. The first enable pins the epoch
/// that all timestamps are measured from.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Relaxed);
}

/// Microseconds since the timeline epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Lane index of the current thread, assigning one (named after the OS
/// thread, or `thread-<n>` when unnamed) on first use. The assignment
/// itself takes the timeline lock; subsequent calls are a thread-local
/// read.
fn lane_of_current_thread(st: &mut TimelineState) -> u32 {
    LANE.with(|l| {
        let cur = l.get();
        if cur != u32::MAX {
            return cur;
        }
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{}", st.lanes.len()));
        let idx = st.lanes.len() as u32;
        st.lanes.push(name);
        l.set(idx);
        idx
    })
}

/// Override the current thread's lane name (workers call this — or are
/// spawned as named threads — so their lane reads `analyzer.worker3`
/// instead of `thread-7`).
pub fn set_lane_name(name: &str) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().unwrap();
    let lane = lane_of_current_thread(&mut st);
    st.lanes[lane as usize] = name.to_string();
}

fn push(st: &mut TimelineState, rec: TimelineRecord) {
    if st.records.len() >= TIMELINE_CAPACITY {
        st.records.pop_front();
        st.dropped += 1;
    }
    st.records.push_back(rec);
}

/// Record an instant event at "now".
pub fn instant(name: &str, cat: &'static str, args: &[(&str, String)]) {
    if !enabled() {
        return;
    }
    let ts_us = now_us();
    let args = args
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let mut st = state().lock().unwrap();
    let lane = lane_of_current_thread(&mut st);
    push(
        &mut st,
        TimelineRecord {
            name: name.to_string(),
            cat,
            ts_us,
            dur_us: None,
            lane,
            args,
        },
    );
}

/// Record a completed duration that started at `start` and ends now
/// (SMT solves, span drops).
pub fn complete_since(name: &str, cat: &'static str, start: Instant, args: &[(&str, String)]) {
    if !enabled() {
        return;
    }
    let dur_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let ts_us = start
        .saturating_duration_since(epoch())
        .as_micros()
        .min(u64::MAX as u128) as u64;
    let args = args
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let mut st = state().lock().unwrap();
    let lane = lane_of_current_thread(&mut st);
    push(
        &mut st,
        TimelineRecord {
            name: name.to_string(),
            cat,
            ts_us,
            dur_us: Some(dur_us),
            lane,
            args,
        },
    );
}

/// Copy the current timeline contents.
pub fn snapshot() -> TimelineSnapshot {
    let st = state().lock().unwrap();
    TimelineSnapshot {
        records: st.records.iter().cloned().collect(),
        lanes: st.lanes.clone(),
        dropped: st.dropped,
    }
}

/// Clear all records and the drop counter. Lane assignments survive
/// (threads keep their thread-local index), so lane names are retained.
pub fn reset() {
    let mut st = state().lock().unwrap();
    st.records.clear();
    st.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Timeline tests share the global enabled flag with the span tests;
    /// serialize on the crate-wide mutex and only assert on records they
    /// created themselves.
    use crate::global_test_lock as test_lock;

    #[test]
    fn disabled_timeline_records_nothing() {
        let _l = test_lock();
        set_enabled(false);
        instant("tl_test_disabled", "test", &[]);
        assert!(!snapshot()
            .records
            .iter()
            .any(|r| r.name == "tl_test_disabled"));
    }

    #[test]
    fn instants_and_completes_are_recorded_with_lanes() {
        let _l = test_lock();
        set_enabled(true);
        let start = Instant::now();
        instant("tl_test_instant", "test", &[("k", "v".to_string())]);
        complete_since("tl_test_complete", "test", start, &[]);
        set_enabled(false);
        let snap = snapshot();
        let i = snap
            .records
            .iter()
            .find(|r| r.name == "tl_test_instant")
            .expect("instant recorded");
        assert_eq!(i.dur_us, None);
        assert_eq!(i.args, vec![("k".to_string(), "v".to_string())]);
        let c = snap
            .records
            .iter()
            .find(|r| r.name == "tl_test_complete")
            .expect("complete recorded");
        assert!(c.dur_us.is_some());
        assert!(c.ts_us <= i.ts_us + 1_000_000, "epoch-relative timestamps");
        // Both came from this thread: same lane, and the lane has a name.
        assert_eq!(i.lane, c.lane);
        assert!(snap.lanes.get(i.lane as usize).is_some());
    }

    #[test]
    fn worker_threads_get_their_own_named_lanes() {
        let _l = test_lock();
        set_enabled(true);
        let before: Vec<String> = snapshot().lanes;
        std::thread::Builder::new()
            .name("tl_test_worker".to_string())
            .spawn(|| instant("tl_test_from_worker", "test", &[]))
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let snap = snapshot();
        let rec = snap
            .records
            .iter()
            .find(|r| r.name == "tl_test_from_worker")
            .expect("worker record");
        assert_eq!(snap.lanes[rec.lane as usize], "tl_test_worker");
        assert!(snap.lanes.len() > before.len());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _l = test_lock();
        // Bounded behavior is tested on the real global (capacity is too
        // large to overflow cheaply), so exercise push() directly.
        let mut st = TimelineState::default();
        for i in 0..(TIMELINE_CAPACITY + 7) {
            push(
                &mut st,
                TimelineRecord {
                    name: format!("r{i}"),
                    cat: "test",
                    ts_us: i as u64,
                    dur_us: None,
                    lane: 0,
                    args: Vec::new(),
                },
            );
        }
        assert_eq!(st.records.len(), TIMELINE_CAPACITY);
        assert_eq!(st.dropped, 7);
        // Oldest were evicted.
        assert_eq!(st.records.front().unwrap().name, "r7");
    }

    #[test]
    fn reset_clears_records_but_keeps_lanes() {
        let _l = test_lock();
        set_enabled(true);
        instant("tl_test_reset", "test", &[]);
        let lanes_before = snapshot().lanes.len();
        reset();
        set_enabled(false);
        let snap = snapshot();
        assert!(!snap.records.iter().any(|r| r.name == "tl_test_reset"));
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.lanes.len(), lanes_before);
    }
}

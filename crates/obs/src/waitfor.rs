//! Live wait-for graph state for the `/waitfor` endpoint.
//!
//! The db crate's lock manager pushes its waits-for edge set here
//! whenever it changes (a transaction starts or stops waiting, releases,
//! or deadlocks), and keeps the most recent detected deadlock — its
//! victim-first cycle and the full edge set at detection time — so the
//! dashboard can show *why* the last abort happened even after the locks
//! have been rolled back. The feed is gated on the global registry's
//! enabled flag ([`crate::enabled`]), matching every other record path.
//!
//! Transactions are identified by their numeric id (the db crate's
//! `TxnId` payload); this crate stays dependency-free and renders them as
//! `t<n>`.

use crate::snapshot::write_json_string;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// The most recent deadlock the lock manager detected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// 1-based detection sequence number (monotonic over the process).
    pub seq: u64,
    /// The waits-for cycle, victim first.
    pub cycle: Vec<u64>,
    /// Every `(waiter, holder)` edge at detection time.
    pub edges: Vec<(u64, u64)>,
}

/// Point-in-time copy of the wait-for state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitForSnapshot {
    /// Current `(waiter, holder)` edges, sorted.
    pub edges: Vec<(u64, u64)>,
    /// How many times the edge set has been replaced.
    pub updates: u64,
    /// The last detected deadlock, if any.
    pub last_deadlock: Option<DeadlockInfo>,
}

#[derive(Default)]
struct State {
    edges: Vec<(u64, u64)>,
    updates: u64,
    deadlocks: u64,
    last_deadlock: Option<DeadlockInfo>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

/// Replace the current edge set (called by the lock manager whenever its
/// waits-for graph changes). No-op while the registry is disabled.
pub fn update_edges(edges: Vec<(u64, u64)>) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock().unwrap();
    if st.edges != edges {
        st.edges = edges;
        st.updates += 1;
    }
}

/// Record a detected deadlock: the victim-first `cycle` and the full
/// edge set at detection time. No-op while the registry is disabled.
pub fn record_deadlock(cycle: Vec<u64>, edges: Vec<(u64, u64)>) {
    if !crate::enabled() {
        return;
    }
    let mut st = state().lock().unwrap();
    st.deadlocks += 1;
    st.last_deadlock = Some(DeadlockInfo {
        seq: st.deadlocks,
        cycle,
        edges,
    });
}

/// Copy the current wait-for state.
pub fn snapshot() -> WaitForSnapshot {
    let st = state().lock().unwrap();
    WaitForSnapshot {
        edges: st.edges.clone(),
        updates: st.updates,
        last_deadlock: st.last_deadlock.clone(),
    }
}

/// Clear edges and the last deadlock (tests and per-run isolation).
pub fn reset() {
    let mut st = state().lock().unwrap();
    *st = State::default();
}

fn write_edges(out: &mut String, edges: &[(u64, u64)]) {
    out.push('[');
    for (i, (w, h)) in edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"waiter\":{w},\"holder\":{h}}}");
    }
    out.push(']');
}

/// Render `snap` as one JSON object:
/// `{"edges":[{"waiter":..,"holder":..}..],"updates":..,"last_deadlock":..}`.
pub fn to_json(snap: &WaitForSnapshot) -> String {
    let mut out = String::from("{\"edges\":");
    write_edges(&mut out, &snap.edges);
    let _ = write!(out, ",\"updates\":{},\"last_deadlock\":", snap.updates);
    match &snap.last_deadlock {
        None => out.push_str("null"),
        Some(d) => {
            let _ = write!(out, "{{\"seq\":{},\"cycle\":[", d.seq);
            for (i, t) in d.cycle.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{t}");
            }
            out.push_str("],\"edges\":");
            write_edges(&mut out, &d.edges);
            out.push('}');
        }
    }
    out.push('}');
    out
}

/// Render `snap` as a Graphviz digraph: current edges solid, the last
/// deadlock's cycle nodes red and its edges dashed.
pub fn to_dot(snap: &WaitForSnapshot) -> String {
    let mut out = String::from("digraph waitfor {\n  rankdir=LR;\n  node [shape=circle];\n");
    if let Some(d) = &snap.last_deadlock {
        let mut label = String::new();
        write_json_string(
            &mut label,
            &format!(
                "last deadlock #{}: {}",
                d.seq,
                d.cycle
                    .iter()
                    .map(|t| format!("t{t}"))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            ),
        );
        let _ = writeln!(out, "  label={label};");
        for t in &d.cycle {
            let _ = writeln!(out, "  \"t{t}\" [color=red, fontcolor=red];");
        }
        for (w, h) in &d.edges {
            let _ = writeln!(out, "  \"t{w}\" -> \"t{h}\" [style=dashed, color=red];");
        }
    }
    for (w, h) in &snap.edges {
        let _ = writeln!(out, "  \"t{w}\" -> \"t{h}\";");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::global_test_lock()
    }

    #[test]
    fn update_and_deadlock_round_trip() {
        let _l = test_lock();
        crate::set_enabled(true);
        reset();
        update_edges(vec![(1, 2), (2, 3)]);
        update_edges(vec![(1, 2), (2, 3)]); // unchanged: not counted
        record_deadlock(vec![3, 1, 2], vec![(1, 2), (2, 3), (3, 1)]);
        update_edges(Vec::new());
        crate::set_enabled(false);
        let snap = snapshot();
        assert!(snap.edges.is_empty());
        assert_eq!(snap.updates, 2);
        let d = snap.last_deadlock.as_ref().unwrap();
        assert_eq!(d.seq, 1);
        assert_eq!(d.cycle, vec![3, 1, 2]);
        assert_eq!(d.edges.len(), 3);
        reset();
    }

    #[test]
    fn disabled_feed_is_inert() {
        let _l = test_lock();
        crate::set_enabled(false);
        reset();
        update_edges(vec![(9, 8)]);
        record_deadlock(vec![9], vec![(9, 8)]);
        let snap = snapshot();
        assert!(snap.edges.is_empty());
        assert!(snap.last_deadlock.is_none());
    }

    #[test]
    fn json_and_dot_rendering() {
        let snap = WaitForSnapshot {
            edges: vec![(1, 2)],
            updates: 5,
            last_deadlock: Some(DeadlockInfo {
                seq: 2,
                cycle: vec![4, 3],
                edges: vec![(3, 4), (4, 3)],
            }),
        };
        let json = to_json(&snap);
        assert_eq!(
            json,
            "{\"edges\":[{\"waiter\":1,\"holder\":2}],\"updates\":5,\
             \"last_deadlock\":{\"seq\":2,\"cycle\":[4,3],\
             \"edges\":[{\"waiter\":3,\"holder\":4},{\"waiter\":4,\"holder\":3}]}}"
        );
        let dot = to_dot(&snap);
        assert!(dot.starts_with("digraph waitfor {"));
        assert!(dot.contains("\"t1\" -> \"t2\";"));
        assert!(dot.contains("\"t4\" [color=red"));
        assert!(dot.contains("\"t3\" -> \"t4\" [style=dashed"));
        assert!(dot.contains("last deadlock #2: t4 -> t3"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = WaitForSnapshot::default();
        assert_eq!(
            to_json(&snap),
            "{\"edges\":[],\"updates\":0,\"last_deadlock\":null}"
        );
        assert_eq!(
            to_dot(&snap),
            "digraph waitfor {\n  rankdir=LR;\n  node [shape=circle];\n}\n"
        );
    }
}

//! Hierarchical timing spans.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop
//! and records it (in microseconds) into the histogram
//! `span.<dotted.path>`, where the path reflects the stack of spans open
//! on the current thread: a span `"phase1"` opened while `"analyze"` is
//! active records under `span.analyze.phase1`.
//!
//! Spans also feed the trace timeline ([`crate::timeline`]) when it is
//! enabled: each dropped guard records a completed duration under its
//! dotted path, which is how every instrumented stage shows up in the
//! Chrome trace export without any extra call sites. The two sinks are
//! independent — a span records into the histogram only while the
//! registry is enabled and into the timeline only while the timeline is.
//!
//! While both are disabled, `SpanGuard::enter` returns an inert guard
//! after two relaxed atomic loads — no clock read, no thread-local
//! traffic — so spans may be left in hot code unconditionally.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a timing span. Create with [`crate::span`] or
/// [`SpanGuard::enter`]; the measurement is recorded on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when observability was disabled at creation time.
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    path: String,
    start: Instant,
    /// Record into the metrics histogram on drop.
    metrics: bool,
    /// Record into the trace timeline on drop.
    timeline: bool,
}

impl SpanGuard {
    /// Open a span named `name`, nested under any spans already open on
    /// this thread. Inert when both the global registry and the timeline
    /// are disabled.
    pub fn enter(name: &str) -> SpanGuard {
        let metrics = crate::registry::global().enabled();
        let timeline = crate::timeline::enabled();
        if !metrics && !timeline {
            return SpanGuard { active: None };
        }
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_string());
            stack.join(".")
        });
        SpanGuard {
            active: Some(ActiveSpan {
                path,
                start: Instant::now(),
                metrics,
                timeline,
            }),
        }
    }

    /// Dotted path of this span (`None` for inert guards).
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            if active.metrics {
                let elapsed = active.start.elapsed();
                crate::registry::global()
                    .observe_duration(&format!("span.{}", active.path), elapsed);
            }
            if active.timeline {
                crate::timeline::complete_since(&active.path, "span", active.start, &[]);
            }
            STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the global registry and timeline (and their
    /// enabled flags) with the timeline tests, so they serialize on the
    /// crate-wide mutex, use distinctive span names, and only assert on
    /// their own metrics.
    use crate::global_test_lock as test_lock;

    #[test]
    fn nesting_builds_dotted_paths() {
        let _l = test_lock();
        crate::set_enabled(true);
        {
            let outer = SpanGuard::enter("span_test_outer");
            assert_eq!(outer.path(), Some("span_test_outer"));
            {
                let inner = SpanGuard::enter("span_test_inner");
                assert_eq!(inner.path(), Some("span_test_outer.span_test_inner"));
            }
            // Sibling after inner dropped: nests under outer only.
            let sibling = SpanGuard::enter("span_test_sib");
            assert_eq!(sibling.path(), Some("span_test_outer.span_test_sib"));
        }
        let snap = crate::snapshot();
        assert_eq!(snap.histogram("span.span_test_outer").unwrap().count, 1);
        assert_eq!(
            snap.histogram("span.span_test_outer.span_test_inner")
                .unwrap()
                .count,
            1
        );
        // After all guards dropped, a fresh span is top-level again.
        let top = SpanGuard::enter("span_test_top");
        assert_eq!(top.path(), Some("span_test_top"));
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _l = test_lock();
        let r = crate::registry::global();
        r.set_enabled(false);
        let g = SpanGuard::enter("span_test_disabled");
        assert_eq!(g.path(), None);
        drop(g);
        r.set_enabled(true);
        // Re-enable and confirm nothing was recorded for the inert span.
        assert!(crate::snapshot()
            .histogram("span.span_test_disabled")
            .is_none());
    }

    #[test]
    fn spans_flow_into_the_timeline_without_the_registry() {
        let _l = test_lock();
        let r = crate::registry::global();
        r.set_enabled(false);
        crate::timeline::set_enabled(true);
        {
            let _g = SpanGuard::enter("span_test_timeline_only");
        }
        crate::timeline::set_enabled(false);
        let snap = crate::timeline::snapshot();
        assert!(snap
            .records
            .iter()
            .any(|rec| rec.name == "span_test_timeline_only"
                && rec.cat == "span"
                && rec.dur_us.is_some()));
        // The registry was off: no histogram was recorded.
        r.set_enabled(true);
        assert!(crate::snapshot()
            .histogram("span.span_test_timeline_only")
            .is_none());
    }

    #[test]
    fn spans_are_per_thread() {
        let _l = test_lock();
        crate::set_enabled(true);
        let _outer = SpanGuard::enter("span_test_thread_outer");
        let handle = std::thread::spawn(|| {
            let g = SpanGuard::enter("span_test_thread_child");
            g.path().map(str::to_string)
        });
        // The child thread has its own stack: no nesting under outer.
        assert_eq!(
            handle.join().unwrap().as_deref(),
            Some("span_test_thread_child")
        );
    }
}

//! Prometheus text-format rendering of a metrics snapshot.
//!
//! [`render_prometheus`] turns a [`MetricsSnapshot`] into the plain-text
//! exposition format (version 0.0.4) served by the `/metrics` endpoint:
//! counters (with the conventional `_total` suffix), gauges, and each
//! histogram as a summary — `quantile`-labeled series estimated from the
//! log-scale buckets plus `_sum`, `_count`, `_min`, and `_max`.
//!
//! Dotted metric names are sanitized to the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`) under a `weseer_` prefix; the original
//! dotted name is preserved in the `# HELP` line (with `\\` and `\n`
//! escaped per the exposition format). Output ordering is deterministic:
//! the snapshot's `BTreeMap`s iterate sorted, and the sections render in
//! a fixed order, so two snapshots with equal contents render to equal
//! bytes.

use crate::snapshot::MetricsSnapshot;
use std::fmt::Write as _;

/// Sanitize a dotted metric name into the Prometheus name grammar,
/// prefixed with `weseer_`: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("weseer_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline get two-character
/// escapes (the exposition-format rules).
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a label value: backslash, newline, and double quote.
pub fn escape_label_value(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out
}

/// Render `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let prom = sanitize_metric_name(name) + "_total";
        let _ = writeln!(out, "# HELP {prom} counter \"{}\"", escape_help(name));
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }

    for (name, value) in &snap.gauges {
        let prom = sanitize_metric_name(name);
        let _ = writeln!(out, "# HELP {prom} gauge \"{}\"", escape_help(name));
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {value}");
    }

    for (name, h) in &snap.histograms {
        let prom = sanitize_metric_name(name);
        let _ = writeln!(
            out,
            "# HELP {prom} log-scale histogram \"{}\" (microseconds for *_us and span.*)",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {prom} summary");
        for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
            let _ = writeln!(out, "{prom}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{prom}_sum {}", h.sum);
        let _ = writeln!(out, "{prom}_count {}", h.count);
        let _ = writeln!(out, "{prom}_min {}", h.min);
        let _ = writeln!(out, "{prom}_max {}", h.max);
    }

    let _ = writeln!(
        out,
        "# TYPE weseer_obs_events_dropped_total counter\nweseer_obs_events_dropped_total {}",
        snap.events_dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitization_maps_dots_and_odd_chars() {
        assert_eq!(sanitize_metric_name("smt.solve_us"), "weseer_smt_solve_us");
        assert_eq!(
            sanitize_metric_name("span.analyzer.worker0"),
            "weseer_span_analyzer_worker0"
        );
        assert_eq!(sanitize_metric_name("a-b c/d"), "weseer_a_b_c_d");
    }

    #[test]
    fn help_and_label_escaping() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label_value("x\"y\\z\n"), "x\\\"y\\\\z\\n");
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let r = Registry::new();
        r.set_enabled(true);
        r.add("smt.solve_calls", 7);
        r.gauge_set("analyzer.threads", 4);
        r.observe("smt.solve_us", 100);
        r.observe("smt.solve_us", 200);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE weseer_smt_solve_calls_total counter"));
        assert!(text.contains("weseer_smt_solve_calls_total 7"));
        assert!(text.contains("# TYPE weseer_analyzer_threads gauge"));
        assert!(text.contains("weseer_analyzer_threads 4"));
        assert!(text.contains("# TYPE weseer_smt_solve_us summary"));
        assert!(text.contains("weseer_smt_solve_us{quantile=\"0.5\"}"));
        assert!(text.contains("weseer_smt_solve_us_sum 300"));
        assert!(text.contains("weseer_smt_solve_us_count 2"));
        // The original dotted name survives in HELP.
        assert!(text.contains("# HELP weseer_smt_solve_us log-scale histogram \"smt.solve_us\""));
        assert!(text.contains("weseer_obs_events_dropped_total 0"));
    }

    #[test]
    fn ordering_is_deterministic() {
        let build = |order_flip: bool| {
            let r = Registry::new();
            r.set_enabled(true);
            let names = if order_flip {
                ["z.last", "a.first", "m.mid"]
            } else {
                ["m.mid", "z.last", "a.first"]
            };
            for n in names {
                r.add(n, 1);
            }
            render_prometheus(&r.snapshot())
        };
        let a = build(false);
        let b = build(true);
        assert_eq!(a, b);
        // Sorted by name within the counters section.
        let first = a.find("weseer_a_first_total 1").unwrap();
        let mid = a.find("weseer_m_mid_total 1").unwrap();
        let last = a.find("weseer_z_last_total 1").unwrap();
        assert!(first < mid && mid < last);
    }
}

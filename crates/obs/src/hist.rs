//! Log-scale histograms.
//!
//! Values are bucketed by their binary magnitude: bucket `b` holds values
//! in `[2^(b-1), 2^b)` (bucket 0 holds exactly 0). With 64 buckets this
//! covers the full `u64` range at a fixed memory cost, and recording is a
//! handful of relaxed atomic operations — no allocation, no locking.
//! Percentiles are estimated from the bucket boundaries (geometric
//! midpoint, clamped to the observed min/max), which keeps the relative
//! error under ~41% per value — plenty for latency reporting.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: one for zero plus one per binary magnitude.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A concurrent log-scale histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Copy the current contents into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        let count = self.count.load(Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sparse `(bucket index, occupancy)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from bucket boundaries.
    ///
    /// The estimate is the geometric midpoint of the bucket containing the
    /// target rank, clamped to the observed `[min, max]`; an empty
    /// histogram yields 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= target {
                let lo = bucket_lo(b as usize);
                let hi = bucket_hi(b as usize);
                // Geometric midpoint of [lo, hi] — appropriate for a
                // log-scale bucket — clamped to observed extremes.
                let mid = ((lo as f64) * (hi as f64)).sqrt().round() as u64;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise difference `self - earlier` (for per-phase deltas).
    ///
    /// `min`/`max` cannot be recovered from a subtraction, so the result
    /// carries the bucket-bound range of the surviving buckets.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut old: std::collections::BTreeMap<u8, u64> = std::collections::BTreeMap::new();
        for &(b, n) in &earlier.buckets {
            old.insert(b, n);
        }
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(b, n)| {
                let d = n.saturating_sub(old.get(&b).copied().unwrap_or(0));
                (d > 0).then_some((b, d))
            })
            .collect();
        let min = buckets
            .first()
            .map_or(0, |&(b, _)| bucket_lo(b as usize).max(self.min));
        let max = buckets
            .last()
            .map_or(0, |&(b, _)| bucket_hi(b as usize).min(self.max));
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..64 {
            assert_eq!(bucket_of(bucket_lo(b)), b);
            assert_eq!(bucket_of(bucket_hi(b)), b);
        }
    }

    #[test]
    fn counts_sum_min_max() {
        let h = Histogram::new();
        for v in [5, 10, 100, 0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 115);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 28);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_right() {
        let h = Histogram::new();
        // 90 fast values (~100) and 10 slow ones (~10_000).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        let p50 = s.p50();
        let p99 = s.p99();
        // p50 must land in the fast bucket's range, p99 in the slow one's.
        assert!((64..=127).contains(&p50), "p50={p50}");
        assert!((8192..=16383).contains(&p99), "p99={p99}");
        // Clamping: quantiles never exceed observed extremes.
        assert!(s.quantile(1.0) <= s.max);
        assert!(s.quantile(0.0) >= s.min);
    }

    #[test]
    fn single_sample_quantiles_are_that_sample() {
        let h = Histogram::new();
        h.record(777);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.sum), (777, 777, 777));
        // One sample: every quantile clamps to the observed value.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 777, "q={q}");
        }
        assert_eq!(s.mean(), 777);
    }

    #[test]
    fn all_samples_in_one_bucket_stay_within_observed_range() {
        let h = Histogram::new();
        // 65 and 127 share the [64, 127] power-of-two bucket but differ,
        // so the geometric-midpoint estimate kicks in; the clamp keeps it
        // inside the observed [min, max].
        for v in [65u64, 127, 65, 127, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), 1);
        for q in [0.5, 0.9, 0.99] {
            let est = s.quantile(q);
            assert!((65..=127).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn identical_values_quantile_exact_via_clamp() {
        let h = Histogram::new();
        for _ in 0..32 {
            h.record(1000);
        }
        let s = h.snapshot();
        // min == max == 1000, so clamping makes every quantile exact.
        assert_eq!(s.p50(), 1000);
        assert_eq!(s.p99(), 1000);
    }

    #[test]
    fn delta_subtracts_buckets() {
        let h = Histogram::new();
        h.record(10);
        h.record(10);
        let before = h.snapshot();
        h.record(10);
        h.record(5000);
        let after = h.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 5010);
        assert_eq!(d.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 2);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 8000);
    }
}

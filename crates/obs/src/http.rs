//! The live inspection endpoint: a std-only HTTP/1.1 server.
//!
//! [`ObsServer::start`] binds a `TcpListener` on a background thread and
//! serves four routes out of the global observability state:
//!
//! * `/metrics` — the registry snapshot in Prometheus text format
//!   ([`crate::prom`]);
//! * `/funnel` — the diagnosis funnel as JSON (stage labels and counter
//!   names are supplied by the caller, so this crate stays agnostic of
//!   pipeline metric names, matching [`crate::report::render_report`]);
//! * `/waitfor` (JSON) and `/waitfor.dot` (Graphviz) — the lock
//!   manager's live wait-for graph plus the last detected deadlock
//!   ([`crate::waitfor`]);
//! * `/` — a self-contained HTML dashboard (no external assets) that
//!   polls `/waitfor`, `/funnel`, and `/metrics` and draws the graph and
//!   funnel.
//!
//! The HTTP layer is deliberately minimal — hand-rolled request-line
//! parsing, `Connection: close`, one connection at a time — in the same
//! spirit as the store's hand-rolled JSON: no new dependencies for a
//! protocol subset a few dozen lines cover. `reproduce --serve <addr>`
//! (or `WESEER_SERVE=<addr>`) starts it for the duration of a run.

use crate::snapshot::write_json_string;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// The embedded dashboard page served at `/`.
const DASHBOARD_HTML: &str = include_str!("dashboard.html");

/// An application-supplied route extension for [`ObsServer::start_with`]:
/// given the request path (query string already stripped), return
/// `Some((content_type, body))` to serve it with a 200, or `None` to fall
/// through to the built-in routes / 404. Handlers run on the server
/// thread, one request at a time — a long-running handler (e.g. a daemon
/// analyzing an app on demand) simply holds the connection.
pub type RouteHandler = dyn Fn(&str) -> Option<(String, String)> + Send + Sync;

/// A running observability endpoint. Dropping the handle (or calling
/// [`ObsServer::stop`]) shuts the listener thread down.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving. `funnel` lists the diagnosis-funnel stages for `/funnel`
    /// as `(label, counter name)` pairs, outermost first.
    pub fn start(
        addr: impl ToSocketAddrs,
        funnel: &'static [(&'static str, &'static str)],
    ) -> std::io::Result<ObsServer> {
        Self::start_with(addr, funnel, None)
    }

    /// Like [`ObsServer::start`], with extra application routes: `extra`
    /// is consulted for any path the built-in routes don't claim (so a
    /// daemon can add `/analyze/<app>` and `/shards` next to `/metrics`).
    pub fn start_with(
        addr: impl ToSocketAddrs,
        funnel: &'static [(&'static str, &'static str)],
        extra: Option<Arc<RouteHandler>>,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Poll for shutdown between accepts instead of blocking forever.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("obs.serve".to_string())
            .spawn(move || {
                while !flag.load(Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // One request per connection; errors on a
                            // single connection must not kill the server.
                            let _ = handle_connection(stream, funnel, extra.as_deref());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn obs server thread");
        Ok(ObsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// The funnel JSON: `{"stages":[{"label":..,"counter":..,"value":..}..]}`
/// with `null` values for counters that have not been recorded.
fn funnel_json(funnel: &[(&str, &str)]) -> String {
    let snap = crate::snapshot();
    let mut out = String::from("{\"stages\":[");
    for (i, (label, counter)) in funnel.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        write_json_string(&mut out, label);
        out.push_str(",\"counter\":");
        write_json_string(&mut out, counter);
        out.push_str(",\"value\":");
        if snap.counters.contains_key(*counter) {
            out.push_str(&snap.counter(counter).to_string());
        } else {
            out.push_str("null");
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn handle_connection(
    stream: TcpStream,
    funnel: &[(&str, &str)],
    extra: Option<&RouteHandler>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; nothing in them matters to these routes.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if line.len() > 8192 {
            break;
        }
    }
    let stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Ignore any query string: `/waitfor?x=1` routes like `/waitfor`.
    let route = path.split('?').next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match route {
            "/" | "/index.html" => (
                "200 OK",
                "text/html; charset=utf-8",
                DASHBOARD_HTML.to_string(),
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::prom::render_prometheus(&crate::snapshot()),
            ),
            "/funnel" => (
                "200 OK",
                "application/json; charset=utf-8",
                funnel_json(funnel),
            ),
            "/waitfor" => (
                "200 OK",
                "application/json; charset=utf-8",
                crate::waitfor::to_json(&crate::waitfor::snapshot()),
            ),
            "/waitfor.dot" => (
                "200 OK",
                "text/vnd.graphviz; charset=utf-8",
                crate::waitfor::to_dot(&crate::waitfor::snapshot()),
            ),
            _ => match extra.and_then(|h| h(route)) {
                Some((content_type, body)) => {
                    return respond(stream, "200 OK", &content_type, &body)
                }
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    format!("no route {route}\n"),
                ),
            },
        }
    };
    respond(stream, status, content_type, &body)
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    const TEST_FUNNEL: &[(&str, &str)] = &[
        ("stage one", "http_test.stage1"),
        ("stage two", "http_test.stage2"),
    ];

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes() {
        let _l = crate::global_test_lock();
        crate::set_enabled(true);
        crate::add("http_test.stage1", 10);
        crate::add("http_test.stage2", 3);
        crate::waitfor::reset();
        crate::waitfor::update_edges(vec![(1, 2)]);
        crate::set_enabled(false);

        let server = ObsServer::start("127.0.0.1:0", TEST_FUNNEL).expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("weseer_http_test_stage1_total 10"));

        let (head, body) = get(addr, "/funnel");
        assert!(head.contains("application/json"));
        assert!(body
            .contains("{\"label\":\"stage one\",\"counter\":\"http_test.stage1\",\"value\":10}"));

        let (_, body) = get(addr, "/waitfor");
        assert!(body.contains("{\"waiter\":1,\"holder\":2}"));

        let (head, body) = get(addr, "/waitfor.dot");
        assert!(head.contains("text/vnd.graphviz"));
        assert!(body.starts_with("digraph waitfor {"));

        let (head, body) = get(addr, "/");
        assert!(head.contains("text/html"));
        assert!(body.contains("<html"));
        assert!(body.contains("Wait-for graph"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        // Query strings route to the bare path.
        let (head, _) = get(addr, "/waitfor?poll=1");
        assert!(head.starts_with("HTTP/1.1 200"));

        server.stop();
        crate::waitfor::reset();
    }

    #[test]
    fn rejects_non_get() {
        let server = ObsServer::start("127.0.0.1:0", TEST_FUNNEL).expect("bind");
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.stop();
    }
}

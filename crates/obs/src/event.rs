//! Structured events.
//!
//! A lightweight replacement for ad-hoc `eprintln!` debugging: events are
//! recorded in the global registry's bounded ring (quiet by default) and
//! only mirrored to stderr when the `WESEER_DEBUG` environment variable
//! is set (or `WESEER_DEBUG_DEADLOCK` for backwards compatibility with
//! the lock manager's original debug switch).

use std::fmt;
use std::sync::OnceLock;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail (lock waits, SAT restarts, …).
    Debug,
    /// Notable pipeline milestones.
    Info,
    /// Recoverable anomalies (deadlock victim aborts, budget exhaustion).
    Warn,
}

impl Level {
    /// Lower-case name used in JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number within the registry.
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Component that emitted the event (e.g. `db.lock`).
    pub target: String,
    /// Human-readable message.
    pub message: String,
}

/// Whether events should also be mirrored to stderr (checked once).
pub fn stderr_mirroring() -> bool {
    static MIRROR: OnceLock<bool> = OnceLock::new();
    *MIRROR.get_or_init(|| {
        std::env::var_os("WESEER_DEBUG").is_some()
            || std::env::var_os("WESEER_DEBUG_DEADLOCK").is_some()
    })
}

/// Record an event in the global registry; mirrored to stderr only when
/// [`stderr_mirroring`] is on. Quiet no-op when the registry is disabled
/// and mirroring is off.
pub fn emit(level: Level, target: &str, message: String) {
    if stderr_mirroring() {
        eprintln!("[weseer {level} {target}] {message}");
    }
    crate::registry::global().record_event(level, target, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names() {
        assert_eq!(Level::Debug.as_str(), "debug");
        assert_eq!(Level::Warn.to_string(), "warn");
        assert!(Level::Debug < Level::Warn);
    }
}

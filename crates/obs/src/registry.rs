//! The metric registry.
//!
//! A [`Registry`] owns every named counter, gauge, histogram, and the
//! event ring. The process-wide instance lives behind [`global`]; tests
//! can build private registries to avoid cross-test interference.
//!
//! The record paths (`add`, `observe`, …) first check the `enabled` flag
//! with a single relaxed atomic load and return immediately when
//! recording is off, so instrumentation left in hot code is effectively
//! free until someone opts in.

use crate::event::{Event, Level};
use crate::hist::Histogram;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// How many events the ring buffer retains before dropping the oldest.
pub const EVENT_CAPACITY: usize = 1024;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics. See the [module docs](self).
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
    events: Mutex<Vec<Event>>,
    /// Monotonic sequence number for events (survives ring eviction, so
    /// snapshots can diff event streams by sequence).
    event_seq: AtomicU64,
    /// Count of events dropped due to ring capacity.
    events_dropped: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// New registry, initially disabled.
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner::default()),
            events: Mutex::new(Vec::new()),
            event_seq: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
        }
    }

    /// Whether this registry is recording.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Handle to the named counter, creating it if needed (even while
    /// disabled — handles are cheap and callers may cache them).
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Handle to the named histogram, creating it if needed.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Add `n` to the named counter (no-op while disabled).
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        self.counter(name).fetch_add(n, Relaxed);
    }

    /// Set the named gauge (no-op while disabled).
    pub fn gauge_set(&self, name: &str, v: i64) {
        if !self.enabled() {
            return;
        }
        let gauge = {
            let mut inner = self.inner.lock().unwrap();
            inner.gauges.entry(name.to_string()).or_default().clone()
        };
        gauge.store(v, Relaxed);
    }

    /// Record a histogram value (no-op while disabled).
    pub fn observe(&self, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        self.histogram(name).record(value);
    }

    /// Record a duration as microseconds (no-op while disabled).
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Append an event to the ring (no-op while disabled). Oldest events
    /// are dropped past [`EVENT_CAPACITY`]; the drop count is retained.
    pub fn record_event(&self, level: Level, target: &str, message: String) {
        if !self.enabled() {
            return;
        }
        let seq = self.event_seq.fetch_add(1, Relaxed);
        let mut events = self.events.lock().unwrap();
        if events.len() >= EVENT_CAPACITY {
            events.remove(0);
            self.events_dropped.fetch_add(1, Relaxed);
        }
        events.push(Event {
            seq,
            level,
            target: target.to_string(),
            message,
        });
    }

    /// Copy every metric into an immutable [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events: self.events.lock().unwrap().clone(),
            events_dropped: self.events_dropped.load(Relaxed),
        }
    }

    /// Clear all metrics and events; the enabled flag is unchanged.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
        self.events.lock().unwrap().clear();
        self.event_seq.store(0, Relaxed);
        self.events_dropped.store(0, Relaxed);
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.add("c", 5);
        r.observe("h", 10);
        r.gauge_set("g", 7);
        r.record_event(Level::Info, "t", "m".into());
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 0);
        assert!(s.histogram("h").is_none());
        assert!(s.events.is_empty());
    }

    #[test]
    fn enabled_registry_records() {
        let r = Registry::new();
        r.set_enabled(true);
        r.add("c", 2);
        r.add("c", 3);
        r.gauge_set("g", -4);
        r.observe("h", 100);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.gauges.get("g"), Some(&-4));
        assert_eq!(s.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn counter_atomicity_under_threads() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        r.set_enabled(true);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    // Mix cached-handle and by-name increments.
                    let handle = r.counter("shared");
                    for i in 0..5000u64 {
                        if i % 2 == 0 {
                            handle.fetch_add(1, Relaxed);
                        } else {
                            r.add("shared", 1);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("shared"), 8 * 5000);
    }

    #[test]
    fn event_ring_caps_and_counts_drops() {
        let r = Registry::new();
        r.set_enabled(true);
        for i in 0..(EVENT_CAPACITY + 10) {
            r.record_event(Level::Debug, "t", format!("e{i}"));
        }
        let s = r.snapshot();
        assert_eq!(s.events.len(), EVENT_CAPACITY);
        assert_eq!(s.events_dropped, 10);
        // Oldest were evicted; sequence numbers keep climbing.
        assert_eq!(s.events.first().unwrap().seq, 10);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.set_enabled(true);
        r.add("c", 1);
        r.observe("h", 1);
        r.record_event(Level::Info, "t", "m".into());
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.events.is_empty());
        assert!(r.enabled());
    }
}
